//! Property-based tests of the simulation kernel: queue ordering,
//! resource conservation, statistics correctness.

use fortika_sim::stats::{mean_ci95, t_quantile_975, Welford};
use fortika_sim::{CpuResource, DetRng, EventQueue, LinkResource, VDur, VTime};
use proptest::prelude::*;

proptest! {
    #[test]
    fn queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(VTime::from_nanos(t), i);
        }
        let mut popped: Vec<(VTime, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                // FIFO among equal timestamps: insertion index order.
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    #[test]
    fn cpu_busy_time_equals_sum_of_costs(costs in prop::collection::vec(0u64..10_000, 0..100)) {
        let mut cpu = CpuResource::new();
        let mut arrival = VTime::ZERO;
        let mut total = VDur::ZERO;
        let mut rng = DetRng::seed(7);
        for c in costs {
            arrival = arrival + VDur::nanos(rng.below(500));
            let cost = VDur::nanos(c);
            let start = cpu.acquire(arrival, cost);
            prop_assert!(start >= arrival, "handler started before arrival");
            total += cost;
        }
        prop_assert_eq!(cpu.busy_time(), total);
    }

    #[test]
    fn cpu_handlers_never_overlap(
        arrivals in prop::collection::vec((0u64..100_000, 1u64..5_000), 1..100),
    ) {
        let mut sorted = arrivals.clone();
        sorted.sort();
        let mut cpu = CpuResource::new();
        let mut prev_end = VTime::ZERO;
        for (at, cost) in sorted {
            let start = cpu.acquire(VTime::from_nanos(at), VDur::nanos(cost));
            prop_assert!(start >= prev_end, "handlers overlapped");
            prev_end = start + VDur::nanos(cost);
            prop_assert_eq!(cpu.free_at(), prev_end);
        }
    }

    #[test]
    fn link_transmissions_serialize(
        bw in 1_000u64..1_000_000_000,
        sizes in prop::collection::vec(1u64..100_000, 1..50),
    ) {
        let mut link = LinkResource::new(bw);
        let mut prev_done = VTime::ZERO;
        for s in sizes {
            let done = link.transmit(VTime::ZERO, s);
            prop_assert!(done >= prev_done, "transmissions reordered");
            prop_assert!(done >= prev_done + link.tx_time(s) - VDur::nanos(1));
            prev_done = done;
        }
    }

    #[test]
    fn welford_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((w.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
        prop_assert!((w.min() - xs.iter().cloned().fold(f64::INFINITY, f64::min)).abs() < 1e-12);
        prop_assert!((w.max() - xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)).abs() < 1e-12);
    }

    #[test]
    fn merge_any_split_matches_whole(
        xs in prop::collection::vec(-1e3f64..1e3, 2..100),
        cut in 0usize..100,
    ) {
        let cut = cut % xs.len();
        let mut whole = Welford::new();
        xs.iter().for_each(|&x| whole.add(x));
        let mut a = Welford::new();
        let mut b = Welford::new();
        xs[..cut].iter().for_each(|&x| a.add(x));
        xs[cut..].iter().for_each(|&x| b.add(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-7 * (1.0 + whole.variance()));
    }

    #[test]
    fn ci_contains_mean_and_shrinks(base in -100.0f64..100.0, spread in 0.1f64..10.0) {
        let few: Vec<f64> = (0..3).map(|i| base + spread * i as f64).collect();
        let many: Vec<f64> = (0..30).map(|i| base + spread * (i % 3) as f64).collect();
        let ci_few = mean_ci95(&few).unwrap();
        let ci_many = mean_ci95(&many).unwrap();
        prop_assert!(ci_few.lo() <= ci_few.mean && ci_few.mean <= ci_few.hi());
        // More samples of the same dispersion → tighter interval.
        prop_assert!(ci_many.half_width < ci_few.half_width + 1e-12);
    }

    #[test]
    fn rng_below_is_uniform_enough(seed in any::<u64>()) {
        let mut rng = DetRng::seed(seed);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[rng.below(8) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            prop_assert!((700..1300).contains(&b), "bucket {i} has {b} hits");
        }
    }

    #[test]
    fn derived_streams_are_independent(seed in any::<u64>()) {
        let mut a = DetRng::derive(seed, 1);
        let mut b = DetRng::derive(seed, 2);
        let matches = (0..128).filter(|_| a.next_u64() == b.next_u64()).count();
        prop_assert!(matches < 4);
    }
}

#[test]
fn t_table_is_decreasing_to_normal() {
    let mut prev = f64::INFINITY;
    for df in 1..=200 {
        let t = t_quantile_975(df);
        assert!(t <= prev);
        prev = t;
    }
    assert_eq!(t_quantile_975(10_000), 1.96);
}
