//! Randomized property tests of the simulation kernel: queue ordering,
//! resource conservation, statistics correctness.
//!
//! Inputs are generated from seeded [`DetRng`] streams (the offline
//! environment has no property-testing framework), so every case is
//! deterministic and reproducible from its seed.

use fortika_sim::stats::{mean_ci95, t_quantile_975, Welford};
use fortika_sim::{CpuResource, DetRng, EventQueue, LinkResource, VDur, VTime};

const CASES: u64 = 32;

#[test]
fn queue_pops_sorted_and_stable() {
    for seed in 0..CASES {
        let mut rng = DetRng::derive(0x51E7E, seed);
        let len = 1 + rng.below(199) as usize;
        let times: Vec<u64> = (0..len).map(|_| rng.below(10_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(VTime::from_nanos(t), i);
        }
        let mut popped: Vec<(VTime, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order violated (seed {seed})");
            if w[0].0 == w[1].0 {
                // FIFO among equal timestamps: insertion index order.
                assert!(w[0].1 < w[1].1, "FIFO tie-break violated (seed {seed})");
            }
        }
    }
}

#[test]
fn cpu_busy_time_equals_sum_of_costs() {
    for seed in 0..CASES {
        let mut rng = DetRng::derive(0xC9B, seed);
        let mut cpu = CpuResource::new();
        let mut arrival = VTime::ZERO;
        let mut total = VDur::ZERO;
        for _ in 0..rng.below(100) {
            arrival += VDur::nanos(rng.below(500));
            let cost = VDur::nanos(rng.below(10_000));
            let start = cpu.acquire(arrival, cost);
            assert!(start >= arrival, "handler started before arrival");
            total += cost;
        }
        assert_eq!(cpu.busy_time(), total, "seed {seed}");
    }
}

#[test]
fn cpu_handlers_never_overlap() {
    for seed in 0..CASES {
        let mut rng = DetRng::derive(0xCAFE, seed);
        let len = 1 + rng.below(99) as usize;
        let mut arrivals: Vec<(u64, u64)> = (0..len)
            .map(|_| (rng.below(100_000), 1 + rng.below(4_999)))
            .collect();
        arrivals.sort();
        let mut cpu = CpuResource::new();
        let mut prev_end = VTime::ZERO;
        for (at, cost) in arrivals {
            let start = cpu.acquire(VTime::from_nanos(at), VDur::nanos(cost));
            assert!(start >= prev_end, "handlers overlapped (seed {seed})");
            prev_end = start + VDur::nanos(cost);
            assert_eq!(cpu.free_at(), prev_end);
        }
    }
}

#[test]
fn link_transmissions_serialize() {
    for seed in 0..CASES {
        let mut rng = DetRng::derive(0x117, seed);
        let bw = 1_000 + rng.below(1_000_000_000 - 1_000);
        let mut link = LinkResource::new(bw);
        let mut prev_done = VTime::ZERO;
        for _ in 0..(1 + rng.below(49)) {
            let s = 1 + rng.below(99_999);
            let done = link.transmit(VTime::ZERO, s);
            assert!(done >= prev_done, "transmissions reordered (seed {seed})");
            assert!(done >= prev_done + link.tx_time(s) - VDur::nanos(1));
            prev_done = done;
        }
    }
}

#[test]
fn welford_matches_naive() {
    for seed in 0..CASES {
        let mut rng = DetRng::derive(0xE1F, seed);
        let len = 2 + rng.below(198) as usize;
        let xs: Vec<f64> = (0..len).map(|_| (rng.unit_f64() - 0.5) * 2e6).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!(
            (w.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()),
            "seed {seed}"
        );
        assert!(
            (w.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()),
            "seed {seed}"
        );
        assert!((w.min() - xs.iter().cloned().fold(f64::INFINITY, f64::min)).abs() < 1e-12);
        assert!((w.max() - xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)).abs() < 1e-12);
    }
}

#[test]
fn merge_any_split_matches_whole() {
    for seed in 0..CASES {
        let mut rng = DetRng::derive(0x3E6E, seed);
        let len = 2 + rng.below(98) as usize;
        let xs: Vec<f64> = (0..len).map(|_| (rng.unit_f64() - 0.5) * 2e3).collect();
        let cut = rng.below(len as u64) as usize;
        let mut whole = Welford::new();
        xs.iter().for_each(|&x| whole.add(x));
        let mut a = Welford::new();
        let mut b = Welford::new();
        xs[..cut].iter().for_each(|&x| a.add(x));
        xs[cut..].iter().for_each(|&x| b.add(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
        assert!((a.variance() - whole.variance()).abs() < 1e-7 * (1.0 + whole.variance()));
    }
}

#[test]
fn ci_contains_mean_and_shrinks() {
    for seed in 0..CASES {
        let mut rng = DetRng::derive(0xC1, seed);
        let base = (rng.unit_f64() - 0.5) * 200.0;
        let spread = 0.1 + rng.unit_f64() * 9.9;
        let few: Vec<f64> = (0..3).map(|i| base + spread * i as f64).collect();
        let many: Vec<f64> = (0..30).map(|i| base + spread * (i % 3) as f64).collect();
        let ci_few = mean_ci95(&few).unwrap();
        let ci_many = mean_ci95(&many).unwrap();
        assert!(ci_few.lo() <= ci_few.mean && ci_few.mean <= ci_few.hi());
        // More samples of the same dispersion → tighter interval.
        assert!(
            ci_many.half_width < ci_few.half_width + 1e-12,
            "seed {seed}"
        );
    }
}

#[test]
fn rng_below_is_uniform_enough() {
    for seed in 0..CASES {
        let mut rng = DetRng::seed(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[rng.below(8) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!(
                (700..1300).contains(&b),
                "seed {seed}: bucket {i} has {b} hits"
            );
        }
    }
}

#[test]
fn derived_streams_are_independent() {
    for seed in 0..CASES {
        let mut a = DetRng::derive(seed, 1);
        let mut b = DetRng::derive(seed, 2);
        let matches = (0..128).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(matches < 4, "seed {seed}");
    }
}

#[test]
fn t_table_is_decreasing_to_normal() {
    let mut prev = f64::INFINITY;
    for df in 1..=200 {
        let t = t_quantile_975(df);
        assert!(t <= prev);
        prev = t;
    }
    assert_eq!(t_quantile_975(10_000), 1.96);
}
