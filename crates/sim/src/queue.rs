//! Deterministic event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::VTime;

/// An entry in the queue: ordered by time, then by insertion sequence.
struct Entry<E> {
    at: VTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. Sequence-number tie-breaking makes simultaneous events pop
        // in insertion order, which keeps runs reproducible.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A priority queue of timestamped events with deterministic FIFO
/// tie-breaking for events scheduled at the same instant.
///
/// The queue also tracks the timestamp of the last popped event and
/// rejects scheduling in the past, catching causality bugs early.
///
/// # Example
///
/// ```
/// use fortika_sim::{EventQueue, VTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(VTime::from_nanos(10), 'b');
/// q.schedule(VTime::from_nanos(10), 'c'); // same instant: FIFO order
/// q.schedule(VTime::from_nanos(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: VTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at `VTime::ZERO`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: VTime::ZERO,
        }
    }

    /// Schedules `event` to fire at instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the timestamp of the last popped
    /// event — scheduling in the past would violate causality.
    pub fn schedule(&mut self, at: VTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule at {at:?}, simulation already at {:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, advancing the queue clock.
    pub fn pop(&mut self) -> Option<(VTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue time went backwards");
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<VTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// The instant of the last popped event (the queue's notion of "now").
    pub fn now(&self) -> VTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event (used when tearing a simulation down).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VDur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(VTime::from_nanos(30), 3);
        q.schedule(VTime::from_nanos(10), 1);
        q.schedule(VTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = VTime::from_nanos(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(VTime::from_nanos(5), ());
        q.schedule(VTime::from_nanos(9), ());
        assert_eq!(q.now(), VTime::ZERO);
        q.pop();
        assert_eq!(q.now(), VTime::from_nanos(5));
        q.pop();
        assert_eq!(q.now(), VTime::from_nanos(9));
    }

    #[test]
    #[should_panic(expected = "cannot schedule at")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(VTime::from_nanos(10), ());
        q.pop();
        q.schedule(VTime::from_nanos(5), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(VTime::from_nanos(10), 1);
        q.pop();
        q.schedule(VTime::from_nanos(10), 2); // same instant as "now": fine
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(VTime::ZERO + VDur::micros(1), ());
        q.schedule(VTime::ZERO + VDur::micros(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(VTime::ZERO + VDur::micros(1)));
        q.clear();
        assert!(q.is_empty());
    }
}
