//! Virtual time: instants and durations measured in integer nanoseconds.
//!
//! Integer nanoseconds keep the simulation exactly reproducible (no
//! floating-point accumulation error) while offering sub-microsecond
//! resolution, far below the ~10 µs event granularity of the model.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A virtual instant, in nanoseconds since the start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VTime(u64);

/// A virtual duration, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VDur(u64);

impl VTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: VTime = VTime(0);
    /// The greatest representable instant; useful as an "infinity" sentinel.
    pub const MAX: VTime = VTime(u64::MAX);

    /// Builds an instant from nanoseconds since the epoch.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        VTime(ns)
    }

    /// Nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: VTime) -> VDur {
        debug_assert!(earlier.0 <= self.0, "time went backwards");
        VDur(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: VTime) -> VTime {
        VTime(self.0.max(other.0))
    }
}

impl VDur {
    /// Zero-length duration.
    pub const ZERO: VDur = VDur(0);

    /// Builds a duration from nanoseconds.
    #[inline]
    pub const fn nanos(ns: u64) -> Self {
        VDur(ns)
    }

    /// Builds a duration from microseconds.
    #[inline]
    pub const fn micros(us: u64) -> Self {
        VDur(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    #[inline]
    pub const fn millis(ms: u64) -> Self {
        VDur(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    #[inline]
    pub const fn secs(s: u64) -> Self {
        VDur(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        VDur((s * 1e9).round() as u64)
    }

    /// Duration in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in seconds, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration in milliseconds, as a float (for reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: VDur) -> VDur {
        VDur(self.0.saturating_sub(other.0))
    }
}

impl Add<VDur> for VTime {
    type Output = VTime;
    #[inline]
    fn add(self, rhs: VDur) -> VTime {
        VTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<VDur> for VTime {
    #[inline]
    fn add_assign(&mut self, rhs: VDur) {
        *self = *self + rhs;
    }
}

impl Sub<VDur> for VTime {
    type Output = VTime;
    #[inline]
    fn sub(self, rhs: VDur) -> VTime {
        VTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for VDur {
    type Output = VDur;
    #[inline]
    fn add(self, rhs: VDur) -> VDur {
        VDur(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for VDur {
    #[inline]
    fn add_assign(&mut self, rhs: VDur) {
        *self = *self + rhs;
    }
}

impl Sub for VDur {
    type Output = VDur;
    #[inline]
    fn sub(self, rhs: VDur) -> VDur {
        debug_assert!(rhs.0 <= self.0, "duration underflow");
        VDur(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for VDur {
    #[inline]
    fn sub_assign(&mut self, rhs: VDur) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for VDur {
    type Output = VDur;
    #[inline]
    fn mul(self, rhs: u64) -> VDur {
        VDur(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for VDur {
    type Output = VDur;
    #[inline]
    fn div(self, rhs: u64) -> VDur {
        VDur(self.0 / rhs)
    }
}

impl Sum for VDur {
    fn sum<I: Iterator<Item = VDur>>(iter: I) -> Self {
        iter.fold(VDur::ZERO, Add::add)
    }
}

impl fmt::Debug for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for VDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0 as f64 / 1e3)
        }
    }
}

impl fmt::Display for VDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(VDur::micros(5).as_nanos(), 5_000);
        assert_eq!(VDur::millis(5).as_nanos(), 5_000_000);
        assert_eq!(VDur::secs(5).as_nanos(), 5_000_000_000);
        assert_eq!(VDur::from_secs_f64(0.25), VDur::millis(250));
    }

    #[test]
    fn time_arithmetic() {
        let t = VTime::ZERO + VDur::millis(10);
        assert_eq!(t.as_nanos(), 10_000_000);
        assert_eq!(t.since(VTime::ZERO), VDur::millis(10));
        assert_eq!((t + VDur::millis(5)).since(t), VDur::millis(5));
        assert_eq!(t - VDur::millis(4), VTime::from_nanos(6_000_000));
    }

    #[test]
    fn duration_arithmetic() {
        let d = VDur::micros(100);
        assert_eq!(d * 3, VDur::micros(300));
        assert_eq!(d / 4, VDur::micros(25));
        assert_eq!(d + d, VDur::micros(200));
        assert_eq!(d - VDur::micros(40), VDur::micros(60));
        assert_eq!(d.saturating_sub(VDur::micros(200)), VDur::ZERO);
        let total: VDur = [d, d, d].into_iter().sum();
        assert_eq!(total, VDur::micros(300));
    }

    #[test]
    fn max_and_ordering() {
        let a = VTime::from_nanos(5);
        let b = VTime::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert!(a < b);
        assert!(VDur::micros(1) < VDur::millis(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", VDur::micros(12)), "12us");
        assert_eq!(format!("{}", VDur::millis(3)), "3.000ms");
        assert_eq!(format!("{}", VTime::from_nanos(1_500_000)), "0.001500s");
    }

    #[test]
    fn saturation_at_extremes() {
        assert_eq!(VTime::MAX + VDur::secs(1), VTime::MAX);
        assert_eq!(VDur::nanos(u64::MAX) * 2, VDur::nanos(u64::MAX));
        assert_eq!(VTime::ZERO - VDur::secs(1), VTime::ZERO);
    }
}
