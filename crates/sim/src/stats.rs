//! Online statistics for experiment reporting.
//!
//! The paper reports means over "many messages and several executions"
//! with 95 % confidence intervals. [`Welford`] accumulates a stream of
//! observations in O(1) memory; [`mean_ci95`] combines per-run means into
//! a Student-t interval over executions.

/// Online mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use fortika_sim::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.add(x);
/// }
/// assert_eq!(w.count(), 8);
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.variance() - 4.571428).abs() < 1e-5); // sample variance
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        self.mean += d * other.n as f64 / n as f64;
        self.m2 += other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Half-width of the 95 % confidence interval around the mean,
    /// using the Student-t quantile for the sample size.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        t_quantile_975((self.n - 1) as usize) * self.std_err()
    }
}

/// Two-sided 97.5 % Student-t quantile for `df` degrees of freedom
/// (i.e. the multiplier for a 95 % confidence interval).
///
/// Exact table for small `df`, asymptotic 1.96 beyond 120.
pub fn t_quantile_975(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[df - 1],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.960,
    }
}

/// Summary of a set of per-run means: grand mean and 95 % CI half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// Grand mean across runs.
    pub mean: f64,
    /// Half-width of the 95 % confidence interval (0 for a single run).
    pub half_width: f64,
    /// Number of runs combined.
    pub runs: usize,
}

impl MeanCi {
    /// Lower bound of the interval.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }
}

/// Combines independent per-run means into a grand mean with a Student-t
/// 95 % confidence interval (the paper's "several executions").
///
/// Returns `None` for an empty input.
pub fn mean_ci95(per_run_means: &[f64]) -> Option<MeanCi> {
    if per_run_means.is_empty() {
        return None;
    }
    let mut w = Welford::new();
    for &m in per_run_means {
        w.add(m);
    }
    Some(MeanCi {
        mean: w.mean(),
        half_width: w.ci95_half_width(),
        runs: per_run_means.len(),
    })
}

/// A log-bucketed histogram for latency distributions.
///
/// Fixed memory (log₂-spaced buckets with linear sub-buckets, ~1.5 %
/// relative resolution), O(1) insert — suitable for recording millions
/// of per-message latencies and reading off tail percentiles, which the
/// mean-based paper metrics cannot show.
///
/// # Example
///
/// ```
/// use fortika_sim::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000 {
///     h.record(v as f64);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.percentile(50.0);
/// assert!((p50 - 500.0).abs() / 500.0 < 0.05, "p50 was {p50}");
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    /// `buckets[e][s]`: values in `[2^e · (1 + s/64), 2^e · (1 + (s+1)/64))`.
    buckets: Vec<[u32; 64]>,
    underflow: u64,
    count: u64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram covering `[2^-16, 2^48)` (sub-µs to years when
    /// recording milliseconds).
    pub fn new() -> Self {
        Histogram {
            buckets: vec![[0; 64]; 64],
            underflow: 0,
            count: 0,
            max: 0.0,
        }
    }

    const MIN_EXP: i32 = -16;

    fn slot(value: f64) -> Option<(usize, usize)> {
        if !value.is_finite() || value <= 0.0 {
            return None;
        }
        let exp = value.log2().floor() as i32;
        let e = exp - Self::MIN_EXP;
        if e < 0 {
            return None; // underflow bucket
        }
        let e = (e as usize).min(63);
        let base = 2f64.powi(exp);
        let frac = ((value / base - 1.0) * 64.0) as usize;
        Some((e, frac.min(63)))
    }

    /// Records one (non-negative) observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        if value > self.max {
            self.max = value;
        }
        match Self::slot(value) {
            Some((e, s)) => self.buckets[e][s] += 1,
            None => self.underflow += 1,
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The value at percentile `q` (0–100), with ~1.5 % resolution.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 100.0) / 100.0) * self.count as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= rank {
            return 0.0;
        }
        for (e, sub) in self.buckets.iter().enumerate() {
            for (s, &c) in sub.iter().enumerate() {
                seen += u64::from(c);
                if seen >= rank {
                    let base = 2f64.powi(e as i32 + Self::MIN_EXP);
                    return base * (1.0 + (s as f64 + 0.5) / 64.0);
                }
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += *y;
            }
        }
        self.underflow += other.underflow;
        self.count += other.count;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_small_set() {
        let mut w = Welford::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            w.add(x);
        }
        assert_eq!(w.count(), 4);
        assert!((w.mean() - 2.5).abs() < 1e-12);
        assert!((w.variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(w.min(), 1.0);
        assert_eq!(w.max(), 4.0);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        let mut w = Welford::new();
        w.add(3.5);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.ci95_half_width(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.add(x);
        }
        let (left, right) = xs.split_at(37);
        let mut a = Welford::new();
        let mut b = Welford::new();
        left.iter().for_each(|&x| a.add(x));
        right.iter().for_each(|&x| b.add(x));
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.add(1.0);
        a.add(2.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&Welford::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));
        let mut e = Welford::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn t_quantiles_sane() {
        assert!(t_quantile_975(0).is_infinite());
        assert_eq!(t_quantile_975(1), 12.706);
        assert_eq!(t_quantile_975(4), 2.776);
        assert_eq!(t_quantile_975(30), 2.042);
        assert_eq!(t_quantile_975(1000), 1.960);
        // Monotonically non-increasing.
        let mut prev = f64::INFINITY;
        for df in 1..200 {
            let t = t_quantile_975(df);
            assert!(t <= prev, "t quantile increased at df={df}");
            prev = t;
        }
    }

    #[test]
    fn histogram_percentiles_accurate() {
        let mut h = Histogram::new();
        for v in 1..=10_000 {
            h.record(v as f64 / 10.0); // 0.1 .. 1000.0
        }
        for q in [10.0, 50.0, 90.0, 99.0, 99.9] {
            let expect = q * 10.0; // uniform distribution
            let got = h.percentile(q);
            let err = (got - expect).abs() / expect;
            assert!(err < 0.03, "p{q}: got {got}, expect {expect}");
        }
        // p100 equals the max up to the bucket resolution (~1.5 %).
        let p100 = h.percentile(100.0);
        assert!(
            (p100 - h.max()).abs() / h.max() < 0.02,
            "p100 {p100} vs max {}",
            h.max()
        );
    }

    #[test]
    fn histogram_edge_cases() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0.0);
        h.record(0.0); // goes to underflow
        h.record(-1.0); // hostile input: underflow, no panic
        h.record(f64::NAN);
        assert_eq!(h.count(), 3);
        assert_eq!(h.percentile(50.0), 0.0);
        h.record(1e300); // clamps into the top bucket
        assert!(h.percentile(99.9) > 0.0);
    }

    #[test]
    fn histogram_merge_matches_combined() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 1..500 {
            let x = (v as f64).sqrt();
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for q in [25.0, 50.0, 75.0, 95.0] {
            assert_eq!(a.percentile(q), whole.percentile(q));
        }
    }

    #[test]
    fn ci_over_runs() {
        let ci = mean_ci95(&[10.0, 12.0, 11.0, 13.0, 9.0]).unwrap();
        assert!((ci.mean - 11.0).abs() < 1e-12);
        assert_eq!(ci.runs, 5);
        // t(4, 0.975) = 2.776; s = sqrt(2.5); se = sqrt(2.5/5).
        let expect = 2.776 * (2.5f64 / 5.0).sqrt();
        assert!((ci.half_width - expect).abs() < 1e-9);
        assert!(ci.lo() < 11.0 && ci.hi() > 11.0);
        assert!(mean_ci95(&[]).is_none());
        let single = mean_ci95(&[4.2]).unwrap();
        assert_eq!(single.half_width, 0.0);
    }
}
