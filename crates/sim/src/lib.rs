//! Deterministic discrete-event simulation kernel.
//!
//! This crate is the bottom-most substrate of the Fortika reproduction: a
//! small, domain-agnostic discrete-event simulation (DES) toolkit used by
//! `fortika-net` to model a cluster of processes connected by
//! quasi-reliable channels.
//!
//! Everything here is **deterministic**: virtual time is integer
//! nanoseconds, the event queue breaks ties by insertion sequence number,
//! and randomness comes from an explicitly seeded PRNG. Running the same
//! experiment with the same seed reproduces every event bit-for-bit, which
//! is what makes the paper's figures regenerable.
//!
//! # Contents
//!
//! * [`VTime`], [`VDur`] — virtual instants and durations (integer ns).
//! * [`EventQueue`] — priority queue with deterministic FIFO tie-breaking.
//! * [`CpuResource`], [`LinkResource`] — serial-server resource models for
//!   process CPUs and NIC transmit paths.
//! * [`DetRng`] — seeded deterministic random number generator.
//! * [`stats`] — online statistics (Welford mean/variance, Student-t 95 %
//!   confidence intervals) used by the experiment runner.
//!
//! # Example
//!
//! ```
//! use fortika_sim::{EventQueue, VDur, VTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(VTime::ZERO + VDur::millis(2), "second");
//! q.schedule(VTime::ZERO + VDur::millis(1), "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "first");
//! assert_eq!(t, VTime::ZERO + VDur::millis(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod queue;
mod resource;
mod rng;
pub mod stats;
mod time;

pub use queue::EventQueue;
pub use resource::{CpuResource, LinkResource};
pub use rng::DetRng;
pub use time::{VDur, VTime};
