//! Serial-server resource models.
//!
//! Both the per-process CPU and the per-process NIC transmit path are
//! modelled as *serial servers*: work items occupy the resource one at a
//! time, in arrival order. A server is fully described by the instant at
//! which it next becomes free, so occupancy is computed analytically — no
//! extra simulation events are needed.

use crate::{VDur, VTime};

/// A serial CPU: executes one event handler at a time.
///
/// Handlers that arrive while the CPU is busy wait (FIFO, enforced by the
/// caller delivering events in timestamp order) and start when the CPU
/// frees up. [`CpuResource`] also accumulates total busy time so the
/// harness can report CPU utilization — the paper observes ≥ 99 % CPU use
/// above 500 msg/s offered load, and the figure harnesses print the
/// equivalent measurement.
///
/// # Example
///
/// ```
/// use fortika_sim::{CpuResource, VDur, VTime};
///
/// let mut cpu = CpuResource::new();
/// // Event arrives at t=0 and costs 10 µs: runs immediately.
/// let start = cpu.acquire(VTime::ZERO, VDur::micros(10));
/// assert_eq!(start, VTime::ZERO);
/// // Event arrives at t=5 µs, but the CPU is busy until 10 µs.
/// let start = cpu.acquire(VTime::ZERO + VDur::micros(5), VDur::micros(10));
/// assert_eq!(start, VTime::ZERO + VDur::micros(10));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CpuResource {
    free_at: VTime,
    busy: VDur,
}

impl CpuResource {
    /// A CPU that is idle from t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the CPU for a handler arriving at `at` with cost `cost`.
    ///
    /// Returns the instant at which the handler actually starts executing
    /// (`max(at, free_at)`); the CPU then stays busy until start + cost.
    pub fn acquire(&mut self, at: VTime, cost: VDur) -> VTime {
        let start = at.max(self.free_at);
        self.free_at = start + cost;
        self.busy += cost;
        start
    }

    /// Extends the current reservation by `extra` (used when a handler's
    /// cost is only known incrementally, e.g. per send call).
    pub fn extend(&mut self, extra: VDur) {
        self.free_at += extra;
        self.busy += extra;
    }

    /// The instant at which the CPU next becomes idle.
    pub fn free_at(&self) -> VTime {
        self.free_at
    }

    /// Total accumulated busy time.
    pub fn busy_time(&self) -> VDur {
        self.busy
    }

    /// Fraction of the window `[from, to]` this CPU spent busy, where
    /// `busy_at_from` is a [`busy_time`](Self::busy_time) snapshot taken at
    /// `from`. Clamped to `[0, 1]`.
    pub fn utilization(&self, busy_at_from: VDur, from: VTime, to: VTime) -> f64 {
        let window = to.since(from).as_secs_f64();
        if window <= 0.0 {
            return 0.0;
        }
        let busy = self.busy.saturating_sub(busy_at_from).as_secs_f64();
        (busy / window).clamp(0.0, 1.0)
    }
}

/// A transmit link of fixed bandwidth: messages serialize through it.
///
/// Sending `bytes` occupies the link for `bytes / bandwidth`. This captures
/// the paper's TCP unicast fan-out: broadcasting to n−1 peers costs n−1
/// back-to-back transmissions on the sender's NIC, which is what degrades
/// the n = 7 curves at large message sizes (Fig. 11).
#[derive(Debug, Clone)]
pub struct LinkResource {
    free_at: VTime,
    bytes_per_sec: u64,
    busy: VDur,
}

impl LinkResource {
    /// Creates a link with the given bandwidth in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn new(bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "link bandwidth must be positive");
        LinkResource {
            free_at: VTime::ZERO,
            bytes_per_sec,
            busy: VDur::ZERO,
        }
    }

    /// Time needed to push `bytes` through the link.
    pub fn tx_time(&self, bytes: u64) -> VDur {
        // ns = bytes * 1e9 / Bps, computed in u128 to avoid overflow.
        let ns = (bytes as u128 * 1_000_000_000u128) / self.bytes_per_sec as u128;
        VDur::nanos(ns as u64)
    }

    /// Enqueues a transmission of `bytes` that becomes ready at `ready`.
    ///
    /// Returns the instant the last bit leaves the link (transmission
    /// completion, i.e. when the message can start propagating).
    pub fn transmit(&mut self, ready: VTime, bytes: u64) -> VTime {
        let start = ready.max(self.free_at);
        let tx = self.tx_time(bytes);
        self.free_at = start + tx;
        self.busy += tx;
        self.free_at
    }

    /// The instant at which the link next becomes idle.
    pub fn free_at(&self) -> VTime {
        self.free_at
    }

    /// Total accumulated transmission time.
    pub fn busy_time(&self) -> VDur {
        self.busy
    }

    /// Configured bandwidth in bytes per second.
    pub fn bytes_per_sec(&self) -> u64 {
        self.bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_runs_immediately_when_idle() {
        let mut cpu = CpuResource::new();
        let start = cpu.acquire(VTime::from_nanos(100), VDur::nanos(50));
        assert_eq!(start, VTime::from_nanos(100));
        assert_eq!(cpu.free_at(), VTime::from_nanos(150));
    }

    #[test]
    fn cpu_queues_when_busy() {
        let mut cpu = CpuResource::new();
        cpu.acquire(VTime::ZERO, VDur::nanos(100));
        let start = cpu.acquire(VTime::from_nanos(10), VDur::nanos(5));
        assert_eq!(start, VTime::from_nanos(100));
        assert_eq!(cpu.free_at(), VTime::from_nanos(105));
        assert_eq!(cpu.busy_time(), VDur::nanos(105));
    }

    #[test]
    fn cpu_extend_prolongs_current_handler() {
        let mut cpu = CpuResource::new();
        cpu.acquire(VTime::ZERO, VDur::nanos(10));
        cpu.extend(VDur::nanos(15));
        assert_eq!(cpu.free_at(), VTime::from_nanos(25));
        assert_eq!(cpu.busy_time(), VDur::nanos(25));
    }

    #[test]
    fn cpu_utilization_window() {
        let mut cpu = CpuResource::new();
        cpu.acquire(VTime::ZERO, VDur::micros(600));
        // Window of 1 ms with 600 µs busy => 60 %.
        let util = cpu.utilization(VDur::ZERO, VTime::ZERO, VTime::ZERO + VDur::millis(1));
        assert!((util - 0.6).abs() < 1e-9, "utilization was {util}");
    }

    #[test]
    fn link_tx_time_matches_bandwidth() {
        // Gigabit Ethernet: 125 MB/s. 16384-byte message ≈ 131.072 µs.
        let link = LinkResource::new(125_000_000);
        assert_eq!(link.tx_time(16_384), VDur::nanos(131_072));
    }

    #[test]
    fn link_serializes_messages() {
        let mut link = LinkResource::new(1_000_000); // 1 MB/s => 1 µs/byte
        let done1 = link.transmit(VTime::ZERO, 100);
        assert_eq!(done1, VTime::ZERO + VDur::micros(100));
        // Second message is ready at t=10 µs but waits for the first.
        let done2 = link.transmit(VTime::ZERO + VDur::micros(10), 100);
        assert_eq!(done2, VTime::ZERO + VDur::micros(200));
        assert_eq!(link.busy_time(), VDur::micros(200));
    }

    #[test]
    fn link_idle_gap_not_counted_busy() {
        let mut link = LinkResource::new(1_000_000);
        link.transmit(VTime::ZERO, 10);
        link.transmit(VTime::ZERO + VDur::millis(1), 10);
        assert_eq!(link.busy_time(), VDur::micros(20));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = LinkResource::new(0);
    }

    #[test]
    fn big_transfers_do_not_overflow() {
        let link = LinkResource::new(1);
        // 10 GB at 1 B/s = 1e10 seconds; must not overflow u64 ns math.
        let t = link.tx_time(10_000_000_000);
        assert_eq!(t.as_secs_f64(), 1e10);
    }
}
