//! Seeded deterministic randomness.

use crate::VDur;

/// A deterministic random number generator for simulations.
///
/// Self-contained xoshiro256++ generator (Blackman & Vigna) seeded via a
/// SplitMix64 expansion, with helpers for the quantities the network
/// model needs (jitter durations, subseed derivation for independent
/// replicas). No external dependencies, so the simulation is bit-for-bit
/// reproducible across toolchains and fully offline-buildable.
///
/// # Example
///
/// ```
/// use fortika_sim::{DetRng, VDur};
///
/// let mut a = DetRng::seed(42);
/// let mut b = DetRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let j = a.jitter(VDur::micros(100));
/// assert!(j <= VDur::micros(100));
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

/// SplitMix64 step: expands a seed into well-mixed 64-bit words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent sub-generator, e.g. one per replica run.
    ///
    /// Mixing with a SplitMix64-style finalizer keeps sibling streams
    /// statistically independent even for adjacent indices.
    pub fn derive(base_seed: u64, index: u64) -> Self {
        let mut z = base_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        DetRng::seed(z)
    }

    /// Next raw 64-bit value (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; returns 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Debiased multiply-shift (Lemire): rejection keeps the result
        // exactly uniform for every bound.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let wide = u128::from(x) * u128::from(bound);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Uniform value in `[0, bound]` (inclusive upper end).
    fn below_inclusive(&mut self, bound: u64) -> u64 {
        if bound == u64::MAX {
            self.next_u64()
        } else {
            self.below(bound + 1)
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 high bits → the standard dyadic-uniform construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform jitter in `[0, max]`.
    pub fn jitter(&mut self, max: VDur) -> VDur {
        if max.is_zero() {
            VDur::ZERO
        } else {
            VDur::nanos(self.below_inclusive(max.as_nanos()))
        }
    }

    /// Exponentially distributed duration with the given mean (for
    /// Poisson-process arrivals in extension workloads).
    pub fn exponential(&mut self, mean: VDur) -> VDur {
        if mean.is_zero() {
            return VDur::ZERO;
        }
        // Inverse CDF; clamp u away from 0 to avoid ln(0).
        let u = self.unit_f64().max(1e-12);
        VDur::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn derive_is_deterministic_and_distinct() {
        let mut a1 = DetRng::derive(99, 0);
        let mut a2 = DetRng::derive(99, 0);
        let mut b = DetRng::derive(99, 1);
        assert_eq!(a1.next_u64(), a2.next_u64());
        assert_ne!(a1.next_u64(), b.next_u64());
    }

    #[test]
    fn below_bounds() {
        let mut r = DetRng::seed(1);
        assert_eq!(r.below(0), 0);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = DetRng::seed(123);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.below(8) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((700..1300).contains(&b), "bucket {i} has {b} hits");
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = DetRng::seed(4);
        for _ in 0..1000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn jitter_within_range() {
        let mut r = DetRng::seed(2);
        assert_eq!(r.jitter(VDur::ZERO), VDur::ZERO);
        for _ in 0..1000 {
            assert!(r.jitter(VDur::micros(50)) <= VDur::micros(50));
        }
    }

    #[test]
    fn exponential_mean_roughly_right() {
        let mut r = DetRng::seed(3);
        let mean = VDur::micros(500);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| r.exponential(mean).as_secs_f64()).sum();
        let avg = total / n as f64;
        assert!(
            (avg - 500e-6).abs() < 25e-6,
            "empirical mean {avg} too far from 500us"
        );
    }
}
