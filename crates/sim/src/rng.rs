//! Seeded deterministic randomness.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::VDur;

/// A deterministic random number generator for simulations.
///
/// Thin wrapper over [`rand::rngs::StdRng`] with helpers for the
/// quantities the network model needs (jitter durations, subseed
/// derivation for independent replicas).
///
/// # Example
///
/// ```
/// use fortika_sim::{DetRng, VDur};
///
/// let mut a = DetRng::seed(42);
/// let mut b = DetRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let j = a.jitter(VDur::micros(100));
/// assert!(j <= VDur::micros(100));
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent sub-generator, e.g. one per replica run.
    ///
    /// Mixing with a SplitMix64-style finalizer keeps sibling streams
    /// statistically independent even for adjacent indices.
    pub fn derive(base_seed: u64, index: u64) -> Self {
        let mut z = base_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        DetRng::seed(z)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, bound)`; returns 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.inner.gen_range(0..bound)
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen_range(0.0..1.0)
    }

    /// Uniform jitter in `[0, max]`.
    pub fn jitter(&mut self, max: VDur) -> VDur {
        if max.is_zero() {
            VDur::ZERO
        } else {
            VDur::nanos(self.inner.gen_range(0..=max.as_nanos()))
        }
    }

    /// Exponentially distributed duration with the given mean (for
    /// Poisson-process arrivals in extension workloads).
    pub fn exponential(&mut self, mean: VDur) -> VDur {
        if mean.is_zero() {
            return VDur::ZERO;
        }
        // Inverse CDF; clamp u away from 0 to avoid ln(0).
        let u = self.unit_f64().max(1e-12);
        VDur::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn derive_is_deterministic_and_distinct() {
        let mut a1 = DetRng::derive(99, 0);
        let mut a2 = DetRng::derive(99, 0);
        let mut b = DetRng::derive(99, 1);
        assert_eq!(a1.next_u64(), a2.next_u64());
        assert_ne!(a1.next_u64(), b.next_u64());
    }

    #[test]
    fn below_bounds() {
        let mut r = DetRng::seed(1);
        assert_eq!(r.below(0), 0);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn jitter_within_range() {
        let mut r = DetRng::seed(2);
        assert_eq!(r.jitter(VDur::ZERO), VDur::ZERO);
        for _ in 0..1000 {
            assert!(r.jitter(VDur::micros(50)) <= VDur::micros(50));
        }
    }

    #[test]
    fn exponential_mean_roughly_right() {
        let mut r = DetRng::seed(3);
        let mean = VDur::micros(500);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| r.exponential(mean).as_secs_f64()).sum();
        let avg = total / n as f64;
        assert!(
            (avg - 500e-6).abs() < 25e-6,
            "empirical mean {avg} too far from 500us"
        );
    }
}
