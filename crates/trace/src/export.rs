//! Trace exports: JSON Lines and Chrome trace-event format.
//!
//! Both are string producers (no filesystem access here) and both are
//! deterministic: same trace, same bytes.

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::event::{Trace, TraceData, TraceEvent};

impl Trace {
    /// Renders the trace as JSON Lines: one object per event, in record
    /// order, followed by a trailing `meta` line with eviction
    /// accounting. Deterministic — same trace, same bytes.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            jsonl_line(&mut out, e);
        }
        let _ = writeln!(
            out,
            "{{\"meta\":true,\"events\":{},\"dropped\":{},\"capacity\":{}}}",
            self.events.len(),
            self.dropped,
            self.capacity
        );
        out
    }

    /// Renders the trace in Chrome trace-event format (a JSON object
    /// with a `traceEvents` array), loadable in Perfetto or
    /// `chrome://tracing`.
    ///
    /// * Handler executions become complete (`"X"`) slices on the
    ///   process's CPU track.
    /// * Lifecycle spans become instant events, plus one async
    ///   begin/end pair per `(stack, instance)` stretching from its
    ///   first to its last recorded phase.
    /// * Wire events (send / deliver / drop) become instant events on
    ///   the process they concern.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push('\n');
        };
        // Async begin/end per (stack, instance): first and last span
        // event of the group. BTreeMap keeps emission order
        // deterministic.
        let mut groups: BTreeMap<(&'static str, u64), (u64, u64, u16)> = BTreeMap::new();
        for e in &self.events {
            if let TraceData::Span {
                pid,
                stack,
                instance,
                ..
            } = e.data
            {
                groups
                    .entry((stack, instance))
                    .and_modify(|(_, last, _)| *last = e.at_ns)
                    .or_insert((e.at_ns, e.at_ns, pid));
            }
        }
        for (&(stack, instance), &(first_ns, last_ns, pid)) in &groups {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"{stack} #{instance}\",\"cat\":\"{stack}\",\"ph\":\"b\",\
                 \"id\":{instance},\"pid\":{pid},\"tid\":0,\"ts\":{}}}",
                Us(first_ns)
            );
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"{stack} #{instance}\",\"cat\":\"{stack}\",\"ph\":\"e\",\
                 \"id\":{instance},\"pid\":{pid},\"tid\":0,\"ts\":{}}}",
                Us(last_ns)
            );
        }
        for e in &self.events {
            match e.data {
                TraceData::Handler {
                    pid,
                    inc,
                    start_ns,
                    cpu_ns,
                    durability_ns,
                } => {
                    sep(&mut out);
                    let _ = write!(
                        out,
                        "{{\"name\":\"handler\",\"cat\":\"cpu\",\"ph\":\"X\",\"pid\":{pid},\
                         \"tid\":0,\"ts\":{},\"dur\":{},\"args\":{{\"inc\":{inc},\
                         \"durability_ns\":{durability_ns}}}}}",
                        Us(start_ns),
                        Us(cpu_ns)
                    );
                }
                TraceData::Span {
                    pid,
                    stack,
                    instance,
                    phase,
                    detail,
                } => {
                    sep(&mut out);
                    let _ = write!(
                        out,
                        "{{\"name\":\"{stack} #{instance}: {phase}\",\"cat\":\"{stack}\",\
                         \"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":0,\"ts\":{},\
                         \"args\":{{\"detail\":{detail}}}}}",
                        Us(e.at_ns)
                    );
                }
                TraceData::Send {
                    src,
                    dst,
                    kind,
                    bytes,
                    queue_ns,
                    ..
                } => {
                    sep(&mut out);
                    let _ = write!(
                        out,
                        "{{\"name\":\"send {kind}\",\"cat\":\"wire\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":{src},\"tid\":1,\"ts\":{},\"args\":{{\"dst\":{dst},\
                         \"bytes\":{bytes},\"queue_ns\":{queue_ns}}}}}",
                        Us(e.at_ns)
                    );
                }
                TraceData::Deliver {
                    dst,
                    src,
                    kind,
                    bytes,
                } => {
                    sep(&mut out);
                    let _ = write!(
                        out,
                        "{{\"name\":\"recv {kind}\",\"cat\":\"wire\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":{dst},\"tid\":1,\"ts\":{},\"args\":{{\"src\":{src},\
                         \"bytes\":{bytes}}}}}",
                        Us(e.at_ns)
                    );
                }
                TraceData::Drop {
                    src,
                    dst,
                    kind,
                    bytes,
                    reason,
                } => {
                    sep(&mut out);
                    let _ = write!(
                        out,
                        "{{\"name\":\"drop {kind} ({reason})\",\"cat\":\"fault\",\"ph\":\"i\",\
                         \"s\":\"t\",\"pid\":{src},\"tid\":1,\"ts\":{},\"args\":{{\"dst\":{dst},\
                         \"bytes\":{bytes}}}}}",
                        Us(e.at_ns)
                    );
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Nanoseconds rendered as Chrome's microsecond `ts` with fixed 3-digit
/// sub-microsecond precision (deterministic, no float formatting).
struct Us(u64);

impl std::fmt::Display for Us {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{:03}", self.0 / 1_000, self.0 % 1_000)
    }
}

fn jsonl_line(out: &mut String, e: &TraceEvent) {
    let seq = e.seq;
    let at = e.at_ns;
    let _ = match e.data {
        TraceData::Send {
            src,
            dst,
            kind,
            bytes,
            inc,
            tx_end_ns,
            arrival_ns,
            queue_ns,
        } => writeln!(
            out,
            "{{\"seq\":{seq},\"at_ns\":{at},\"ev\":\"send\",\"src\":{src},\"dst\":{dst},\
             \"kind\":\"{kind}\",\"bytes\":{bytes},\"inc\":{inc},\"tx_end_ns\":{tx_end_ns},\
             \"arrival_ns\":{arrival_ns},\"queue_ns\":{queue_ns}}}"
        ),
        TraceData::Drop {
            src,
            dst,
            kind,
            bytes,
            reason,
        } => writeln!(
            out,
            "{{\"seq\":{seq},\"at_ns\":{at},\"ev\":\"drop\",\"src\":{src},\"dst\":{dst},\
             \"kind\":\"{kind}\",\"bytes\":{bytes},\"reason\":\"{reason}\"}}"
        ),
        TraceData::Deliver {
            dst,
            src,
            kind,
            bytes,
        } => writeln!(
            out,
            "{{\"seq\":{seq},\"at_ns\":{at},\"ev\":\"deliver\",\"dst\":{dst},\"src\":{src},\
             \"kind\":\"{kind}\",\"bytes\":{bytes}}}"
        ),
        TraceData::Handler {
            pid,
            inc,
            start_ns,
            cpu_ns,
            durability_ns,
        } => writeln!(
            out,
            "{{\"seq\":{seq},\"at_ns\":{at},\"ev\":\"handler\",\"pid\":{pid},\"inc\":{inc},\
             \"start_ns\":{start_ns},\"cpu_ns\":{cpu_ns},\"durability_ns\":{durability_ns}}}"
        ),
        TraceData::Span {
            pid,
            stack,
            instance,
            phase,
            detail,
        } => writeln!(
            out,
            "{{\"seq\":{seq},\"at_ns\":{at},\"ev\":\"span\",\"pid\":{pid},\"stack\":\"{stack}\",\
             \"instance\":{instance},\"phase\":\"{phase}\",\"detail\":{detail}}}"
        ),
    };
}

#[cfg(test)]
mod tests {
    use crate::event::{TraceBuffer, TraceData};

    fn sample() -> crate::Trace {
        let mut b = TraceBuffer::new(16);
        b.push(
            1_000,
            TraceData::Handler {
                pid: 0,
                inc: 0,
                start_ns: 500,
                cpu_ns: 400,
                durability_ns: 100,
            },
        );
        b.push(
            1_000,
            TraceData::Send {
                src: 0,
                dst: 1,
                kind: "consensus.ack",
                bytes: 74,
                inc: 0,
                tx_end_ns: 1_100,
                arrival_ns: 1_400,
                queue_ns: 0,
            },
        );
        b.push(
            1_400,
            TraceData::Deliver {
                dst: 1,
                src: 0,
                kind: "consensus.ack",
                bytes: 74,
            },
        );
        b.push(
            1_500,
            TraceData::Span {
                pid: 1,
                stack: "consensus",
                instance: 3,
                phase: "decided",
                detail: 0,
            },
        );
        b.push(
            1_600,
            TraceData::Drop {
                src: 1,
                dst: 2,
                kind: "abcast.diffuse",
                bytes: 90,
                reason: "partition",
            },
        );
        b.finish()
    }

    #[test]
    fn jsonl_is_one_object_per_line_plus_meta() {
        let t = sample();
        let s = t.to_jsonl();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), t.events.len() + 1);
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "bad line: {l}");
        }
        assert!(lines[0].contains("\"ev\":\"handler\""));
        assert!(lines[1].contains("\"kind\":\"consensus.ack\""));
        assert!(lines.last().unwrap().contains("\"meta\":true"));
        assert!(lines.last().unwrap().contains("\"dropped\":0"));
    }

    #[test]
    fn jsonl_is_deterministic() {
        assert_eq!(sample().to_jsonl(), sample().to_jsonl());
    }

    #[test]
    fn chrome_json_has_expected_events() {
        let s = sample().to_chrome_json();
        assert!(s.starts_with('{') && s.ends_with("]}\n"));
        // One async pair for the (consensus, 3) span group.
        assert!(s.contains("\"ph\":\"b\""));
        assert!(s.contains("\"ph\":\"e\""));
        // Handler slice with microsecond timestamps: 500 ns = 0.500 µs.
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"ts\":0.500"));
        assert!(s.contains("drop abcast.diffuse (partition)"));
    }
}
