//! The event model and the bounded ring buffer that records it.

use std::collections::VecDeque;

/// Tracing knobs, carried by the cluster configuration.
///
/// Off by default: the default config records nothing and costs one
/// `Option` branch per record point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. `false` (the default) means no buffer is ever
    /// allocated and no event is ever constructed.
    pub enabled: bool,
    /// Ring capacity in events; once full, the oldest events are
    /// evicted (and counted, see [`Trace::dropped`]).
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            capacity: 1 << 16,
        }
    }
}

impl TraceConfig {
    /// Tracing enabled at the default capacity (65 536 events).
    pub fn on() -> Self {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }

    /// Tracing enabled with an explicit ring capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceConfig {
            enabled: true,
            capacity,
        }
    }
}

/// Payload of one trace event.
///
/// Process ids are raw `u16`s and labels are `&'static str` so this
/// crate can sit below the network crate in the dependency graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceData {
    /// A message left a process: NIC serialization, (possibly degraded)
    /// link queueing, propagation. Recorded at the sender's
    /// handler-completion instant.
    Send {
        /// Sending process.
        src: u16,
        /// Destination process.
        dst: u16,
        /// Message kind tag (e.g. `"consensus.ack"`).
        kind: &'static str,
        /// Wire bytes (payload + per-message overhead).
        bytes: u64,
        /// Sender incarnation at transmission time.
        inc: u32,
        /// Instant NIC (and, if degraded, link) serialization ends.
        tx_end_ns: u64,
        /// Scheduled arrival instant at `dst`.
        arrival_ns: u64,
        /// Extra serialization/queueing delay imposed by a degraded
        /// link (zero on healthy links).
        queue_ns: u64,
    },
    /// A message was destroyed by a fault or a fence instead of being
    /// handled.
    Drop {
        /// Sending process.
        src: u16,
        /// Destination process.
        dst: u16,
        /// Message kind tag (empty when the kind is unknown at the
        /// drop site).
        kind: &'static str,
        /// Wire bytes.
        bytes: u64,
        /// Why: `"partition"`, `"loss"`, `"stale_incarnation"` or
        /// `"crashed_sender"`.
        reason: &'static str,
    },
    /// A message arrived and was handed to the destination stack.
    Deliver {
        /// Destination process.
        dst: u16,
        /// Sending process.
        src: u16,
        /// Message kind tag.
        kind: &'static str,
        /// Wire bytes.
        bytes: u64,
    },
    /// One handler execution on a process's serial CPU: the busy
    /// interval is `[start_ns, start_ns + cpu_ns]`; `durability_ns` of
    /// it was stable-storage / snapshot work.
    Handler {
        /// The process whose CPU ran the handler.
        pid: u16,
        /// Process incarnation the handler ran under.
        inc: u32,
        /// Instant the handler started on the CPU.
        start_ns: u64,
        /// Total CPU time charged by the handler.
        cpu_ns: u64,
        /// Portion of `cpu_ns` that was durability work.
        durability_ns: u64,
    },
    /// A protocol lifecycle marker for one instance: `"proposed"`,
    /// `"voted"`, `"decided"`, `"applied"`, `"round_change"`,
    /// `"gap_pull"`, `"snapshot_offer"`, `"snapshot_install"`, …
    Span {
        /// The process emitting the marker.
        pid: u16,
        /// Which layer emitted it (`"consensus"`, `"abcast"`,
        /// `"mono"`, `"rbcast"`).
        stack: &'static str,
        /// Protocol instance (consensus slot, broadcast id).
        instance: u64,
        /// Lifecycle phase label.
        phase: &'static str,
        /// Phase-specific detail (round number, batch size, snapshot
        /// instance); zero when unused.
        detail: u64,
    },
}

impl TraceData {
    /// The process this event is *about* — the one whose timeline it
    /// belongs to (sender for sends/drops, destination for delivers).
    pub fn pid(&self) -> u16 {
        match *self {
            TraceData::Send { src, .. } | TraceData::Drop { src, .. } => src,
            TraceData::Deliver { dst, .. } => dst,
            TraceData::Handler { pid, .. } | TraceData::Span { pid, .. } => pid,
        }
    }

    /// True if the event mentions `pid` in any role (source or
    /// destination) — used to anchor violation dump windows.
    pub fn involves(&self, pid: u16) -> bool {
        match *self {
            TraceData::Send { src, dst, .. }
            | TraceData::Drop { src, dst, .. }
            | TraceData::Deliver { dst, src, .. } => src == pid || dst == pid,
            TraceData::Handler { pid: p, .. } | TraceData::Span { pid: p, .. } => p == pid,
        }
    }
}

/// One recorded event: virtual-time instant, record-order sequence
/// number, payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotone sequence number assigned at record time (total order,
    /// breaks virtual-time ties deterministically).
    pub seq: u64,
    /// Virtual-time instant in nanoseconds.
    pub at_ns: u64,
    /// What happened.
    pub data: TraceData,
}

/// The live recording ring: bounded, eviction-counting.
#[derive(Debug)]
pub struct TraceBuffer {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    next_seq: u64,
    dropped: u64,
}

impl TraceBuffer {
    /// An empty ring of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceBuffer {
            capacity,
            events: VecDeque::new(),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Records one event at virtual instant `at_ns`, evicting the
    /// oldest event if the ring is full.
    pub fn push(&mut self, at_ns: u64, data: TraceData) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            seq: self.next_seq,
            at_ns,
            data,
        });
        self.next_seq += 1;
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been recorded (or everything evicted).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Freezes the ring into an immutable [`Trace`].
    pub fn finish(self) -> Trace {
        Trace {
            events: self.events.into(),
            dropped: self.dropped,
            capacity: self.capacity,
        }
    }
}

/// A frozen trace: the retained event window plus eviction accounting.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Retained events, in record order (seq ascending).
    pub events: Vec<TraceEvent>,
    /// Events evicted from the ring before the end of the run — the
    /// trace is the *last* `events.len()` of
    /// `events.len() + dropped` total.
    pub dropped: u64,
    /// The ring capacity the trace was recorded with.
    pub capacity: usize,
}

impl Trace {
    /// The sub-trace of events involving process `pid`, restricted to
    /// the last `window` such events — the bounded context used for
    /// violation dumps.
    pub fn around_pid(&self, pid: u16, window: usize) -> Trace {
        let involved: Vec<TraceEvent> = self
            .events
            .iter()
            .filter(|e| e.data.involves(pid))
            .cloned()
            .collect();
        let skip = involved.len().saturating_sub(window);
        let events: Vec<TraceEvent> = involved.into_iter().skip(skip).collect();
        let dropped = self.dropped + (self.events.len() - events.len()) as u64;
        Trace {
            events,
            dropped,
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_off() {
        let cfg = TraceConfig::default();
        assert!(!cfg.enabled);
        assert!(TraceConfig::on().enabled);
        assert_eq!(TraceConfig::with_capacity(8).capacity, 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = TraceConfig::with_capacity(0);
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let mut b = TraceBuffer::new(2);
        for i in 0..5u64 {
            b.push(
                i * 10,
                TraceData::Span {
                    pid: 0,
                    stack: "t",
                    instance: i,
                    phase: "p",
                    detail: 0,
                },
            );
        }
        assert_eq!(b.len(), 2);
        let t = b.finish();
        assert_eq!(t.dropped, 3);
        assert_eq!(t.events[0].seq, 3);
        assert_eq!(t.events[1].seq, 4);
        assert_eq!(t.events[1].at_ns, 40);
    }

    #[test]
    fn involves_covers_both_endpoints() {
        let d = TraceData::Send {
            src: 1,
            dst: 2,
            kind: "k",
            bytes: 0,
            inc: 0,
            tx_end_ns: 0,
            arrival_ns: 0,
            queue_ns: 0,
        };
        assert!(d.involves(1) && d.involves(2) && !d.involves(3));
        assert_eq!(d.pid(), 1);
    }

    #[test]
    fn around_pid_is_bounded() {
        let mut b = TraceBuffer::new(100);
        for i in 0..10u64 {
            b.push(
                i,
                TraceData::Span {
                    pid: (i % 2) as u16,
                    stack: "t",
                    instance: i,
                    phase: "p",
                    detail: 0,
                },
            );
        }
        let t = b.finish();
        let w = t.around_pid(0, 3);
        assert_eq!(w.events.len(), 3);
        assert!(w.events.iter().all(|e| e.data.pid() == 0));
        // 10 total − 3 kept = 7 accounted as outside the window.
        assert_eq!(w.dropped, 7);
    }
}
