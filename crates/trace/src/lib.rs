//! Bounded, deterministic event tracing for the fortika simulator.
//!
//! The paper's argument is a *breakdown* — where each stack spends its
//! messages and CPU per consensus instance — and this crate records the
//! raw material for that breakdown: a single, totally ordered timeline of
//! wire events (send / deliver / drop, with the fault that affected
//! them), per-instance protocol lifecycle spans (proposed → voted →
//! decided → applied), and resource charges (CPU, durability,
//! degraded-link queueing).
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** The simulator holds an
//!    `Option<TraceBuffer>`; with tracing off every record point is one
//!    branch on `None` and no event is ever constructed. Tracing draws no
//!    randomness and charges no simulated cost, so enabling it cannot
//!    change a run's timing — and disabling it cannot change anything at
//!    all.
//! 2. **Bounded.** The buffer is a ring of configurable capacity; old
//!    events are evicted, and the count of evicted events is reported, so
//!    a trace is always "the last N things that happened".
//! 3. **Deterministic.** Events carry virtual-time nanoseconds and a
//!    monotone sequence number assigned at record time. Two runs with the
//!    same seed produce byte-identical JSONL.
//!
//! The crate deliberately depends on nothing (it sits *below*
//! `fortika-net` in the dependency graph) and speaks only primitive
//! types: `u16` process ids, `u64` instances and nanosecond timestamps,
//! `&'static str` kind/phase labels.
//!
//! * [`TraceConfig`], [`TraceBuffer`], [`Trace`] — recording.
//! * [`TraceEvent`], [`TraceData`] — the event model.
//! * [`Trace::to_jsonl`], [`Trace::to_chrome_json`] — exports (JSON
//!   Lines and Chrome trace-event format, loadable in Perfetto).
//! * [`decompose_window`], [`LatencyDecomposition`] — per-decision
//!   latency decomposition (queueing vs transmission vs CPU vs
//!   durability).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decompose;
mod event;
mod export;

pub use decompose::{
    decompose_window, ComponentSummary, DecompSample, LatencyDecomposition, WindowSpec,
};
pub use event::{Trace, TraceBuffer, TraceConfig, TraceData, TraceEvent};
