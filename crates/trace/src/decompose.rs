//! Per-decision latency decomposition.
//!
//! Given a trace and a latency window — from submission `t0` to the
//! earliest `adeliver` at the delivering process — partition the window
//! into four disjoint components:
//!
//! * **durability** — CPU time the delivering process spent on stable
//!   writes / snapshot work,
//! * **cpu** — its remaining CPU-busy time,
//! * **transmission** — time covered by messages in flight *towards*
//!   the process (NIC + degraded-link serialization + propagation),
//!   excluding instants the CPU was already busy,
//! * **queueing** — everything else: the message (or the work it
//!   depends on) sat in a queue — behind the CPU of *another* process,
//!   behind flow control, or behind the protocol's own batching.
//!
//! The partition is exhaustive and exclusive by construction, so the
//! four components **sum exactly** to the end-to-end window in integer
//! nanoseconds — the property the acceptance tests check.

use crate::event::{TraceData, TraceEvent};

/// One latency window to decompose: the paper's `t0 → adeliver` span
/// observed at process `pid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// The process whose delivery closed the window.
    pub pid: u16,
    /// Submission instant (`t0`), nanoseconds.
    pub t0_ns: u64,
    /// Earliest-delivery instant, nanoseconds.
    pub te_ns: u64,
}

/// The four-way split of one latency window, in nanoseconds.
///
/// Invariant: `queueing_ns + transmission_ns + cpu_ns + durability_ns
/// == total_ns`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecompSample {
    /// End-to-end window length (`te − t0`).
    pub total_ns: u64,
    /// Time not explained by CPU or transmission: queueing/batching.
    pub queueing_ns: u64,
    /// Time covered by in-flight messages towards the process.
    pub transmission_ns: u64,
    /// CPU-busy time at the process, durability excluded.
    pub cpu_ns: u64,
    /// Durability (stable write / snapshot) CPU time at the process.
    pub durability_ns: u64,
}

/// Decomposes one latency window against the recorded events.
///
/// Uses `Handler` events for the process's CPU-busy intervals (and
/// their durability share) and `Send` events addressed to the process
/// for in-flight intervals. Events evicted from the ring simply shrink
/// the explained share — unexplained time lands in `queueing_ns`, never
/// in a negative component.
pub fn decompose_window(events: &[TraceEvent], w: &WindowSpec) -> DecompSample {
    let (lo, hi) = (w.t0_ns, w.te_ns.max(w.t0_ns));
    let total = hi - lo;

    // CPU-busy intervals at `pid`, clipped to the window. Handlers on
    // one serial CPU never overlap, but merge anyway so the measure is
    // robust to any recording artefact.
    let mut busy: Vec<(u64, u64)> = Vec::new();
    let mut durability: u64 = 0;
    for e in events {
        if let TraceData::Handler {
            pid,
            start_ns,
            cpu_ns,
            durability_ns,
            ..
        } = e.data
        {
            if pid != w.pid || cpu_ns == 0 {
                continue;
            }
            let (s, t) = (start_ns, start_ns + cpu_ns);
            let (cs, ct) = (s.max(lo), t.min(hi));
            if cs >= ct {
                continue;
            }
            busy.push((cs, ct));
            // The handler's durability share, pro-rated by how much of
            // the handler falls inside the window.
            durability +=
                (u128::from(durability_ns) * u128::from(ct - cs) / u128::from(cpu_ns)) as u64;
        }
    }
    let busy = union(busy);
    let cpu_total = measure(&busy);
    let durability = durability.min(cpu_total);

    // In-flight intervals of messages addressed to `pid`: from the
    // sender's handler-completion (send issue) to scheduled arrival.
    let mut transit: Vec<(u64, u64)> = Vec::new();
    for e in events {
        if let TraceData::Send {
            dst, arrival_ns, ..
        } = e.data
        {
            if dst != w.pid {
                continue;
            }
            let (cs, ct) = (e.at_ns.max(lo), arrival_ns.min(hi));
            if cs < ct {
                transit.push((cs, ct));
            }
        }
    }
    let transmission = measure(&subtract(&union(transit), &busy));

    let queueing = total - cpu_total - transmission;
    DecompSample {
        total_ns: total,
        queueing_ns: queueing,
        transmission_ns: transmission,
        cpu_ns: cpu_total - durability,
        durability_ns: durability,
    }
}

/// Sorts and merges intervals into a disjoint ascending set.
fn union(mut iv: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    iv.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(iv.len());
    for (s, t) in iv {
        match out.last_mut() {
            Some((_, pt)) if s <= *pt => *pt = (*pt).max(t),
            _ => out.push((s, t)),
        }
    }
    out
}

/// Total length of a disjoint interval set.
fn measure(iv: &[(u64, u64)]) -> u64 {
    iv.iter().map(|(s, t)| t - s).sum()
}

/// `a − b` for disjoint ascending interval sets.
fn subtract(a: &[(u64, u64)], b: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut bi = 0;
    for &(mut s, t) in a {
        while s < t {
            while bi < b.len() && b[bi].1 <= s {
                bi += 1;
            }
            match b.get(bi) {
                Some(&(bs, bt)) if bs < t => {
                    if s < bs {
                        out.push((s, bs));
                    }
                    s = bt.max(s);
                }
                _ => {
                    out.push((s, t));
                    s = t;
                }
            }
        }
    }
    union(out)
}

/// Mean and percentiles of one latency component, in milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ComponentSummary {
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Median (nearest-rank).
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
}

impl ComponentSummary {
    fn from_ns(values_ns: &mut [u64]) -> Self {
        if values_ns.is_empty() {
            return ComponentSummary::default();
        }
        values_ns.sort_unstable();
        let ms = |ns: u64| ns as f64 / 1e6;
        let pick = |v: &[u64], p: f64| {
            let idx = ((v.len() - 1) as f64 * p).round() as usize;
            ms(v[idx])
        };
        let sum: u128 = values_ns.iter().map(|&v| u128::from(v)).sum();
        ComponentSummary {
            mean_ms: sum as f64 / values_ns.len() as f64 / 1e6,
            p50_ms: pick(values_ns, 0.50),
            p90_ms: pick(values_ns, 0.90),
            p99_ms: pick(values_ns, 0.99),
        }
    }
}

/// Aggregated latency decomposition across all measured decisions.
///
/// Component means sum to the total mean (within float rounding),
/// because every per-sample split is exact in integer nanoseconds.
/// Percentiles are per-component (each component's own distribution),
/// so they do not sum — only the means do.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyDecomposition {
    /// Number of latency samples decomposed.
    pub samples: usize,
    /// End-to-end window.
    pub total: ComponentSummary,
    /// Queueing/batching share.
    pub queueing: ComponentSummary,
    /// In-flight transmission share.
    pub transmission: ComponentSummary,
    /// CPU share (durability excluded).
    pub cpu: ComponentSummary,
    /// Durability share.
    pub durability: ComponentSummary,
}

impl LatencyDecomposition {
    /// Aggregates per-sample splits into means and percentiles.
    pub fn from_samples(samples: &[DecompSample]) -> Self {
        let col = |f: fn(&DecompSample) -> u64| {
            let mut v: Vec<u64> = samples.iter().map(f).collect();
            ComponentSummary::from_ns(&mut v)
        };
        LatencyDecomposition {
            samples: samples.len(),
            total: col(|s| s.total_ns),
            queueing: col(|s| s.queueing_ns),
            transmission: col(|s| s.transmission_ns),
            cpu: col(|s| s.cpu_ns),
            durability: col(|s| s.durability_ns),
        }
    }

    /// Sum of the component means, in milliseconds — equals
    /// `total.mean_ms` up to float rounding (the acceptance check).
    pub fn component_mean_sum_ms(&self) -> f64 {
        self.queueing.mean_ms
            + self.transmission.mean_ms
            + self.cpu.mean_ms
            + self.durability.mean_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceBuffer;

    fn handler(b: &mut TraceBuffer, pid: u16, start: u64, cpu: u64, dur: u64) {
        b.push(
            start + cpu,
            TraceData::Handler {
                pid,
                inc: 0,
                start_ns: start,
                cpu_ns: cpu,
                durability_ns: dur,
            },
        );
    }

    fn send_to(b: &mut TraceBuffer, at: u64, dst: u16, arrival: u64) {
        b.push(
            at,
            TraceData::Send {
                src: 9,
                dst,
                kind: "k",
                bytes: 10,
                inc: 0,
                tx_end_ns: at,
                arrival_ns: arrival,
                queue_ns: 0,
            },
        );
    }

    #[test]
    fn interval_subtract() {
        assert_eq!(subtract(&[(0, 10)], &[(3, 5)]), vec![(0, 3), (5, 10)]);
        assert_eq!(subtract(&[(0, 10)], &[(0, 10)]), vec![]);
        assert_eq!(
            subtract(&[(0, 4), (6, 10)], &[(2, 8)]),
            vec![(0, 2), (8, 10)]
        );
        assert_eq!(subtract(&[(5, 6)], &[]), vec![(5, 6)]);
    }

    #[test]
    fn components_sum_exactly() {
        let mut b = TraceBuffer::new(64);
        handler(&mut b, 1, 100, 200, 50); // busy [100,300), 50 durability
        handler(&mut b, 1, 500, 100, 0); // busy [500,600)
        send_to(&mut b, 250, 1, 450); // transit [250,450): 150 ns outside busy
        let t = b.finish();
        let w = WindowSpec {
            pid: 1,
            t0_ns: 0,
            te_ns: 1_000,
        };
        let s = decompose_window(&t.events, &w);
        assert_eq!(s.total_ns, 1_000);
        assert_eq!(s.cpu_ns + s.durability_ns, 300);
        assert_eq!(s.durability_ns, 50);
        assert_eq!(s.transmission_ns, 150);
        assert_eq!(
            s.queueing_ns + s.transmission_ns + s.cpu_ns + s.durability_ns,
            s.total_ns
        );
    }

    #[test]
    fn window_clipping_prorates_durability() {
        let mut b = TraceBuffer::new(8);
        handler(&mut b, 0, 0, 1_000, 500); // half of the handler is durability
        let t = b.finish();
        // Window covers only the second half of the handler.
        let s = decompose_window(
            &t.events,
            &WindowSpec {
                pid: 0,
                t0_ns: 500,
                te_ns: 1_000,
            },
        );
        assert_eq!(s.total_ns, 500);
        assert_eq!(s.cpu_ns + s.durability_ns, 500);
        assert_eq!(s.durability_ns, 250); // pro-rated
        assert_eq!(s.queueing_ns, 0);
    }

    #[test]
    fn other_processes_do_not_leak_in() {
        let mut b = TraceBuffer::new(8);
        handler(&mut b, 3, 0, 400, 0);
        send_to(&mut b, 0, 3, 200);
        let t = b.finish();
        let s = decompose_window(
            &t.events,
            &WindowSpec {
                pid: 1,
                t0_ns: 0,
                te_ns: 400,
            },
        );
        assert_eq!(s.cpu_ns, 0);
        assert_eq!(s.transmission_ns, 0);
        assert_eq!(s.queueing_ns, 400);
    }

    #[test]
    fn aggregation_means_sum() {
        let samples: Vec<DecompSample> = (1..=100u64)
            .map(|i| {
                let t = i * 1_000;
                DecompSample {
                    total_ns: t,
                    queueing_ns: t / 2,
                    transmission_ns: t / 4,
                    cpu_ns: t - t / 2 - t / 4 - t / 8,
                    durability_ns: t / 8,
                }
            })
            .collect();
        let d = LatencyDecomposition::from_samples(&samples);
        assert_eq!(d.samples, 100);
        let sum = d.component_mean_sum_ms();
        assert!(
            (sum - d.total.mean_ms).abs() < 1e-9,
            "{sum} vs {}",
            d.total.mean_ms
        );
        assert!(d.total.p99_ms >= d.total.p50_ms);
    }

    #[test]
    fn empty_samples_are_zero() {
        let d = LatencyDecomposition::from_samples(&[]);
        assert_eq!(d.samples, 0);
        assert_eq!(d.total.mean_ms, 0.0);
    }
}
