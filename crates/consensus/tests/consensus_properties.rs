//! Consensus correctness: agreement, validity, integrity, termination —
//! in good runs, under coordinator crashes and under false suspicions.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use fortika_consensus::{ConsensusConfig, ConsensusModule};
use fortika_fd::{FdConfig, FdEvent, FdModule, HeartbeatFd, ScriptedFd};
use fortika_framework::{CompositeStack, Event, EventKind, FrameworkCtx, Microprotocol, ModuleId};
use fortika_net::{
    AppMsg, Batch, Cluster, ClusterConfig, CostModel, MsgId, NetModel, Node, ProcessId, TimerId,
};
use fortika_rbcast::{RbcastConfig, RbcastModule};
use fortika_sim::{VDur, VTime};

type DecisionLog = Rc<RefCell<Vec<(ProcessId, u64, Batch)>>>;

/// Test driver above consensus: proposes scheduled values, records
/// decisions.
struct Driver {
    proposals: Vec<(u64, Batch, VDur)>,
    decisions: DecisionLog,
}

impl Microprotocol for Driver {
    fn name(&self) -> &'static str {
        "consensus-driver"
    }
    fn module_id(&self) -> ModuleId {
        80
    }
    fn subscriptions(&self) -> &'static [EventKind] {
        &[EventKind::Decide]
    }
    fn on_start(&mut self, ctx: &mut FrameworkCtx<'_, '_>) {
        for (idx, (_, _, delay)) in self.proposals.iter().enumerate() {
            ctx.set_timer(*delay, idx as u64);
        }
    }
    fn on_timer(&mut self, ctx: &mut FrameworkCtx<'_, '_>, _t: TimerId, tag: u64) {
        let (instance, value, _) = self.proposals[tag as usize].clone();
        ctx.raise(Event::Propose { instance, value });
    }
    fn on_event(&mut self, ctx: &mut FrameworkCtx<'_, '_>, ev: &Event) {
        if let Event::Decide { instance, value } = ev {
            self.decisions
                .borrow_mut()
                .push((ctx.pid(), *instance, value.clone()));
        }
    }
}

fn batch_of(p: u16, seq: u64, size: usize) -> Batch {
    Batch::normalize(vec![AppMsg::new(
        MsgId::new(ProcessId(p), seq),
        Bytes::from(vec![p as u8; size]),
    )])
}

fn fd_cfg() -> FdConfig {
    FdConfig {
        heartbeat_interval: VDur::millis(20),
        timeout: VDur::millis(100),
        timeout_increment: VDur::millis(50),
    }
}

/// Builds an n-process cluster of [Driver | Consensus | Rbcast | FD]
/// stacks; `proposals[p]` is the proposal schedule of process `p`.
fn build(n: usize, proposals: Vec<Vec<(u64, Batch, VDur)>>, seed: u64) -> (Cluster, DecisionLog) {
    let log: DecisionLog = Default::default();
    let nodes: Vec<Box<dyn Node>> = (0..n)
        .map(|i| {
            Box::new(CompositeStack::new(vec![
                Box::new(Driver {
                    proposals: proposals[i].clone(),
                    decisions: log.clone(),
                }),
                Box::new(ConsensusModule::new(ConsensusConfig::default())),
                Box::new(RbcastModule::new(RbcastConfig::default())),
                Box::new(FdModule::new(HeartbeatFd::new(
                    n,
                    ProcessId(i as u16),
                    fd_cfg(),
                ))),
            ])) as Box<dyn Node>
        })
        .collect();
    (Cluster::new(ClusterConfig::new(n, seed), nodes), log)
}

/// All decisions for `instance`, grouped: (process, value).
fn decisions_for(log: &DecisionLog, instance: u64) -> Vec<(ProcessId, Batch)> {
    log.borrow()
        .iter()
        .filter(|(_, k, _)| *k == instance)
        .map(|(p, _, v)| (*p, v.clone()))
        .collect()
}

fn assert_uniform_agreement(log: &DecisionLog, instance: u64, expect_deciders: usize) {
    let ds = decisions_for(log, instance);
    assert_eq!(
        ds.len(),
        expect_deciders,
        "instance {instance}: expected {expect_deciders} deciders, saw {}",
        ds.len()
    );
    let first = &ds[0].1;
    for (p, v) in &ds {
        assert_eq!(v, first, "process {p} decided differently for {instance}");
    }
    // Integrity: nobody decides twice.
    let mut pids: Vec<ProcessId> = ds.iter().map(|(p, _)| *p).collect();
    pids.sort();
    pids.dedup();
    assert_eq!(pids.len(), ds.len(), "duplicate decision at some process");
}

#[test]
fn good_run_decides_coordinator_value() {
    let n = 3;
    let proposals: Vec<_> = (0..n)
        .map(|p| vec![(0u64, batch_of(p as u16, 0, 64), VDur::millis(1))])
        .collect();
    let (mut cluster, log) = build(n, proposals, 1);
    cluster.run_idle(VTime::ZERO + VDur::secs(2));
    assert_uniform_agreement(&log, 0, 3);
    // Round 0: decided value is the round-0 coordinator's (p1's) proposal.
    let ds = decisions_for(&log, 0);
    assert_eq!(ds[0].1, batch_of(0, 0, 64));
    // No suspicions, no round changes in a good run.
    assert_eq!(cluster.counters().event("consensus.round_changes"), 0);
    assert_eq!(cluster.counters().event("fd.suspicions"), 0);
}

#[test]
fn good_run_message_pattern_matches_paper() {
    // One consensus among n=3: proposal to 2, acks 2 back, decision
    // rbcast 4 messages (majority-optimized) = 8 consensus-related msgs.
    let n = 3;
    let proposals: Vec<_> = (0..n)
        .map(|p| vec![(0u64, batch_of(p as u16, 0, 64), VDur::millis(1))])
        .collect();
    let (mut cluster, _log) = build(n, proposals, 1);
    cluster.run_idle(VTime::ZERO + VDur::secs(2));
    let c = cluster.counters();
    assert_eq!(c.kind("consensus.proposal").msgs, 2);
    assert_eq!(c.kind("consensus.ack").msgs, 2);
    let rb = c.kind("rb.initial").msgs + c.kind("rb.relay").msgs + c.kind("rb.flood").msgs;
    assert_eq!(
        rb, 4,
        "decision rbcast should cost (n-1)*floor((n+1)/2) = 4"
    );
    assert_eq!(c.kind("consensus.estimate").msgs, 0);
}

#[test]
fn many_sequential_instances_all_agree() {
    let n = 5;
    let instances = 20u64;
    let proposals: Vec<_> = (0..n)
        .map(|p| {
            (0..instances)
                .map(|k| (k, batch_of(p as u16, k, 32), VDur::millis(1 + k)))
                .collect()
        })
        .collect();
    let (mut cluster, log) = build(n, proposals, 2);
    cluster.run_idle(VTime::ZERO + VDur::secs(5));
    for k in 0..instances {
        assert_uniform_agreement(&log, k, n);
    }
}

#[test]
fn coordinator_crash_before_proposing_terminates_with_agreement() {
    let n = 3;
    let proposals: Vec<_> = (0..n)
        .map(|p| vec![(0u64, batch_of(p as u16, 0, 64), VDur::millis(5))])
        .collect();
    let (mut cluster, log) = build(n, proposals, 3);
    // p1 (round-0 coordinator) dies before the proposals are made.
    cluster.schedule_crash(ProcessId(0), VTime::ZERO + VDur::millis(1));
    cluster.run_idle(VTime::ZERO + VDur::secs(5));
    // The two survivors must decide the same value...
    assert_uniform_agreement(&log, 0, 2);
    // ...which must be one of the proposed values (validity).
    let ds = decisions_for(&log, 0);
    let valid = [batch_of(1, 0, 64), batch_of(2, 0, 64), batch_of(0, 0, 64)];
    assert!(valid.contains(&ds[0].1), "decided value was never proposed");
    assert!(cluster.counters().event("consensus.round_changes") > 0);
}

#[test]
fn coordinator_crash_mid_proposal_preserves_agreement() {
    // Slow the NIC so the coordinator's two proposal transmissions are
    // separated in time, and crash it between them: one process holds the
    // proposal, the other does not. CT locking must still produce a
    // single decision among survivors.
    let n = 3;
    let log: DecisionLog = Default::default();
    let mut cfg = ClusterConfig::new(n, 4);
    cfg.cost = CostModel::free();
    cfg.net = NetModel {
        bandwidth_bytes_per_sec: 1_000_000, // 1 µs/byte: ~16 ms per 16 KiB copy
        prop_delay: VDur::micros(50),
        jitter: VDur::ZERO,
        per_msg_overhead: 60,
    };
    let nodes: Vec<Box<dyn Node>> = (0..n)
        .map(|i| {
            Box::new(CompositeStack::new(vec![
                Box::new(Driver {
                    proposals: vec![(0, batch_of(i as u16, 0, 16384), VDur::millis(1))],
                    decisions: log.clone(),
                }),
                Box::new(ConsensusModule::new(ConsensusConfig::default())),
                Box::new(RbcastModule::new(RbcastConfig::default())),
                Box::new(FdModule::new(HeartbeatFd::new(
                    n,
                    ProcessId(i as u16),
                    fd_cfg(),
                ))),
            ])) as Box<dyn Node>
        })
        .collect();
    let mut cluster = Cluster::new(cfg, nodes);
    // Proposal batch ≈ 16.4 KiB → ~16.5 ms per copy; first copy (to p2)
    // completes ≈ 17.5 ms, second (to p3) ≈ 34 ms. Crash at 25 ms: p2
    // holds the proposal, p3 does not.
    cluster.schedule_crash(ProcessId(0), VTime::ZERO + VDur::millis(25));
    cluster.run_idle(VTime::ZERO + VDur::secs(5));
    // Uniform agreement: every process that decided (p1 may have decided
    // just before crashing) decided the same value, and both survivors
    // decided exactly once.
    let ds = decisions_for(&log, 0);
    let first = ds[0].1.clone();
    for (p, v) in &ds {
        assert_eq!(*v, first, "process {p} decided differently");
    }
    for survivor in [ProcessId(1), ProcessId(2)] {
        let count = ds.iter().filter(|(p, _)| *p == survivor).count();
        assert_eq!(count, 1, "survivor {survivor} must decide exactly once");
    }
}

#[test]
fn false_suspicion_does_not_violate_agreement() {
    // p3 wrongly suspects the coordinator right at the start, defecting
    // to round 1 while p1/p2 continue in round 0.
    let n = 3;
    let log: DecisionLog = Default::default();
    let nodes: Vec<Box<dyn Node>> = (0..n)
        .map(|i| {
            let fd: Box<dyn Microprotocol> = if i == 2 {
                let script = vec![
                    (
                        VTime::ZERO + VDur::millis(2),
                        FdEvent::Suspect(ProcessId(0)),
                    ),
                    (
                        VTime::ZERO + VDur::millis(400),
                        FdEvent::Restore(ProcessId(0)),
                    ),
                ];
                Box::new(FdModule::new(ScriptedFd::new(n, script, VDur::millis(1))))
            } else {
                Box::new(FdModule::new(HeartbeatFd::new(
                    n,
                    ProcessId(i as u16),
                    fd_cfg(),
                )))
            };
            Box::new(CompositeStack::new(vec![
                Box::new(Driver {
                    proposals: vec![(0, batch_of(i as u16, 0, 64), VDur::millis(5))],
                    decisions: log.clone(),
                }),
                Box::new(ConsensusModule::new(ConsensusConfig::default())),
                Box::new(RbcastModule::new(RbcastConfig::default())),
                fd,
            ])) as Box<dyn Node>
        })
        .collect();
    let mut cluster = Cluster::new(ClusterConfig::new(n, 5), nodes);
    cluster.run_idle(VTime::ZERO + VDur::secs(5));
    // All three correct processes must decide identically despite the
    // wrong suspicion (p1+p2 form a round-0 majority; p3 learns the
    // decision via the rbcast notice or recovery path).
    assert_uniform_agreement(&log, 0, 3);
}

#[test]
fn single_process_group_decides_immediately() {
    let proposals = vec![vec![(0u64, batch_of(0, 0, 8), VDur::millis(1))]];
    let (mut cluster, log) = build(1, proposals, 6);
    cluster.run_idle(VTime::ZERO + VDur::secs(1));
    assert_uniform_agreement(&log, 0, 1);
    assert_eq!(
        cluster.counters().total_msgs(),
        0,
        "n=1 should send nothing"
    );
}

#[test]
fn late_proposer_still_decides() {
    // p3 proposes long after the decision was reached; it must still
    // converge on the already-decided value (via notice or recovery).
    let n = 3;
    let mut proposals: Vec<_> = (0..n)
        .map(|p| vec![(0u64, batch_of(p as u16, 0, 64), VDur::millis(1))])
        .collect();
    proposals[2] = vec![(0, batch_of(2, 0, 64), VDur::millis(500))];
    let (mut cluster, log) = build(n, proposals, 7);
    cluster.run_idle(VTime::ZERO + VDur::secs(3));
    assert_uniform_agreement(&log, 0, 3);
}
