//! Torture tests: consensus safety under sustained wrong suspicions and
//! cascading coordinator failures.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use fortika_consensus::{ConsensusConfig, ConsensusModule};
use fortika_fd::{FdConfig, FdEvent, FdModule, HeartbeatFd, ScriptedFd};
use fortika_framework::{CompositeStack, Event, EventKind, FrameworkCtx, Microprotocol, ModuleId};
use fortika_net::{AppMsg, Batch, Cluster, ClusterConfig, MsgId, Node, ProcessId, TimerId};
use fortika_rbcast::{RbcastConfig, RbcastModule};
use fortika_sim::{VDur, VTime};

type DecisionLog = Rc<RefCell<Vec<(ProcessId, u64, Batch)>>>;

struct Driver {
    proposals: Vec<(u64, Batch, VDur)>,
    decisions: DecisionLog,
}

impl Microprotocol for Driver {
    fn name(&self) -> &'static str {
        "torture-driver"
    }
    fn module_id(&self) -> ModuleId {
        80
    }
    fn subscriptions(&self) -> &'static [EventKind] {
        &[EventKind::Decide]
    }
    fn on_start(&mut self, ctx: &mut FrameworkCtx<'_, '_>) {
        for (idx, (_, _, delay)) in self.proposals.iter().enumerate() {
            ctx.set_timer(*delay, idx as u64);
        }
    }
    fn on_timer(&mut self, ctx: &mut FrameworkCtx<'_, '_>, _t: TimerId, tag: u64) {
        let (instance, value, _) = self.proposals[tag as usize].clone();
        ctx.raise(Event::Propose { instance, value });
    }
    fn on_event(&mut self, ctx: &mut FrameworkCtx<'_, '_>, ev: &Event) {
        if let Event::Decide { instance, value } = ev {
            self.decisions
                .borrow_mut()
                .push((ctx.pid(), *instance, value.clone()));
        }
    }
}

fn batch_of(p: u16, seq: u64) -> Batch {
    Batch::normalize(vec![AppMsg::new(
        MsgId::new(ProcessId(p), seq),
        Bytes::from(vec![p as u8; 32]),
    )])
}

fn assert_agreement(log: &DecisionLog, instances: u64, correct: &[ProcessId]) {
    for k in 0..instances {
        let ds: Vec<(ProcessId, Batch)> = log
            .borrow()
            .iter()
            .filter(|(_, inst, _)| *inst == k)
            .map(|(p, _, v)| (*p, v.clone()))
            .collect();
        // Every correct process decided exactly once.
        for &p in correct {
            let count = ds.iter().filter(|(q, _)| *q == p).count();
            assert_eq!(count, 1, "instance {k}: {p} decided {count} times");
        }
        // All decisions identical (uniform agreement).
        let first = &ds[0].1;
        for (p, v) in &ds {
            assert_eq!(v, first, "instance {k}: {p} decided differently");
        }
    }
}

/// Every process wrongly suspects the coordinator on a rotating schedule
/// while 30 instances run — safety must survive arbitrary FD garbage.
#[test]
fn rotating_false_suspicions_never_break_agreement() {
    let n = 3;
    let instances = 30u64;
    let log: DecisionLog = Default::default();
    let nodes: Vec<Box<dyn Node>> = (0..n)
        .map(|i| {
            // Each process falsely suspects p1 periodically, staggered,
            // and restores shortly after — a storm of wrong suspicions.
            let mut script = Vec::new();
            let mut t = 10 + 17 * i as u64;
            while t < 2_000 {
                script.push((
                    VTime::ZERO + VDur::millis(t),
                    FdEvent::Suspect(ProcessId(0)),
                ));
                script.push((
                    VTime::ZERO + VDur::millis(t + 13),
                    FdEvent::Restore(ProcessId(0)),
                ));
                t += 41;
            }
            let proposals: Vec<(u64, Batch, VDur)> = (0..instances)
                .map(|k| (k, batch_of(i as u16, k), VDur::millis(1 + 3 * k)))
                .collect();
            Box::new(CompositeStack::new(vec![
                Box::new(Driver {
                    proposals,
                    decisions: log.clone(),
                }),
                Box::new(ConsensusModule::new(ConsensusConfig::default())),
                Box::new(RbcastModule::new(RbcastConfig::default())),
                Box::new(FdModule::new(ScriptedFd::new(n, script, VDur::millis(1)))),
            ])) as Box<dyn Node>
        })
        .collect();
    let mut cluster = Cluster::new(ClusterConfig::new(n, 31), nodes);
    cluster.run_idle(VTime::ZERO + VDur::secs(20));
    let correct: Vec<ProcessId> = ProcessId::all(n).collect();
    assert_agreement(&log, instances, &correct);
}

/// Two of five coordinators crash back-to-back mid-sequence; survivors
/// must keep deciding every instance with one common value.
#[test]
fn cascading_coordinator_crashes() {
    let n = 5;
    let instances = 12u64;
    let log: DecisionLog = Default::default();
    let fd_cfg = FdConfig {
        heartbeat_interval: VDur::millis(20),
        timeout: VDur::millis(100),
        timeout_increment: VDur::millis(50),
    };
    let nodes: Vec<Box<dyn Node>> = (0..n)
        .map(|i| {
            let proposals: Vec<(u64, Batch, VDur)> = (0..instances)
                .map(|k| (k, batch_of(i as u16, k), VDur::millis(1 + 30 * k)))
                .collect();
            Box::new(CompositeStack::new(vec![
                Box::new(Driver {
                    proposals,
                    decisions: log.clone(),
                }),
                Box::new(ConsensusModule::new(ConsensusConfig::default())),
                Box::new(RbcastModule::new(RbcastConfig::default())),
                Box::new(FdModule::new(HeartbeatFd::new(
                    n,
                    ProcessId(i as u16),
                    fd_cfg.clone(),
                ))),
            ])) as Box<dyn Node>
        })
        .collect();
    let mut cluster = Cluster::new(ClusterConfig::new(n, 32), nodes);
    // p1 (round-0 coordinator) dies mid-sequence; p2 (its successor)
    // dies shortly after taking over.
    cluster.schedule_crash(ProcessId(0), VTime::ZERO + VDur::millis(100));
    cluster.schedule_crash(ProcessId(1), VTime::ZERO + VDur::millis(400));
    cluster.run_idle(VTime::ZERO + VDur::secs(30));
    let correct: Vec<ProcessId> = ProcessId::all(n).skip(2).collect();
    assert_agreement(&log, instances, &correct);
}

/// Decisions arriving long after everyone moved on (a laggard that was
/// wrongly suspected and isolated by its own FD) still converge via the
/// recovery path.
#[test]
fn long_isolated_laggard_catches_up() {
    let n = 3;
    let instances = 10u64;
    let log: DecisionLog = Default::default();
    let nodes: Vec<Box<dyn Node>> = (0..n)
        .map(|i| {
            // p3 suspects everyone for the first 1.5 s (isolation), then
            // restores — its estimates went nowhere meanwhile.
            let script = if i == 2 {
                vec![
                    (
                        VTime::ZERO + VDur::millis(1),
                        FdEvent::Suspect(ProcessId(0)),
                    ),
                    (
                        VTime::ZERO + VDur::millis(1),
                        FdEvent::Suspect(ProcessId(1)),
                    ),
                    (
                        VTime::ZERO + VDur::millis(1500),
                        FdEvent::Restore(ProcessId(0)),
                    ),
                    (
                        VTime::ZERO + VDur::millis(1500),
                        FdEvent::Restore(ProcessId(1)),
                    ),
                ]
            } else {
                Vec::new()
            };
            let proposals: Vec<(u64, Batch, VDur)> = (0..instances)
                .map(|k| (k, batch_of(i as u16, k), VDur::millis(1 + 10 * k)))
                .collect();
            Box::new(CompositeStack::new(vec![
                Box::new(Driver {
                    proposals,
                    decisions: log.clone(),
                }),
                Box::new(ConsensusModule::new(ConsensusConfig::default())),
                Box::new(RbcastModule::new(RbcastConfig::default())),
                Box::new(FdModule::new(ScriptedFd::new(n, script, VDur::millis(1)))),
            ])) as Box<dyn Node>
        })
        .collect();
    let mut cluster = Cluster::new(ClusterConfig::new(n, 33), nodes);
    cluster.run_idle(VTime::ZERO + VDur::secs(20));
    let correct: Vec<ProcessId> = ProcessId::all(n).collect();
    assert_agreement(&log, instances, &correct);
}
