//! Chandra–Toueg consensus for the Fortika reproduction.
//!
//! Consensus (propose/decide) lets processes agree on one of their
//! proposed values despite crashes, given an eventually-accurate failure
//! detector and a correct majority. The modular atomic broadcast stack
//! (§3 of the paper) runs a *sequence* of consensus instances, one per
//! ordering step; this crate implements the multi-instance module with
//! the paper's optimizations (skipped round-0 estimate phase,
//! suspicion-driven rounds, `DECISION` tag dissemination).
//!
//! See [`ConsensusModule`] for the algorithm description and
//! [`msg::ConsensusMsg`] for the wire vocabulary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod module;
pub mod msg;

pub use module::{ConsensusConfig, ConsensusModule, CONSENSUS_MODULE_ID, DECISION_STREAM};
pub use msg::{coordinator, ConsensusMsg, DecisionNotice, VoteRecord};
