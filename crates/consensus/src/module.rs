//! The consensus microprotocol: multi-instance Chandra–Toueg.
//!
//! # Algorithm (per instance)
//!
//! Rounds rotate coordinators (`coord(r) = p_{(r mod n)+1}`). The
//! implementation carries the paper's modular-side optimizations (§3.2):
//!
//! 1. **Round 0 has no estimate phase**: the coordinator proposes its own
//!    initial value directly (Fig. 3).
//! 2. **Rounds advance only on suspicion**: instead of free-running
//!    rounds, a process moves to round `r+1` (sending its estimate to the
//!    new coordinator) only when its failure detector suspects the
//!    current coordinator. A slow periodic sweep additionally rotates
//!    rounds for instances that make no progress, which preserves
//!    liveness under pathological mixed-suspicion schedules.
//! 3. **Decisions are disseminated as a `DECISION` tag** through the
//!    reliable broadcast module: in round 0 the notice carries no value —
//!    receivers decide the round-0 proposal they already hold. A receiver
//!    missing the proposal (possible when the coordinator crashed
//!    mid-round) recovers with `DecisionRequest`/`DecisionFull`.
//!
//! Safety is the classic CT argument: a decision in round `r` requires
//! acks from a majority, every ack locks the proposal as the acker's
//! estimate with timestamp `r`, and any later coordinator gathers
//! estimates from a majority — which intersects every ack quorum — and
//! adopts the max-timestamp estimate.
//!
//! # Pipelined instances
//!
//! All per-instance state — protocol rounds, durable vote records, the
//! decided log and its watermark GC — is keyed by instance number, so
//! any number of instances may run **concurrently**: the module is
//! agnostic to how far ahead the delivery layer's windowed sequencer
//! proposes ([`ConsensusConfig::pipeline_depth`] only informs the gap
//! heuristic, which must not mistake in-flight window instances for
//! missed decisions). Decisions are raised as they land; the layer
//! above buffers and applies them strictly in instance order.
//!
//! # Crash-recovery
//!
//! A process revived via `Cluster::schedule_restart` loses all volatile
//! state. Two mechanisms make that survivable:
//!
//! * **Durable votes** — every vote (ack / adoption) writes a
//!   [`VoteRecord`] to the host's stable store atomically with the vote
//!   message; [`ConsensusModule::resume`] replays the records so a
//!   revived process re-enters undecided instances with its locked
//!   `(round, estimate, ts)` intact. Without this, the quorum
//!   intersection at the heart of CT safety breaks (an amnesiac acker
//!   can help decide a second, different value). The contiguous decided
//!   watermark is persisted too, fencing re-votes in long-decided
//!   instances; records below it are garbage collected.
//! * **Rejoin catch-up** — the decided *values* are not persisted: the
//!   revived process advertises "I am at instance 0" with a
//!   [`JoinRequest`](ConsensusMsg::JoinRequest) broadcast and peers
//!   stream the decided prefix back in bulk
//!   [`StateTransfer`](ConsensusMsg::StateTransfer) batches, chained at
//!   round-trip pace until the joiner reaches the live frontier. Every
//!   replayed decision re-raises `Event::Decide`, so the stack above
//!   re-delivers the prefix byte-identically — which the chaos oracle
//!   checks across incarnations.
//!
//! # Log compaction and snapshot state transfer
//!
//! The decision cache is bounded, so under unbounded history the old
//! prefix must eventually go. Instead of evicting it blindly (which made
//! deep rejoins unservable), every process folds the contiguous decided
//! prefix through a deterministic [`SnapshotFold`] and periodically
//! materializes a [`Snapshot`] — application-state digest, per-sender
//! delivered sets and the `last_included` instance — persisted via the
//! stable store, then truncates cached decisions at or below
//! `last_included`. A joiner whose gap starts inside the compacted
//! prefix receives the snapshot instead, chunked at round-trip pace
//! ([`SnapshotTransfer`](ConsensusMsg::SnapshotTransfer) /
//! [`SnapshotPull`](ConsensusMsg::SnapshotPull)); it installs the
//! snapshot, raises `Event::InstallSnapshot` so the delivery layer skips
//! the compacted instances, and resumes log catch-up at
//! `last_included + 1`. Deliveries before the install point are replaced
//! by the snapshot, so byte-identical replay is owed only for the tail —
//! the recovery-aware oracle audits exactly that, plus cross-process
//! agreement on snapshot digests.

use std::collections::{BTreeMap, BTreeSet};

use bytes::Bytes;
use fortika_framework::{Event, EventKind, FrameworkCtx, Microprotocol, ModuleId};
use fortika_net::membership::{decode_reconfigs, encode_reconfigs};
use fortika_net::snapshot::{chunk_of, stamp_of};
use fortika_net::wire::{decode, encode, WireReader, WireWriter};
use fortika_net::{
    parse_reconfig, AppState, Batch, ChunkOutcome, ConfigChange, ConfigTimeline, PeerRateLimiter,
    ProcessId, Snapshot, SnapshotDownload, SnapshotFold, StableStore, TimerId,
};
use fortika_rbcast::OriginLog;
use fortika_sim::{VDur, VTime};

use crate::msg::{coordinator, ConsensusMsg, DecisionNotice, VoteRecord};

/// Wire demux id of the consensus module.
pub const CONSENSUS_MODULE_ID: ModuleId = 2;

/// Reliable-broadcast stream carrying decision notices.
pub const DECISION_STREAM: u8 = 0;

const TAG_SWEEP: u64 = 0;

/// Stable-store key namespace tag of per-instance vote records.
const STABLE_VOTE_TAG: u64 = 1 << 56;
/// Stable-store key of the contiguous decided watermark.
const STABLE_WATERMARK_KEY: u64 = 2 << 56;
/// Stable-store key of the latest log-compaction snapshot.
const STABLE_SNAPSHOT_KEY: u64 = 3 << 56;
/// Stable-store key of the registered reconfiguration history.
const STABLE_CONFIG_KEY: u64 = 4 << 56;

/// Stable-store key of `instance`'s vote record.
fn vote_key(instance: u64) -> u64 {
    debug_assert!(instance < (1 << 56));
    STABLE_VOTE_TAG | instance
}

/// Instances streamed per [`ConsensusMsg::StateTransfer`] reply.
const MAX_TRANSFER: u64 = 16;
/// Minimum spacing of rejoin re-announcements.
const JOIN_RETRY: VDur = VDur::millis(300);
/// Minimum spacing of snapshot offers toward one lagging peer.
const OFFER_SPACING: VDur = VDur::millis(50);

/// Configuration of the consensus module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsensusConfig {
    /// An undecided instance stuck in one round for longer than this is
    /// rotated to the next coordinator even without a suspicion (liveness
    /// backstop; never reached in good runs).
    pub progress_timeout: VDur,
    /// Period of the background sweep that enforces `progress_timeout`
    /// and retries decision requests.
    pub sweep_interval: VDur,
    /// How many decided values are cached for recovery requests.
    pub decision_cache: usize,
    /// Fold the decided prefix into a log-compaction [`Snapshot`] every
    /// this many instances (also whenever the decision cache would
    /// otherwise evict an uncompacted decision). `0` disables
    /// snapshotting — then a joiner whose gap was evicted everywhere
    /// stalls forever (`consensus.join_unservable`).
    pub snapshot_interval: u64,
    /// The delivery layer's windowed-sequencer depth α (how many
    /// instances it keeps in flight concurrently; see
    /// `AbcastConfig::pipeline_depth` in `fortika-abcast`).
    ///
    /// The module runs any number of instances concurrently regardless —
    /// per-instance state, durable vote records and the watermark GC are
    /// all keyed by instance — but its *gap heuristic* needs the depth:
    /// traffic for an instance within `watermark + α` is normal
    /// pipelining, not evidence of missed decisions, so only sightings
    /// beyond the window trigger decision pulls.
    pub pipeline_depth: u64,
    /// **Test-only fault hook, debug builds only:** skip persisting CT
    /// vote records. Plants the classic lost-vote recovery bug for the
    /// fuzz-minimizer acceptance suite; compiled to a no-op in release
    /// builds (`cfg!(debug_assertions)`).
    pub skip_vote_persist: bool,
    /// Size of the initial voting member set. `0` (the default) means
    /// "every process in the cluster" — the static-group behaviour.
    /// Reconfiguration runs build clusters at standby capacity (spare
    /// processes crashed at time zero, awaiting an `Add`), so the voter
    /// count is smaller than the cluster size there.
    pub initial_members: usize,
    /// Activation offset of log-decided reconfigurations: a membership
    /// change decided at instance `d` governs instances `d + offset` on.
    /// Must be at least the pipeline depth, or in-flight instances could
    /// be governed by a configuration their proposer cannot yet know.
    pub reconfig_offset: u64,
    /// **Test-only fault hook, debug builds only:** never register
    /// decided reconfigurations. The process keeps voting with the
    /// *initial* configuration's quorum and coordinator math — the
    /// stale-quorum membership bug the config-aware oracle must catch
    /// (`tests/reconfig_oracle.rs`). A no-op in release builds.
    pub skip_config_fence: bool,
}

impl Default for ConsensusConfig {
    fn default() -> Self {
        ConsensusConfig {
            progress_timeout: VDur::secs(1),
            sweep_interval: VDur::millis(250),
            decision_cache: 1024,
            snapshot_interval: 256,
            pipeline_depth: 1,
            skip_vote_persist: false,
            initial_members: 0,
            reconfig_offset: 8,
            skip_config_fence: false,
        }
    }
}

/// Per-instance protocol state.
struct Instance {
    round: u32,
    round_entered: VTime,
    /// Current estimate and its adoption timestamp.
    estimate: Option<Batch>,
    ts: u32,
    /// Latest proposal received (round, value) — needed to decide on a
    /// round-tagged `DECISION` notice.
    last_proposal: Option<(u32, Batch)>,
    /// Acks gathered while coordinating the current round.
    acks: BTreeSet<ProcessId>,
    /// Highest-round estimate received from each peer (round, value, ts).
    estimates: BTreeMap<ProcessId, (u32, Batch, u32)>,
    /// Last round for which we (as coordinator) already proposed.
    proposal_sent_round: Option<u32>,
    /// A `DECISION` tag arrived for this round but the matching proposal
    /// is missing; awaiting recovery.
    pending_tag: Option<u32>,
    /// When the last recovery request went out.
    last_request: Option<VTime>,
}

impl Instance {
    fn new(now: VTime) -> Self {
        Instance {
            round: 0,
            round_entered: now,
            estimate: None,
            ts: 0,
            last_proposal: None,
            acks: BTreeSet::new(),
            estimates: BTreeMap::new(),
            proposal_sent_round: None,
            pending_tag: None,
            last_request: None,
        }
    }
}

/// The consensus microprotocol.
///
/// Consumes [`Event::Propose`], raises [`Event::Decide`]; uses the
/// reliable broadcast service (stream [`DECISION_STREAM`]) for decision
/// dissemination and reacts to [`Event::Suspect`]/[`Event::Restore`].
pub struct ConsensusModule {
    cfg: ConsensusConfig,
    instances: BTreeMap<u64, Instance>,
    /// Instances this process may no longer vote in (voting fence).
    /// After a restart it is pre-loaded from the persisted watermark,
    /// so it can run *ahead* of [`replayed`](Self::replayed).
    decided_log: OriginLog,
    /// Instances whose decision was raised as [`Event::Decide`] in this
    /// incarnation — the replay/delivery progress. Always starts at 0,
    /// so a revived process re-raises the whole decided prefix.
    replayed: OriginLog,
    decisions: BTreeMap<u64, Batch>,
    suspected: BTreeSet<ProcessId>,
    /// Per-peer rate limiter for gap/rejoin recovery requests.
    gap_limiter: PeerRateLimiter,
    /// Highest instance number observed in any peer message.
    highest_seen: u64,
    /// Vote records recovered from stable storage (restart only); seeds
    /// per-instance state when an instance is first touched.
    recovered_votes: BTreeMap<u64, VoteRecord>,
    /// Still catching up after a restart (rejoin announcements active).
    rejoining: bool,
    /// Highest replay frontier any state transfer advertised.
    rejoin_target: u64,
    /// When the last rejoin announcement went out.
    last_join: VTime,
    /// Deterministic fold of the contiguous decided prefix (feeds
    /// snapshots; mirrors the delivery path's dedup exactly).
    fold: SnapshotFold,
    /// Latest materialized or installed snapshot, plus its cached
    /// encoding for chunked serving.
    snapshot: Option<Snapshot>,
    snapshot_bytes: Bytes,
    /// In-progress snapshot download (receiver side).
    download: SnapshotDownload,
    /// Rate limiter for snapshot offers toward lagging peers (a batch
    /// of gap requests needs one offer, not eight).
    offer_limiter: PeerRateLimiter,
    /// Snapshot recovered from stable storage (restart only); installed
    /// in `on_start`, where a handler context is available.
    restored: Option<Snapshot>,
    /// The versioned configuration history (log-decided membership).
    /// Built at `on_start` (the group size is only known then); `None`
    /// answers every quorum question with the static-group math.
    timeline: Option<ConfigTimeline>,
    /// Reconfiguration commands decided but not yet *registered*: a
    /// change enters the timeline only once the contiguous replayed
    /// prefix covers its decided instance, so versions are numbered in
    /// decided order on every process even when pipelined instances
    /// land out of order.
    pending_reconfigs: BTreeMap<u64, ConfigChange>,
    /// Reconfiguration history recovered from stable storage (restart
    /// only); registered in `on_start`.
    recovered_reconfigs: Vec<(u64, ConfigChange)>,
}

impl ConsensusModule {
    /// Creates the module (fresh start at time zero).
    pub fn new(cfg: ConsensusConfig) -> Self {
        ConsensusModule {
            cfg,
            instances: BTreeMap::new(),
            decided_log: OriginLog::default(),
            replayed: OriginLog::default(),
            decisions: BTreeMap::new(),
            suspected: BTreeSet::new(),
            gap_limiter: PeerRateLimiter::new(),
            highest_seen: 0,
            recovered_votes: BTreeMap::new(),
            rejoining: false,
            rejoin_target: 0,
            last_join: VTime::ZERO,
            fold: SnapshotFold::new(None),
            snapshot: None,
            snapshot_bytes: Bytes::new(),
            download: SnapshotDownload::default(),
            offer_limiter: PeerRateLimiter::new(),
            restored: None,
            timeline: None,
            pending_reconfigs: BTreeMap::new(),
            recovered_reconfigs: Vec::new(),
        }
    }

    /// Attaches an application-state hook to the snapshot fold (call
    /// right after [`new`](Self::new)/[`resume`](Self::resume), before
    /// the module processes anything).
    pub fn with_app(mut self, app: Option<Box<dyn AppState>>) -> Self {
        self.fold = SnapshotFold::new(app);
        self
    }

    /// Creates the module for a process revived after a crash: replays
    /// the persisted vote records, decided watermark and log-compaction
    /// snapshot out of `stable` and arms the rejoin announcement (see
    /// the [crate docs](crate)).
    pub fn resume(cfg: ConsensusConfig, stable: &StableStore) -> Self {
        let mut module = ConsensusModule::new(cfg);
        module.rejoining = true;
        for (&key, bytes) in stable {
            if key == STABLE_WATERMARK_KEY {
                if let Ok(w) = decode::<u64>(bytes.clone()) {
                    module.decided_log.advance_to(w);
                }
            } else if key == STABLE_SNAPSHOT_KEY {
                if let Ok(snap) = decode::<Snapshot>(bytes.clone()) {
                    module.restored = Some(snap);
                }
            } else if key == STABLE_CONFIG_KEY {
                let mut r = WireReader::new(bytes.clone());
                if let Ok(history) = decode_reconfigs(&mut r) {
                    module.recovered_reconfigs = history;
                }
            } else if key >> 56 == STABLE_VOTE_TAG >> 56 {
                if let Ok(rec) = decode::<VoteRecord>(bytes.clone()) {
                    module.recovered_votes.insert(key & !STABLE_VOTE_TAG, rec);
                }
            }
        }
        module
    }

    /// The timeline, built on first use (the voter count defaults to
    /// the cluster size; reconfig runs override it via
    /// [`ConsensusConfig::initial_members`]).
    fn timeline_mut(&mut self, n: usize) -> &mut ConfigTimeline {
        let voters = if self.cfg.initial_members == 0 {
            n
        } else {
            self.cfg.initial_members
        };
        let offset = self.cfg.reconfig_offset.max(1);
        self.timeline
            .get_or_insert_with(|| ConfigTimeline::new(voters, offset))
    }

    /// The member set governing `instance`, in rotation order.
    fn members_of(&self, instance: u64, n: usize) -> Vec<ProcessId> {
        match &self.timeline {
            Some(t) => t.members_at(instance),
            None => ProcessId::all(n).collect(),
        }
    }

    /// The quorum size at `instance`.
    fn majority_of(&self, instance: u64, n: usize) -> usize {
        match &self.timeline {
            Some(t) => t.majority_at(instance),
            None => n / 2 + 1,
        }
    }

    /// The coordinator of `round` at `instance` (rotation over the
    /// governing member set).
    fn coordinator_of(&self, instance: u64, round: u32, n: usize) -> ProcessId {
        match &self.timeline {
            Some(t) => t.coordinator_at(instance, round),
            None => coordinator(round, n),
        }
    }

    /// True when the membership governing `instance` is fully determined
    /// by this process's contiguous replayed prefix (the config fence).
    fn config_certain(&self, instance: u64) -> bool {
        match &self.timeline {
            Some(t) => t.certain_at(instance, self.replayed.watermark()),
            None => true,
        }
    }

    /// True when this process may vote (ack / estimate / propose) at
    /// `instance`: its membership there must be certain, and it must be
    /// a member. Non-members keep running as learners — they record
    /// proposals, learn decisions and deliver, but never vote.
    fn can_vote(&self, instance: u64, me: ProcessId) -> bool {
        match &self.timeline {
            Some(t) => {
                t.certain_at(instance, self.replayed.watermark()) && t.is_member_at(instance, me)
            }
            None => true,
        }
    }

    fn is_decided(&self, instance: u64) -> bool {
        !self.decided_log.is_new(instance)
    }

    /// Per-instance state, created on first touch; a revived process
    /// seeds fresh instances from its recovered vote records so its
    /// locked `(round, estimate, ts)` is honoured.
    fn instance_entry(&mut self, instance: u64, now: VTime) -> &mut Instance {
        if !self.instances.contains_key(&instance) {
            let mut inst = Instance::new(now);
            if let Some(rec) = self.recovered_votes.get(&instance) {
                inst.round = rec.round;
                inst.estimate = Some(rec.value.clone());
                inst.ts = rec.ts;
            }
            self.instances.insert(instance, inst);
        }
        self.instances.get_mut(&instance).expect("just inserted")
    }

    /// Writes `instance`'s vote record to stable storage, atomically
    /// with the vote message of the enclosing handler.
    fn persist_vote(
        &self,
        ctx: &mut FrameworkCtx<'_, '_>,
        instance: u64,
        round: u32,
        ts: u32,
        value: &Batch,
    ) {
        if cfg!(debug_assertions) && self.cfg.skip_vote_persist {
            // Injected fault (fuzz-minimizer acceptance suite): the
            // vote is acked but never reaches stable storage, so a
            // crash-restart forgets its lock.
            return;
        }
        let rec = VoteRecord {
            round,
            ts,
            value: value.clone(),
        };
        ctx.persist(vote_key(instance), encode(&rec));
    }

    /// Registers a decision locally: caches the value, raises
    /// [`Event::Decide`] and drops per-instance state. Keyed on the
    /// replay log, so a revived process re-raises the decided prefix
    /// learned through state transfer even though its voting fence
    /// (`decided_log`) already covers it.
    fn decide_local(&mut self, ctx: &mut FrameworkCtx<'_, '_>, instance: u64, value: Batch) {
        if !self.replayed.is_new(instance) {
            return;
        }
        self.replayed.complete(instance);
        let fence_before = self.decided_log.watermark();
        self.decided_log.complete(instance);
        self.persist_fence(ctx, fence_before);
        self.decisions.insert(instance, value.clone());
        self.fold.absorb(instance, &value);
        self.note_reconfigs(ctx, instance, &value);
        self.maybe_compact(ctx);
        if self.cfg.snapshot_interval == 0 {
            // No snapshots: bound the cache by blind eviction (the
            // pre-compaction behaviour — evicted prefixes become
            // unservable to joiners).
            while self.decisions.len() > self.cfg.decision_cache {
                self.decisions.pop_first();
            }
        }
        self.instances.remove(&instance);
        ctx.bump("consensus.decided", 1);
        ctx.trace_span("consensus", instance, "decided", 0);
        ctx.raise(Event::Decide { instance, value });
    }

    /// Persists the voting fence if it advanced past `fence_before` and
    /// garbage-collects the vote records the advance makes obsolete.
    fn persist_fence(&mut self, ctx: &mut FrameworkCtx<'_, '_>, fence_before: u64) {
        let fence_after = self.decided_log.watermark();
        if fence_after > fence_before {
            ctx.persist(STABLE_WATERMARK_KEY, encode(&fence_after));
            for k in fence_before..fence_after {
                ctx.unpersist(vote_key(k));
            }
        }
    }

    /// Registers the reconfiguration decided at `decided_at`: updates
    /// the timeline, persists the full history atomically with the
    /// enclosing handler, and reports the new version's stamp — to the
    /// harness (config-aware oracle) and on the stack bus (the failure
    /// detector re-points its monitor set).
    fn register_reconfig(
        &mut self,
        ctx: &mut FrameworkCtx<'_, '_>,
        decided_at: u64,
        change: ConfigChange,
    ) {
        if cfg!(debug_assertions) && self.cfg.skip_config_fence {
            // Injected fault (reconfig oracle acceptance suite): the
            // decided change is ignored, so this process keeps voting
            // with the initial configuration's quorum and coordinator
            // math and never reports a config stamp.
            return;
        }
        let n = ctx.n();
        let Some(stamp) = self.timeline_mut(n).register(decided_at, change) else {
            return; // duplicate (replay / snapshot overlap)
        };
        let history = self.timeline.as_ref().expect("just touched").reconfigs();
        let mut w = WireWriter::new();
        encode_reconfigs(&history, &mut w);
        ctx.persist(STABLE_CONFIG_KEY, w.finish());
        ctx.bump("consensus.reconfigs", 1);
        ctx.trace_span("consensus", decided_at, "config_active", stamp.version);
        ctx.note_config(stamp.clone());
        ctx.raise(Event::ConfigActive { stamp });
    }

    /// Scans a freshly decided batch for reconfiguration commands, then
    /// registers every pending command the contiguous replayed prefix
    /// now covers — in decided-instance order, so configuration
    /// versions are numbered identically on every process regardless of
    /// the order pipelined decisions landed in.
    fn note_reconfigs(&mut self, ctx: &mut FrameworkCtx<'_, '_>, instance: u64, value: &Batch) {
        for msg in value.msgs() {
            if let Some(change) = parse_reconfig(&msg.payload) {
                // First command in the batch wins; the submission path
                // spaces reconfigs out so this is the rare tie-break.
                self.pending_reconfigs.entry(instance).or_insert(change);
            }
        }
        while let Some((&d, &change)) = self.pending_reconfigs.first_key_value() {
            if d >= self.replayed.watermark() {
                break; // not contiguous yet: an earlier decision is missing
            }
            self.pending_reconfigs.remove(&d);
            self.register_reconfig(ctx, d, change);
        }
    }

    /// Materializes a snapshot when the fold ran `snapshot_interval`
    /// instances past the previous one — or early, whenever the decision
    /// cache would otherwise have to evict an uncompacted decision
    /// (compaction replaces eviction, so every instance a joiner may
    /// miss is servable from either the log tail or the snapshot).
    fn maybe_compact(&mut self, ctx: &mut FrameworkCtx<'_, '_>) {
        let interval = self.cfg.snapshot_interval;
        if interval == 0 {
            return;
        }
        let folded = self.fold.next_instance();
        let base = self.snapshot.as_ref().map_or(0, |s| s.last_included + 1);
        let overflow = self.decisions.len() > self.cfg.decision_cache;
        if folded < base + interval && !(overflow && folded > base) {
            return;
        }
        let Some(mut snap) = self.fold.snapshot() else {
            return;
        };
        // The snapshot carries the reconfiguration history decided
        // within the prefix it covers: every registered change is below
        // the replayed watermark, which the fold never outruns.
        if let Some(t) = &self.timeline {
            snap.reconfigs = t.reconfigs();
        }
        ctx.bump("consensus.snapshots", 1);
        ctx.trace_span("consensus", snap.last_included, "snapshot_offer", 0);
        self.set_snapshot(ctx, snap, false);
    }

    /// Adopts `snap` as this process's serving snapshot: persists it,
    /// evicts the oldest *compacted* decisions down to the cache bound,
    /// and reports the stamp to the harness.
    ///
    /// Only snapshot-covered entries are evicted, and only while the
    /// cache overflows — the recent log tail stays as deep as
    /// `decision_cache` allows, so small gaps (a briefly partitioned
    /// peer) are still served as cheap `DecisionFull`/`StateTransfer`
    /// replies and the snapshot path is reserved for deep ones.
    fn set_snapshot(&mut self, ctx: &mut FrameworkCtx<'_, '_>, snap: Snapshot, installed: bool) {
        let bytes = encode(&snap);
        // Durability is not free: materializing charges the encode
        // cost, installing charges decode + restore + re-encode for
        // serving — both proportional to the snapshot's encoded size
        // (zero under the default calibration; see docs/COST_MODEL.md).
        let cost = if installed {
            ctx.costs().snapshot_install_cost(bytes.len())
        } else {
            ctx.costs().snapshot_encode_cost(bytes.len())
        };
        ctx.charge_durability(cost);
        ctx.persist(STABLE_SNAPSHOT_KEY, bytes.clone());
        while self.decisions.len() > self.cfg.decision_cache {
            match self.decisions.first_key_value() {
                Some((&k, _)) if k <= snap.last_included => {
                    self.decisions.pop_first();
                }
                _ => break, // uncompacted entries are never dropped
            }
        }
        ctx.note_snapshot(stamp_of(&snap, installed));
        self.snapshot_bytes = bytes;
        self.snapshot = Some(snap);
    }

    /// Seeing traffic for instance `seen` while older instances are
    /// still undecided means we missed decisions (partition, loss, a
    /// long suspicion): pull a bounded batch of them from the process we
    /// heard from. Without this, a healed process recovers only one
    /// instance per progress-timeout and can lag arbitrarily far behind.
    fn maybe_request_gap(&mut self, ctx: &mut FrameworkCtx<'_, '_>, from: ProcessId, seen: u64) {
        self.highest_seen = self.highest_seen.max(seen);
        let watermark = self.decided_log.watermark();
        // Instances inside the pipeline window above the contiguous
        // decided watermark are normally in flight, not missing.
        let expected = watermark + self.cfg.pipeline_depth.max(1) - 1;
        if seen <= expected || from == ctx.pid() {
            return;
        }
        // Rate limited per peer: throttling catch-up toward one lagging
        // peer must not suppress catch-up toward another.
        let now = ctx.now();
        if !self.gap_limiter.allow(from, now, VDur::millis(50)) {
            return;
        }
        self.request_gap_batch(ctx, from, seen);
    }

    /// Pulls a bounded batch of missing decisions (lowest undecided
    /// first) from `from`.
    fn request_gap_batch(&mut self, ctx: &mut FrameworkCtx<'_, '_>, from: ProcessId, seen: u64) {
        const MAX_BATCH: u64 = 8;
        let watermark = self.decided_log.watermark();
        for instance in watermark..seen.min(watermark + MAX_BATCH) {
            if !self.is_decided(instance) {
                ctx.bump("consensus.gap_requests", 1);
                ctx.trace_span("consensus", instance, "gap_pull", u64::from(from.0));
                let msg = ConsensusMsg::DecisionRequest { instance };
                ctx.send_net(from, "consensus.decision_request", encode(&msg));
            }
        }
    }

    /// Coordinator-side: a majority acked our proposal — decide and
    /// disseminate.
    fn try_conclude(&mut self, ctx: &mut FrameworkCtx<'_, '_>, instance: u64) {
        let n = ctx.n();
        let majority = self.majority_of(instance, n);
        let Some(inst) = self.instances.get(&instance) else {
            return;
        };
        if inst.proposal_sent_round != Some(inst.round) || inst.acks.len() < majority {
            return;
        }
        let round = inst.round;
        let value = inst.estimate.clone().unwrap_or_default();
        // Round-0 decisions ride as a tiny DECISION tag; later rounds
        // ship the full value (receivers may lack the proposal).
        let full = if round == 0 {
            None
        } else {
            Some(value.clone())
        };
        let notice = DecisionNotice {
            instance,
            round,
            full,
        };
        ctx.raise(Event::Rbcast {
            stream: DECISION_STREAM,
            payload: encode(&notice),
        });
        self.decide_local(ctx, instance, value);
    }

    /// Coordinator-side: propose once a majority of estimates for the
    /// current round has been gathered (rounds ≥ 1 only).
    fn try_propose_from_estimates(&mut self, ctx: &mut FrameworkCtx<'_, '_>, instance: u64) {
        let n = ctx.n();
        let me = ctx.pid();
        let members = self.members_of(instance, n);
        let majority = members.len() / 2 + 1;
        if !self.can_vote(instance, me) {
            return; // learner, or membership at `instance` still uncertain
        }
        let Some(inst) = self.instances.get_mut(&instance) else {
            return;
        };
        let round = inst.round;
        if members[round as usize % members.len()] != me
            || round == 0
            || inst.proposal_sent_round == Some(round)
        {
            return;
        }
        let count = inst
            .estimates
            .values()
            .filter(|(r, _, _)| *r == round)
            .count();
        if count < majority {
            return;
        }
        // Adopt the estimate with the highest adoption timestamp; ties
        // broken by lowest process id via iteration order independence:
        // collect and sort for determinism.
        let mut candidates: Vec<(&ProcessId, &(u32, Batch, u32))> = inst
            .estimates
            .iter()
            .filter(|(_, (r, _, _))| *r == round)
            .collect();
        candidates.sort_by_key(|(pid, (_, _, ts))| (std::cmp::Reverse(*ts), **pid));
        // Unlike the monolithic stack, a tie among ts-0 estimates needs
        // no batch union here: consensus promises strict validity (the
        // decision is *a* proposed value), and messages missing from
        // the winning estimate stay pending in the abcast module, which
        // re-proposes them next instance and re-diffuses them to every
        // process (including future coordinators) on its retransmission
        // timer.
        let value = candidates[0].1 .1.clone();
        inst.estimate = Some(value.clone());
        // Adoption timestamps are round+1 so that a value locked by an
        // ack quorum always outranks never-adopted initial values (ts 0).
        inst.ts = round + 1;
        inst.last_proposal = Some((round, value.clone()));
        inst.proposal_sent_round = Some(round);
        inst.acks.clear();
        inst.acks.insert(me);
        ctx.bump("consensus.proposals", 1);
        ctx.trace_span("consensus", instance, "proposed", u64::from(round));
        // Coordinator self-ack: durable before (atomically with) the
        // proposal leaves this process.
        self.persist_vote(ctx, instance, round, round + 1, &value);
        let msg = ConsensusMsg::Propose {
            instance,
            round,
            value,
        };
        ctx.broadcast_net("consensus.proposal", encode(&msg));
        self.try_conclude(ctx, instance);
    }

    /// Moves `instance` to the next round whose coordinator is not
    /// currently suspected, then plays this process's role in it.
    fn advance_round(&mut self, ctx: &mut FrameworkCtx<'_, '_>, instance: u64) {
        let n = ctx.n();
        let me = ctx.pid();
        let now = ctx.now();
        let members = self.members_of(instance, n);
        let coord_of = |round: u32| members[round as usize % members.len()];
        let votable = self.can_vote(instance, me);
        let Some(inst) = self.instances.get_mut(&instance) else {
            return;
        };
        let mut round = inst.round + 1;
        // The skip is bounded by one full rotation: past it the same
        // coordinators repeat, and a learner (never its own coordinator)
        // must not spin when every member is transiently suspected.
        let mut skips = 0;
        while coord_of(round) != me
            && self.suspected.contains(&coord_of(round))
            && skips < members.len()
        {
            round += 1;
            skips += 1;
        }
        inst.round = round;
        inst.round_entered = now;
        inst.acks.clear();
        ctx.bump("consensus.round_changes", 1);
        ctx.trace_span("consensus", instance, "round_change", u64::from(round));
        if !votable {
            // Learners (and processes whose membership at `instance` is
            // still uncertain) track rounds but never vote: no estimate
            // goes out, no proposal is made.
            ctx.bump("consensus.config_fence_drops", 1);
            return;
        }
        let estimate = inst.estimate.clone().unwrap_or_default();
        let ts = inst.ts;
        let coord = coord_of(round);
        if coord == me {
            // We coordinate: our own estimate joins the collection.
            inst.estimates.insert(me, (round, estimate, ts));
            self.try_propose_from_estimates(ctx, instance);
        } else {
            let msg = ConsensusMsg::Estimate {
                instance,
                round,
                value: estimate,
                ts,
            };
            ctx.send_net(coord, "consensus.estimate", encode(&msg));
        }
    }

    fn on_propose_event(&mut self, ctx: &mut FrameworkCtx<'_, '_>, instance: u64, value: Batch) {
        if self.is_decided(instance) {
            return;
        }
        let n = ctx.n();
        let me = ctx.pid();
        let now = ctx.now();
        let members = self.members_of(instance, n);
        let votable = self.can_vote(instance, me);
        let inst = self.instance_entry(instance, now);
        if inst.estimate.is_none() {
            inst.estimate = Some(value);
            inst.ts = 0;
        }
        ctx.bump("consensus.instances", 1);
        ctx.trace_span("consensus", instance, "open", 0);
        if !votable {
            // A learner (or a process still uncertain of the membership
            // at `instance`) records its initial value but never
            // proposes; it learns the decision through dissemination.
            ctx.bump("consensus.config_fence_drops", 1);
            return;
        }
        if inst.round == 0 && members[0] == me && inst.proposal_sent_round.is_none() {
            // Round 0, we coordinate: propose our own initial value
            // immediately (no estimate phase — first optimization) and
            // adopt it (ts 1: round 0 + 1).
            let v = inst.estimate.clone().unwrap_or_default();
            inst.ts = 1;
            inst.last_proposal = Some((0, v.clone()));
            inst.proposal_sent_round = Some(0);
            inst.acks.insert(me);
            ctx.bump("consensus.proposals", 1);
            ctx.trace_span("consensus", instance, "proposed", 0);
            self.persist_vote(ctx, instance, 0, 1, &v);
            let msg = ConsensusMsg::Propose {
                instance,
                round: 0,
                value: v,
            };
            ctx.broadcast_net("consensus.proposal", encode(&msg));
            self.try_conclude(ctx, instance);
        } else if members[inst.round as usize % members.len()] == me {
            // We are (now) the coordinator of a later round and were only
            // waiting for our own initial value.
            let est = inst.estimate.clone().unwrap_or_default();
            let ts = inst.ts;
            let round = inst.round;
            inst.estimates.insert(me, (round, est, ts));
            self.try_propose_from_estimates(ctx, instance);
        }
    }

    fn on_net_propose(
        &mut self,
        ctx: &mut FrameworkCtx<'_, '_>,
        from: ProcessId,
        instance: u64,
        round: u32,
        value: Batch,
    ) {
        let certain = self.config_certain(instance);
        if certain && self.coordinator_of(instance, round, ctx.n()) != from {
            ctx.bump("consensus.bogus_proposals", 1);
            return; // only the round's coordinator may propose
        }
        self.maybe_request_gap(ctx, from, instance);
        if self.is_decided(instance) {
            // Help a lagging coordinator conclude.
            if let Some(v) = self.decisions.get(&instance) {
                let msg = ConsensusMsg::DecisionFull {
                    instance,
                    value: v.clone(),
                };
                ctx.send_net(from, "consensus.decision_full", encode(&msg));
            }
            return;
        }
        let votable = certain && self.can_vote(instance, ctx.pid());
        let now = ctx.now();
        let inst = self.instance_entry(instance, now);
        if round < inst.round {
            return; // stale proposal from an abandoned round
        }
        if round > inst.round {
            inst.round = round;
            inst.round_entered = now;
            inst.acks.clear();
        }
        inst.last_proposal = Some((round, value.clone()));
        let pending_hit = inst.pending_tag == Some(round);
        if votable {
            // Adopt and acknowledge (CT locking step). The adoption
            // timestamp round+1 ranks locked values above initial ones;
            // the vote is made durable atomically with the ack so a
            // future incarnation of this process honours the lock.
            inst.estimate = Some(value.clone());
            inst.ts = round + 1;
            self.persist_vote(ctx, instance, round, round + 1, &value);
            ctx.trace_span("consensus", instance, "voted", u64::from(round));
            let ack = ConsensusMsg::Ack { instance, round };
            ctx.send_net(from, "consensus.ack", encode(&ack));
        } else {
            // The config fence: a learner — or a process whose replay
            // has not yet determined the membership at `instance` —
            // records the proposal (a later DECISION tag can still
            // conclude it) but must not lock or ack it.
            ctx.bump("consensus.config_fence_drops", 1);
        }
        if pending_hit {
            self.decide_local(ctx, instance, value);
        }
    }

    fn on_net_estimate(
        &mut self,
        ctx: &mut FrameworkCtx<'_, '_>,
        from: ProcessId,
        instance: u64,
        round: u32,
        value: Batch,
        ts: u32,
    ) {
        if self.is_decided(instance) {
            if let Some(v) = self.decisions.get(&instance) {
                let msg = ConsensusMsg::DecisionFull {
                    instance,
                    value: v.clone(),
                };
                ctx.send_net(from, "consensus.decision_full", encode(&msg));
            }
            return;
        }
        if self.coordinator_of(instance, round, ctx.n()) != ctx.pid() {
            return; // misdirected
        }
        let now = ctx.now();
        let inst = self.instance_entry(instance, now);
        if round < inst.round {
            return;
        }
        // Keep only each peer's highest-round estimate.
        let keep = match inst.estimates.get(&from) {
            Some((r, _, _)) => *r < round,
            None => true,
        };
        if keep {
            inst.estimates.insert(from, (round, value, ts));
        }
        if round > inst.round {
            // Peers moved past us: join the round we are to coordinate.
            inst.round = round;
            inst.round_entered = now;
            inst.acks.clear();
            let me = ctx.pid();
            if let Some(est) = inst.estimate.clone() {
                let ts0 = inst.ts;
                inst.estimates.insert(me, (round, est, ts0));
            }
        }
        self.try_propose_from_estimates(ctx, instance);
    }

    fn on_net_ack(
        &mut self,
        ctx: &mut FrameworkCtx<'_, '_>,
        from: ProcessId,
        instance: u64,
        round: u32,
    ) {
        if self.is_decided(instance) {
            return;
        }
        let Some(inst) = self.instances.get_mut(&instance) else {
            return;
        };
        if inst.round != round || inst.proposal_sent_round != Some(round) {
            return;
        }
        inst.acks.insert(from);
        self.try_conclude(ctx, instance);
    }

    fn on_notice(
        &mut self,
        ctx: &mut FrameworkCtx<'_, '_>,
        origin: ProcessId,
        notice: DecisionNotice,
    ) {
        if origin != ctx.pid() {
            self.maybe_request_gap(ctx, origin, notice.instance);
        }
        if self.is_decided(notice.instance) {
            return;
        }
        if let Some(value) = notice.full {
            self.decide_local(ctx, notice.instance, value);
            return;
        }
        // Tag-only notice: we must hold the matching proposal.
        let now = ctx.now();
        let inst = self.instance_entry(notice.instance, now);
        match &inst.last_proposal {
            Some((r, v)) if *r == notice.round => {
                let value = v.clone();
                self.decide_local(ctx, notice.instance, value);
            }
            _ => {
                // Recovery: ask the decider (and retry via sweep).
                inst.pending_tag = Some(notice.round);
                inst.last_request = Some(now);
                ctx.bump("consensus.tag_misses", 1);
                let msg = ConsensusMsg::DecisionRequest {
                    instance: notice.instance,
                };
                if origin != ctx.pid() {
                    ctx.send_net(origin, "consensus.decision_request", encode(&msg));
                }
            }
        }
    }

    /// Broadcasts the rejoin announcement: "my replayed prefix ends at
    /// `watermark`" (a freshly revived process says instance 0).
    fn announce_join(&mut self, ctx: &mut FrameworkCtx<'_, '_>) {
        self.last_join = ctx.now();
        ctx.bump("consensus.join_requests", 1);
        let msg = ConsensusMsg::JoinRequest {
            watermark: self.replayed.watermark(),
        };
        ctx.broadcast_net("consensus.join_request", encode(&msg));
    }

    /// Serves a peer's rejoin announcement. A gap the decision log
    /// still covers is served as a bulk [`StateTransfer`] of decided
    /// values (consecutive from `watermark`, bounded); a gap whose head
    /// was compacted away falls back to a chunked [`SnapshotTransfer`]
    /// — the log there is gone, the snapshot replaces it.
    ///
    /// With snapshotting disabled (`snapshot_interval == 0`) the old
    /// limit applies: once a run outgrows `decision_cache`, the evicted
    /// prefix is unservable and a joiner advertising instance 0 stalls
    /// (`consensus.join_unservable` counts this).
    ///
    /// [`StateTransfer`]: ConsensusMsg::StateTransfer
    /// [`SnapshotTransfer`]: ConsensusMsg::SnapshotTransfer
    fn serve_join(&mut self, ctx: &mut FrameworkCtx<'_, '_>, from: ProcessId, watermark: u64) {
        let frontier = self.replayed.watermark();
        if frontier <= watermark {
            return;
        }
        // The cheap path first: while the decision log still covers the
        // head of the gap, a bulk value transfer beats re-shipping the
        // whole snapshot (the log tail stays `decision_cache` deep).
        let mut values = Vec::new();
        for instance in watermark..frontier.min(watermark + MAX_TRANSFER) {
            match self.decisions.get(&instance) {
                Some(v) => values.push(v.clone()),
                None => break, // evicted: cannot serve a gapless prefix
            }
        }
        if !values.is_empty() {
            ctx.bump("consensus.state_transfers", 1);
            let msg = ConsensusMsg::StateTransfer {
                from: watermark,
                values,
                frontier,
            };
            ctx.send_net(from, "consensus.state_transfer", encode(&msg));
            return;
        }
        if self
            .snapshot
            .as_ref()
            .is_some_and(|s| watermark <= s.last_included)
        {
            // The gap begins inside the compacted prefix: ship the
            // snapshot (first chunk; the joiner pulls the rest at
            // round-trip pace), then it rejoins the log at
            // `last_included + 1`.
            self.serve_snapshot_chunk(ctx, from, 0);
            return;
        }
        // Not silent: a joiner below our eviction horizon cannot be
        // helped by this process (only possible with snapshots
        // disabled, or for a gap above the snapshot with a hole in the
        // local log).
        ctx.bump("consensus.join_unservable", 1);
    }

    /// Sends one chunk of the serving snapshot to `from`.
    fn serve_snapshot_chunk(
        &mut self,
        ctx: &mut FrameworkCtx<'_, '_>,
        from: ProcessId,
        offset: u32,
    ) {
        let Some(snap) = &self.snapshot else {
            return;
        };
        let Some((total, chunk)) = chunk_of(&self.snapshot_bytes, offset) else {
            return;
        };
        ctx.bump("consensus.snapshot_transfers", 1);
        let msg = ConsensusMsg::SnapshotTransfer {
            last_included: snap.last_included,
            digest: snap.digest,
            total,
            offset,
            chunk,
            frontier: self.replayed.watermark(),
        };
        ctx.send_net(from, "consensus.snapshot_transfer", encode(&msg));
    }

    /// Receiver side: absorbs one snapshot chunk through the shared
    /// download state machine, pulling the next at round-trip pace; a
    /// completed download is installed and chased with a `JoinRequest`
    /// for the remaining log tail.
    #[allow(clippy::too_many_arguments)]
    fn absorb_snapshot_chunk(
        &mut self,
        ctx: &mut FrameworkCtx<'_, '_>,
        from: ProcessId,
        last_included: u64,
        digest: u64,
        total: u32,
        offset: u32,
        chunk: Bytes,
        frontier: u64,
    ) {
        self.rejoin_target = self.rejoin_target.max(frontier);
        self.highest_seen = self.highest_seen.max(frontier);
        let now = ctx.now();
        let already_past = self.fold.next_instance() > last_included;
        match self.download.absorb(
            from,
            last_included,
            digest,
            total,
            offset,
            &chunk,
            now,
            JOIN_RETRY,
            already_past,
        ) {
            ChunkOutcome::Pull(offset) => {
                ctx.bump("consensus.snapshot_pulls", 1);
                let msg = ConsensusMsg::SnapshotPull {
                    last_included,
                    offset,
                };
                ctx.send_net(from, "consensus.snapshot_pull", encode(&msg));
            }
            ChunkOutcome::Complete(snap) => {
                self.install_snapshot(ctx, *snap);
                // Chained tail catch-up from the serving peer.
                self.last_join = now;
                let msg = ConsensusMsg::JoinRequest {
                    watermark: self.replayed.watermark(),
                };
                ctx.send_net(from, "consensus.join_request", encode(&msg));
            }
            ChunkOutcome::Ignored => {}
            ChunkOutcome::Corrupt => ctx.bump("consensus.snapshot_garbage", 1),
        }
    }

    /// Installs a snapshot: fast-forwards the fold, replay log and
    /// voting fence to `last_included + 1`, drops per-instance state the
    /// snapshot made moot, adopts it for serving, and tells the stack
    /// above (the abcast module skips the compacted prefix).
    fn install_snapshot(&mut self, ctx: &mut FrameworkCtx<'_, '_>, snap: Snapshot) {
        if !self.fold.install(&snap) {
            return; // does not extend past what we already replayed
        }
        let next = snap.last_included + 1;
        self.replayed.advance_to(next);
        let fence_before = self.decided_log.watermark();
        self.decided_log.advance_to(next);
        self.persist_fence(ctx, fence_before);
        self.instances = self.instances.split_off(&next);
        self.recovered_votes = self.recovered_votes.split_off(&next);
        self.pending_reconfigs = self.pending_reconfigs.split_off(&next);
        // The snapshot replaces replay of the compacted prefix — the
        // reconfiguration history it carries replaces scanning it.
        for (d, change) in snap.reconfigs.clone() {
            self.register_reconfig(ctx, d, change);
        }
        self.highest_seen = self.highest_seen.max(snap.last_included);
        ctx.bump("consensus.snapshots_installed", 1);
        ctx.trace_span("consensus", snap.last_included, "snapshot_install", 0);
        self.set_snapshot(ctx, snap.clone(), true);
        ctx.raise(Event::InstallSnapshot { snapshot: snap });
    }

    /// Absorbs a bulk state transfer, then keeps pulling from the same
    /// peer at round-trip pace while still behind its frontier.
    fn absorb_transfer(
        &mut self,
        ctx: &mut FrameworkCtx<'_, '_>,
        from: ProcessId,
        first: u64,
        values: Vec<Batch>,
        frontier: u64,
    ) {
        self.rejoin_target = self.rejoin_target.max(frontier);
        self.highest_seen = self.highest_seen.max(frontier);
        for (i, value) in values.into_iter().enumerate() {
            self.decide_local(ctx, first + i as u64, value);
        }
        let mine = self.replayed.watermark();
        if mine < self.rejoin_target {
            // Chained catch-up: a short per-peer rate limit keeps one
            // reply burst from re-requesting the same range.
            let now = ctx.now();
            if self.gap_limiter.allow(from, now, VDur::millis(5)) {
                self.last_join = now;
                let msg = ConsensusMsg::JoinRequest { watermark: mine };
                ctx.send_net(from, "consensus.join_request", encode(&msg));
            }
        } else if self.rejoining && mine >= self.decided_log.watermark() {
            // Replay reached both the advertised frontier and our own
            // pre-crash decided fence: rejoin complete.
            self.rejoining = false;
            ctx.bump("consensus.rejoins_completed", 1);
        }
    }

    fn sweep(&mut self, ctx: &mut FrameworkCtx<'_, '_>) {
        let now = ctx.now();
        // Rejoin liveness: re-announce until the replayed prefix covers
        // both the persisted decided fence and every frontier a state
        // transfer advertised (replies can be lost to the same faults
        // that caused the crash).
        if self.rejoining {
            let caught_up = self.replayed.watermark() >= self.decided_log.watermark()
                && self.replayed.watermark() >= self.rejoin_target;
            // A healthy snapshot download is progress too: do not spam
            // re-announcements (and competing offers) while it runs.
            let downloading = self.download.in_progress(now, JOIN_RETRY);
            if caught_up {
                self.rejoining = false;
            } else if now.since(self.last_join) >= JOIN_RETRY && !downloading {
                self.announce_join(ctx);
            }
        }
        let progress = self.cfg.progress_timeout;
        let stuck: Vec<u64> = self
            .instances
            .iter()
            .filter(|(_, inst)| now.since(inst.round_entered) > progress)
            .map(|(k, _)| *k)
            .collect();
        for instance in stuck {
            // Retry pending decision requests first; otherwise rotate the
            // coordinator as if suspected (liveness backstop).
            let inst = self.instances.get_mut(&instance).expect("instance exists");
            if inst.pending_tag.is_some() {
                inst.round_entered = now;
                let msg = ConsensusMsg::DecisionRequest { instance };
                ctx.bump("consensus.request_retries", 1);
                ctx.broadcast_net("consensus.decision_request", encode(&msg));
            } else {
                ctx.bump("consensus.progress_rotations", 1);
                self.advance_round(ctx, instance);
            }
        }
    }
}

impl Microprotocol for ConsensusModule {
    fn name(&self) -> &'static str {
        "consensus"
    }

    fn module_id(&self) -> ModuleId {
        CONSENSUS_MODULE_ID
    }

    fn subscriptions(&self) -> &'static [EventKind] {
        &[
            EventKind::Propose,
            EventKind::RbDeliver,
            EventKind::Suspect,
            EventKind::Restore,
        ]
    }

    fn on_start(&mut self, ctx: &mut FrameworkCtx<'_, '_>) {
        self.timeline_mut(ctx.n());
        if self.rejoining {
            // Revived process: restore the persisted snapshot first (the
            // compacted prefix needs no replay), re-register the
            // persisted reconfiguration history (re-reporting the stamps
            // re-points the failure detector and re-confirms the config
            // history to the harness), then advertise the replay
            // frontier — instance 0 without a snapshot — and let peers
            // stream the missing prefix back.
            if let Some(snap) = self.restored.take() {
                self.install_snapshot(ctx, snap);
            }
            let recovered = std::mem::take(&mut self.recovered_reconfigs);
            for (d, change) in recovered {
                self.register_reconfig(ctx, d, change);
            }
            self.announce_join(ctx);
        }
        ctx.set_timer(self.cfg.sweep_interval, TAG_SWEEP);
    }

    fn on_event(&mut self, ctx: &mut FrameworkCtx<'_, '_>, ev: &Event) {
        match ev {
            Event::Propose { instance, value } => {
                self.on_propose_event(ctx, *instance, value.clone());
            }
            Event::RbDeliver {
                stream,
                origin,
                payload,
            } if *stream == DECISION_STREAM => match decode::<DecisionNotice>(payload.clone()) {
                Ok(notice) => self.on_notice(ctx, *origin, notice),
                Err(_) => ctx.bump("consensus.garbage", 1),
            },
            Event::Suspect(p) => {
                self.suspected.insert(*p);
                let n = ctx.n();
                let affected: Vec<u64> = self
                    .instances
                    .iter()
                    .filter(|(k, inst)| self.coordinator_of(**k, inst.round, n) == *p)
                    .map(|(k, _)| *k)
                    .collect();
                for instance in affected {
                    self.advance_round(ctx, instance);
                }
            }
            Event::Restore(p) => {
                self.suspected.remove(p);
            }
            _ => {}
        }
    }

    fn on_net(&mut self, ctx: &mut FrameworkCtx<'_, '_>, from: ProcessId, bytes: Bytes) {
        let msg = match decode::<ConsensusMsg>(bytes) {
            Ok(m) => m,
            Err(_) => {
                ctx.bump("consensus.garbage", 1);
                return;
            }
        };
        match msg {
            ConsensusMsg::Propose {
                instance,
                round,
                value,
            } => self.on_net_propose(ctx, from, instance, round, value),
            ConsensusMsg::Estimate {
                instance,
                round,
                value,
                ts,
            } => self.on_net_estimate(ctx, from, instance, round, value, ts),
            ConsensusMsg::Ack { instance, round } => self.on_net_ack(ctx, from, instance, round),
            ConsensusMsg::DecisionRequest { instance } => {
                if let Some(v) = self.decisions.get(&instance) {
                    let msg = ConsensusMsg::DecisionFull {
                        instance,
                        value: v.clone(),
                    };
                    ctx.send_net(from, "consensus.decision_full", encode(&msg));
                } else if self
                    .snapshot
                    .as_ref()
                    .is_some_and(|s| instance <= s.last_included)
                {
                    // The requested decision was compacted away: no peer
                    // can serve it as a value any more, but the snapshot
                    // covers it. Offer the snapshot so a *live* lagging
                    // process (a healed partition minority — not just a
                    // restarted joiner) can leap past the compaction
                    // horizon instead of stalling. Rate-limited: one
                    // offer answers a whole gap-request batch.
                    let now = ctx.now();
                    if self.offer_limiter.allow(from, now, OFFER_SPACING) {
                        self.serve_snapshot_chunk(ctx, from, 0);
                    }
                }
            }
            ConsensusMsg::DecisionFull { instance, value } => {
                self.highest_seen = self.highest_seen.max(instance);
                self.decide_local(ctx, instance, value);
                // Chained catch-up (see `maybe_request_gap`): while still
                // behind, pull the next batch at near round-trip pace. A
                // short per-peer rate limit stops a batch's several
                // replies from re-requesting the same range.
                let now = ctx.now();
                let watermark = self.decided_log.watermark();
                let expected = watermark + self.cfg.pipeline_depth.max(1) - 1;
                if self.highest_seen > expected
                    && self.gap_limiter.allow(from, now, VDur::millis(5))
                {
                    let hi = self.highest_seen;
                    self.request_gap_batch(ctx, from, hi);
                }
            }
            ConsensusMsg::JoinRequest { watermark } => {
                self.serve_join(ctx, from, watermark);
            }
            ConsensusMsg::StateTransfer {
                from: first,
                values,
                frontier,
            } => {
                self.absorb_transfer(ctx, from, first, values, frontier);
            }
            ConsensusMsg::SnapshotTransfer {
                last_included,
                digest,
                total,
                offset,
                chunk,
                frontier,
            } => {
                self.absorb_snapshot_chunk(
                    ctx,
                    from,
                    last_included,
                    digest,
                    total,
                    offset,
                    chunk,
                    frontier,
                );
            }
            ConsensusMsg::SnapshotPull {
                last_included,
                offset,
            } => {
                match &self.snapshot {
                    // Exact match: serve the requested chunk.
                    Some(snap) if snap.last_included == last_included => {
                        self.serve_snapshot_chunk(ctx, from, offset);
                    }
                    // We compacted further since the joiner started; a
                    // fresh offer supersedes the stale download.
                    Some(snap) if snap.last_included > last_included => {
                        self.serve_snapshot_chunk(ctx, from, 0);
                    }
                    _ => {}
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut FrameworkCtx<'_, '_>, _timer: TimerId, tag: u64) {
        if tag == TAG_SWEEP {
            self.sweep(ctx);
            ctx.set_timer(self.cfg.sweep_interval, TAG_SWEEP);
        }
    }
}
