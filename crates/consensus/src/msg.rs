//! Consensus wire messages.

use fortika_net::wire::{Wire, WireError, WireReader, WireWriter};
use fortika_net::{Batch, ProcessId};

/// Messages exchanged by the consensus module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsensusMsg {
    /// Coordinator's proposal for `(instance, round)`.
    Propose {
        /// Consensus instance (the paper's `k`).
        instance: u64,
        /// Round within the instance (0 in good runs).
        round: u32,
        /// Proposed value.
        value: Batch,
    },
    /// A process's estimate, sent to the coordinator of `round` after a
    /// suspicion-driven round change (the estimate phase is skipped in
    /// round 0 — the paper's first optimization).
    Estimate {
        /// Consensus instance.
        instance: u64,
        /// Round the sender is entering.
        round: u32,
        /// The sender's current estimate.
        value: Batch,
        /// Round in which the estimate was last adopted (0 = initial).
        ts: u32,
    },
    /// Positive acknowledgement of the coordinator's proposal.
    Ack {
        /// Consensus instance.
        instance: u64,
        /// Round being acknowledged.
        round: u32,
    },
    /// Request for a decision value (recovery path when a `DECISION` tag
    /// arrives without the matching proposal).
    DecisionRequest {
        /// Consensus instance.
        instance: u64,
    },
    /// Full decision value (recovery response / late joiner help).
    DecisionFull {
        /// Consensus instance.
        instance: u64,
        /// The decided value.
        value: Batch,
    },
    /// Rejoin announcement of a (re)started process: "my contiguous
    /// replayed prefix ends at `watermark`" — a restarted node
    /// advertises instance 0. Peers that are ahead answer with a
    /// [`StateTransfer`](Self::StateTransfer).
    JoinRequest {
        /// First instance the sender is missing.
        watermark: u64,
    },
    /// Bulk catch-up reply: the decided values of the consecutive
    /// instances `from, from+1, …`, plus the sender's own replay
    /// frontier so the joiner can keep pulling in chained rounds until
    /// it reaches the live edge.
    StateTransfer {
        /// Instance of `values[0]`.
        from: u64,
        /// Decided values of `from..from + values.len()`.
        values: Vec<Batch>,
        /// The sender's contiguous decided prefix length.
        frontier: u64,
    },
    /// One chunk of a log-compaction snapshot, serving a joiner whose
    /// gap starts below the sender's compacted prefix (the decided
    /// values there are evicted; the snapshot replaces them). Chunks are
    /// pulled at round-trip pace via [`SnapshotPull`](Self::SnapshotPull)
    /// like `StateTransfer` batches; once complete, the joiner installs
    /// the snapshot and resumes log catch-up at `last_included + 1`.
    SnapshotTransfer {
        /// Highest instance the snapshot covers.
        last_included: u64,
        /// Digest of the snapshot (integrity check across chunks).
        digest: u64,
        /// Total encoded snapshot size in bytes.
        total: u32,
        /// Offset of `chunk` within the encoded snapshot.
        offset: u32,
        /// The chunk bytes.
        chunk: bytes::Bytes,
        /// The sender's contiguous replay frontier (catch-up target).
        frontier: u64,
    },
    /// Joiner-side request for the next snapshot chunk.
    SnapshotPull {
        /// Which snapshot is being pulled (its highest instance).
        last_included: u64,
        /// Byte offset of the requested chunk.
        offset: u32,
    },
}

const TAG_PROPOSE: u8 = 1;
const TAG_ESTIMATE: u8 = 2;
const TAG_ACK: u8 = 3;
const TAG_DECISION_REQUEST: u8 = 4;
const TAG_DECISION_FULL: u8 = 5;
const TAG_JOIN_REQUEST: u8 = 6;
const TAG_STATE_TRANSFER: u8 = 7;
const TAG_SNAPSHOT_TRANSFER: u8 = 8;
const TAG_SNAPSHOT_PULL: u8 = 9;

impl Wire for ConsensusMsg {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            ConsensusMsg::Propose {
                instance,
                round,
                value,
            } => {
                w.put_u8(TAG_PROPOSE);
                w.put_u64(*instance);
                w.put_u32(*round);
                value.encode(w);
            }
            ConsensusMsg::Estimate {
                instance,
                round,
                value,
                ts,
            } => {
                w.put_u8(TAG_ESTIMATE);
                w.put_u64(*instance);
                w.put_u32(*round);
                w.put_u32(*ts);
                value.encode(w);
            }
            ConsensusMsg::Ack { instance, round } => {
                w.put_u8(TAG_ACK);
                w.put_u64(*instance);
                w.put_u32(*round);
            }
            ConsensusMsg::DecisionRequest { instance } => {
                w.put_u8(TAG_DECISION_REQUEST);
                w.put_u64(*instance);
            }
            ConsensusMsg::DecisionFull { instance, value } => {
                w.put_u8(TAG_DECISION_FULL);
                w.put_u64(*instance);
                value.encode(w);
            }
            ConsensusMsg::JoinRequest { watermark } => {
                w.put_u8(TAG_JOIN_REQUEST);
                w.put_u64(*watermark);
            }
            ConsensusMsg::StateTransfer {
                from,
                values,
                frontier,
            } => {
                w.put_u8(TAG_STATE_TRANSFER);
                w.put_u64(*from);
                w.put_u64(*frontier);
                values.encode(w);
            }
            ConsensusMsg::SnapshotTransfer {
                last_included,
                digest,
                total,
                offset,
                chunk,
                frontier,
            } => {
                w.put_u8(TAG_SNAPSHOT_TRANSFER);
                w.put_u64(*last_included);
                w.put_u64(*digest);
                w.put_u32(*total);
                w.put_u32(*offset);
                w.put_u64(*frontier);
                chunk.encode(w);
            }
            ConsensusMsg::SnapshotPull {
                last_included,
                offset,
            } => {
                w.put_u8(TAG_SNAPSHOT_PULL);
                w.put_u64(*last_included);
                w.put_u32(*offset);
            }
        }
    }

    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        match r.get_u8()? {
            TAG_PROPOSE => Ok(ConsensusMsg::Propose {
                instance: r.get_u64()?,
                round: r.get_u32()?,
                value: Batch::decode(r)?,
            }),
            TAG_ESTIMATE => Ok(ConsensusMsg::Estimate {
                instance: r.get_u64()?,
                round: r.get_u32()?,
                ts: r.get_u32()?,
                value: Batch::decode(r)?,
            }),
            TAG_ACK => Ok(ConsensusMsg::Ack {
                instance: r.get_u64()?,
                round: r.get_u32()?,
            }),
            TAG_DECISION_REQUEST => Ok(ConsensusMsg::DecisionRequest {
                instance: r.get_u64()?,
            }),
            TAG_DECISION_FULL => Ok(ConsensusMsg::DecisionFull {
                instance: r.get_u64()?,
                value: Batch::decode(r)?,
            }),
            TAG_JOIN_REQUEST => Ok(ConsensusMsg::JoinRequest {
                watermark: r.get_u64()?,
            }),
            TAG_STATE_TRANSFER => Ok(ConsensusMsg::StateTransfer {
                from: r.get_u64()?,
                frontier: r.get_u64()?,
                values: Vec::<Batch>::decode(r)?,
            }),
            TAG_SNAPSHOT_TRANSFER => Ok(ConsensusMsg::SnapshotTransfer {
                last_included: r.get_u64()?,
                digest: r.get_u64()?,
                total: r.get_u32()?,
                offset: r.get_u32()?,
                frontier: r.get_u64()?,
                chunk: bytes::Bytes::decode(r)?,
            }),
            TAG_SNAPSHOT_PULL => Ok(ConsensusMsg::SnapshotPull {
                last_included: r.get_u64()?,
                offset: r.get_u32()?,
            }),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

/// Decision dissemination payload, reliably broadcast by the deciding
/// coordinator.
///
/// In round 0 (good runs) the value is omitted — the `DECISION` *tag*
/// optimization of §3.2: receivers already hold the round-0 proposal. In
/// later rounds the full value travels with the notice, since proposals
/// may not have reached everyone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionNotice {
    /// Consensus instance.
    pub instance: u64,
    /// Round in which the decision was reached.
    pub round: u32,
    /// Full value (absent for the round-0 tag optimization).
    pub full: Option<Batch>,
}

impl Wire for DecisionNotice {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.instance);
        w.put_u32(self.round);
        self.full.encode(w);
    }
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(DecisionNotice {
            instance: r.get_u64()?,
            round: r.get_u32()?,
            full: Option::<Batch>::decode(r)?,
        })
    }
}

/// The coordinator of `round`: processes rotate in round-robin order,
/// with `p1` coordinating round 0 of every instance (the property the
/// monolithic stack's optimization O1 builds on).
pub fn coordinator(round: u32, n: usize) -> ProcessId {
    ProcessId((round as usize % n) as u16)
}

/// The crash-recovery stable record of one consensus instance: the
/// round this process last voted (acked/adopted) in, the adoption
/// timestamp of its estimate, and the estimate itself.
///
/// Chandra–Toueg safety hinges on a voter carrying its locked
/// `(estimate, ts)` into every later round and never regressing to a
/// lower round; a process revived with amnesia would break exactly that
/// invariant, so this record is written to stable storage atomically
/// with every vote and replayed into the fresh stack on restart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoteRecord {
    /// Round of the last vote (lower-round proposals are refused).
    pub round: u32,
    /// Adoption timestamp of `value` (round + 1 at ack time).
    pub ts: u32,
    /// The locked estimate.
    pub value: Batch,
}

impl Wire for VoteRecord {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.round);
        w.put_u32(self.ts);
        self.value.encode(w);
    }
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(VoteRecord {
            round: r.get_u32()?,
            ts: r.get_u32()?,
            value: Batch::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use fortika_net::wire::{decode, encode};
    use fortika_net::{AppMsg, MsgId};

    fn batch() -> Batch {
        Batch::normalize(vec![AppMsg::new(
            MsgId::new(ProcessId(1), 9),
            Bytes::from_static(b"payload"),
        )])
    }

    #[test]
    fn messages_round_trip() {
        let msgs = vec![
            ConsensusMsg::Propose {
                instance: 3,
                round: 0,
                value: batch(),
            },
            ConsensusMsg::Estimate {
                instance: 4,
                round: 2,
                value: batch(),
                ts: 1,
            },
            ConsensusMsg::Ack {
                instance: 5,
                round: 1,
            },
            ConsensusMsg::DecisionRequest { instance: 6 },
            ConsensusMsg::DecisionFull {
                instance: 7,
                value: batch(),
            },
            ConsensusMsg::JoinRequest { watermark: 0 },
            ConsensusMsg::StateTransfer {
                from: 3,
                values: vec![batch(), Batch::empty(), batch()],
                frontier: 42,
            },
            ConsensusMsg::SnapshotTransfer {
                last_included: 63,
                digest: 0xDEAD_BEEF,
                total: 4097,
                offset: 4096,
                chunk: Bytes::from_static(b"tail byte"),
                frontier: 80,
            },
            ConsensusMsg::SnapshotPull {
                last_included: 63,
                offset: 4096,
            },
        ];
        for m in msgs {
            let bytes = encode(&m);
            assert_eq!(decode::<ConsensusMsg>(bytes).unwrap(), m);
        }
    }

    #[test]
    fn notice_round_trips_both_forms() {
        for n in [
            DecisionNotice {
                instance: 1,
                round: 0,
                full: None,
            },
            DecisionNotice {
                instance: 2,
                round: 3,
                full: Some(batch()),
            },
        ] {
            let bytes = encode(&n);
            assert_eq!(decode::<DecisionNotice>(bytes).unwrap(), n);
        }
    }

    #[test]
    fn tag_notice_is_tiny() {
        // The DECISION-tag optimization: a tagged notice is ~13 bytes
        // regardless of the decided batch size.
        let n = DecisionNotice {
            instance: u64::MAX,
            round: 0,
            full: None,
        };
        assert_eq!(encode(&n).len(), 13);
    }

    #[test]
    fn coordinator_rotation() {
        assert_eq!(coordinator(0, 3), ProcessId(0));
        assert_eq!(coordinator(1, 3), ProcessId(1));
        assert_eq!(coordinator(3, 3), ProcessId(0));
        assert_eq!(coordinator(0, 7), ProcessId(0));
        assert_eq!(coordinator(9, 7), ProcessId(2));
    }

    #[test]
    fn vote_record_round_trips() {
        let rec = VoteRecord {
            round: 4,
            ts: 5,
            value: batch(),
        };
        let bytes = encode(&rec);
        assert_eq!(decode::<VoteRecord>(bytes).unwrap(), rec);
    }

    #[test]
    fn corrupt_tag_rejected() {
        let bytes = Bytes::from_static(&[99]);
        assert!(decode::<ConsensusMsg>(bytes).is_err());
    }
}
