//! Composite stacks: the composition kernel.

use std::collections::{BTreeMap, VecDeque};

use bytes::{BufMut, Bytes, BytesMut};
use fortika_net::wire::WireReader;
use fortika_net::{Admission, AppRequest, MsgId, Node, NodeCtx, ProcessId, TimerId};
use fortika_sim::{VDur, VTime};

use crate::events::{Event, EventKind};

/// Wire-level identity of a microprotocol within a stack, used to demux
/// incoming messages (2 bytes on every message — the framework's framing
/// overhead).
pub type ModuleId = u16;

/// Number of tag bits reserved for module routing in timer tags.
const MODULE_TAG_SHIFT: u32 = 56;

/// A microprotocol: one module in a composite stack.
///
/// Modules interact with their neighbours **only** through
/// [`Event`]s and with the network through their own messages (demuxed by
/// [`Microprotocol::module_id`]). This is the structural constraint whose
/// performance price the paper measures.
pub trait Microprotocol {
    /// Human-readable name (diagnostics and counters).
    fn name(&self) -> &'static str;

    /// Wire demux id; must be unique within a stack.
    fn module_id(&self) -> ModuleId;

    /// Events this module wants to receive.
    fn subscriptions(&self) -> &'static [EventKind];

    /// Invoked once at simulation start.
    fn on_start(&mut self, ctx: &mut FrameworkCtx<'_, '_>) {
        let _ = ctx;
    }

    /// Invoked for every subscribed event raised on the bus.
    fn on_event(&mut self, ctx: &mut FrameworkCtx<'_, '_>, ev: &Event) {
        let _ = (ctx, ev);
    }

    /// Invoked when a network message addressed to this module arrives.
    fn on_net(&mut self, ctx: &mut FrameworkCtx<'_, '_>, from: ProcessId, bytes: Bytes) {
        let _ = (ctx, from, bytes);
    }

    /// Invoked when one of this module's timers fires.
    fn on_timer(&mut self, ctx: &mut FrameworkCtx<'_, '_>, timer: TimerId, tag: u64) {
        let _ = (ctx, timer, tag);
    }

    /// Offered each application request, top module first; the first
    /// module returning `Some` decides admission.
    fn on_request(
        &mut self,
        ctx: &mut FrameworkCtx<'_, '_>,
        req: &AppRequest,
    ) -> Option<Admission> {
        let _ = (ctx, req);
        None
    }
}

/// Execution context handed to microprotocol handlers.
///
/// Wraps the hosting process's [`NodeCtx`] and the stack's event bus.
pub struct FrameworkCtx<'a, 'b> {
    node: &'a mut NodeCtx<'b>,
    bus: &'a mut VecDeque<Event>,
    module_idx: usize,
    module_id: ModuleId,
}

impl FrameworkCtx<'_, '_> {
    /// This process's identity.
    pub fn pid(&self) -> ProcessId {
        self.node.pid()
    }

    /// Group size `n`.
    pub fn n(&self) -> usize {
        self.node.n()
    }

    /// Current virtual time.
    pub fn now(&self) -> VTime {
        self.node.now()
    }

    /// Raises an event on the stack bus (dispatched FIFO after the
    /// current handler returns — Cactus semantics).
    pub fn raise(&mut self, ev: Event) {
        self.bus.push_back(ev);
    }

    /// Sends a message from this module to its peer module at `dst`.
    ///
    /// The framework prepends the 2-byte module id; `kind` tags the
    /// message for traffic accounting.
    pub fn send_net(&mut self, dst: ProcessId, kind: &'static str, payload: Bytes) {
        self.node
            .send(dst, kind, envelope(self.module_id, &payload));
    }

    /// Sends the same payload to every other process (n−1 unicasts).
    pub fn broadcast_net(&mut self, kind: &'static str, payload: Bytes) {
        let framed = envelope(self.module_id, &payload);
        for dst in ProcessId::all(self.n()) {
            if dst != self.pid() {
                self.node.send(dst, kind, framed.clone());
            }
        }
    }

    /// Arms a timer owned by this module. `tag` must fit in 56 bits.
    pub fn set_timer(&mut self, delay: VDur, tag: u64) -> TimerId {
        assert!(tag < (1 << MODULE_TAG_SHIFT), "timer tag too large");
        let full = ((self.module_idx as u64) << MODULE_TAG_SHIFT) | tag;
        self.node.set_timer(delay, full)
    }

    /// Cancels a pending timer.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.node.cancel_timer(id);
    }

    /// Reports an `adeliver` to the application/harness.
    pub fn deliver(&mut self, msg: MsgId, payload_len: u32) {
        self.node.deliver(msg, payload_len);
    }

    /// Signals that flow control re-opened (see
    /// [`fortika_net::Harness::on_app_ready`]).
    pub fn app_ready(&mut self) {
        self.node.app_ready();
    }

    /// This process's incarnation (0 until its first crash-recovery).
    pub fn incarnation(&self) -> u32 {
        self.node.incarnation()
    }

    /// Writes to the process's stable store (survives restarts); see
    /// [`fortika_net::NodeCtx::persist`]. Modules must namespace their
    /// keys (high byte) — the store is shared by the whole stack.
    pub fn persist(&mut self, key: u64, value: bytes::Bytes) {
        self.node.persist(key, value);
    }

    /// Deletes a stable-store key.
    pub fn unpersist(&mut self, key: u64) {
        self.node.unpersist(key);
    }

    /// Reports a materialized or installed log-compaction snapshot to
    /// the harness; see [`fortika_net::NodeCtx::note_snapshot`].
    pub fn note_snapshot(&mut self, stamp: fortika_net::SnapshotStamp) {
        self.node.note_snapshot(stamp);
    }

    /// Reports an activated configuration version to the harness; see
    /// [`fortika_net::NodeCtx::note_config`].
    pub fn note_config(&mut self, stamp: fortika_net::ConfigStamp) {
        self.node.note_config(stamp);
    }

    /// Increments a free-form protocol counter.
    pub fn bump(&mut self, name: &'static str, by: u64) {
        self.node.bump(name, by);
    }

    /// Charges extra CPU to the current handler (rarely needed; the
    /// framework already charges per-dispatch costs).
    pub fn charge(&mut self, cost: VDur) {
        self.node.charge(cost);
    }

    /// Charges durability CPU (stable writes, snapshot encode/install);
    /// see [`fortika_net::NodeCtx::charge_durability`].
    pub fn charge_durability(&mut self, cost: VDur) {
        self.node.charge_durability(cost);
    }

    /// The cluster's cost model, for modules that charge custom costs.
    pub fn costs(&self) -> &fortika_net::CostModel {
        self.node.costs()
    }

    /// True if event tracing is recording this run; see
    /// [`fortika_net::NodeCtx::trace_enabled`].
    pub fn trace_enabled(&self) -> bool {
        self.node.trace_enabled()
    }

    /// Records a protocol lifecycle marker for `instance` of `stack`;
    /// a no-op when tracing is off — see
    /// [`fortika_net::NodeCtx::trace_span`].
    pub fn trace_span(
        &mut self,
        stack: &'static str,
        instance: u64,
        phase: &'static str,
        detail: u64,
    ) {
        self.node.trace_span(stack, instance, phase, detail);
    }
}

fn envelope(module_id: ModuleId, payload: &Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(2 + payload.len());
    buf.put_u16_le(module_id);
    buf.extend_from_slice(payload);
    buf.freeze()
}

/// A stack of microprotocols composed on one process.
///
/// Implements [`Node`], so a composite stack plugs straight into the
/// cluster harness. Event dispatch is synchronous and FIFO; every handler
/// invocation charges one `dispatch` cost from the cluster's
/// [`CostModel`](fortika_net::CostModel) — the framework's per-hop CPU
/// price.
///
/// # Panics
///
/// Construction panics if two modules share a [`ModuleId`].
pub struct CompositeStack {
    modules: Vec<Box<dyn Microprotocol>>,
    by_id: BTreeMap<ModuleId, usize>,
    subs: BTreeMap<EventKind, Vec<usize>>,
    bus: VecDeque<Event>,
}

impl CompositeStack {
    /// Composes a stack; `modules` are ordered top (application side)
    /// to bottom (network side). Request admission is offered top-down.
    pub fn new(modules: Vec<Box<dyn Microprotocol>>) -> Self {
        let mut by_id = BTreeMap::new();
        let mut subs: BTreeMap<EventKind, Vec<usize>> = BTreeMap::new();
        for (idx, m) in modules.iter().enumerate() {
            let prev = by_id.insert(m.module_id(), idx);
            assert!(
                prev.is_none(),
                "duplicate module id {} ({})",
                m.module_id(),
                m.name()
            );
            for &kind in m.subscriptions() {
                subs.entry(kind).or_default().push(idx);
            }
        }
        CompositeStack {
            modules,
            by_id,
            subs,
            bus: VecDeque::new(),
        }
    }

    /// Number of composed modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// True if the stack has no modules.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    fn drain_bus(&mut self, node: &mut NodeCtx<'_>) {
        // FIFO dispatch; events raised by handlers append to the back.
        while let Some(ev) = self.bus.pop_front() {
            let kind = ev.kind();
            let Some(subscribers) = self.subs.get(&kind) else {
                continue;
            };
            // Indices are stable: modules are never added after build.
            for idx in subscribers.clone() {
                node.charge_dispatch();
                let module_id = self.modules[idx].module_id();
                let mut ctx = FrameworkCtx {
                    node,
                    bus: &mut self.bus,
                    module_idx: idx,
                    module_id,
                };
                self.modules[idx].on_event(&mut ctx, &ev);
            }
        }
    }
}

impl Node for CompositeStack {
    fn on_start(&mut self, node: &mut NodeCtx<'_>) {
        for idx in 0..self.modules.len() {
            node.charge_dispatch();
            let module_id = self.modules[idx].module_id();
            let mut ctx = FrameworkCtx {
                node,
                bus: &mut self.bus,
                module_idx: idx,
                module_id,
            };
            self.modules[idx].on_start(&mut ctx);
        }
        self.drain_bus(node);
    }

    fn on_message(&mut self, node: &mut NodeCtx<'_>, from: ProcessId, bytes: Bytes) {
        let mut r = WireReader::new(bytes);
        let Ok(module_id) = r.get_u16() else {
            node.bump("framework.garbage", 1);
            return;
        };
        let payload = r.take_rest();
        let Some(&idx) = self.by_id.get(&module_id) else {
            node.bump("framework.unroutable", 1);
            return;
        };
        node.charge_dispatch();
        let mut ctx = FrameworkCtx {
            node,
            bus: &mut self.bus,
            module_idx: idx,
            module_id,
        };
        self.modules[idx].on_net(&mut ctx, from, payload);
        self.drain_bus(node);
    }

    fn on_timer(&mut self, node: &mut NodeCtx<'_>, timer: TimerId, tag: u64) {
        let idx = (tag >> MODULE_TAG_SHIFT) as usize;
        let user_tag = tag & ((1 << MODULE_TAG_SHIFT) - 1);
        if idx >= self.modules.len() {
            node.bump("framework.bad_timer", 1);
            return;
        }
        node.charge_dispatch();
        let module_id = self.modules[idx].module_id();
        let mut ctx = FrameworkCtx {
            node,
            bus: &mut self.bus,
            module_idx: idx,
            module_id,
        };
        self.modules[idx].on_timer(&mut ctx, timer, user_tag);
        self.drain_bus(node);
    }

    fn on_request(&mut self, node: &mut NodeCtx<'_>, req: AppRequest) -> Admission {
        let mut decision = Admission::Blocked;
        for idx in 0..self.modules.len() {
            node.charge_dispatch();
            let module_id = self.modules[idx].module_id();
            let mut ctx = FrameworkCtx {
                node,
                bus: &mut self.bus,
                module_idx: idx,
                module_id,
            };
            if let Some(adm) = self.modules[idx].on_request(&mut ctx, &req) {
                decision = adm;
                break;
            }
        }
        self.drain_bus(node);
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fortika_net::{AppMsg, Cluster, ClusterConfig};

    /// Top module: admits requests and raises them as events.
    struct Top;
    impl Microprotocol for Top {
        fn name(&self) -> &'static str {
            "top"
        }
        fn module_id(&self) -> ModuleId {
            10
        }
        fn subscriptions(&self) -> &'static [EventKind] {
            &[EventKind::Adelivered]
        }
        fn on_event(&mut self, ctx: &mut FrameworkCtx<'_, '_>, ev: &Event) {
            if let Event::Adelivered(ids) = ev {
                ctx.bump("top.adelivered", ids.len() as u64);
            }
        }
        fn on_request(
            &mut self,
            ctx: &mut FrameworkCtx<'_, '_>,
            req: &AppRequest,
        ) -> Option<Admission> {
            let AppRequest::Abcast(m) = req;
            ctx.raise(Event::AbcastRequest(m.clone()));
            Some(Admission::Accepted)
        }
    }

    /// Bottom module: ships admitted messages to peers; echoes deliveries.
    struct Bottom;
    impl Microprotocol for Bottom {
        fn name(&self) -> &'static str {
            "bottom"
        }
        fn module_id(&self) -> ModuleId {
            20
        }
        fn subscriptions(&self) -> &'static [EventKind] {
            &[EventKind::AbcastRequest]
        }
        fn on_event(&mut self, ctx: &mut FrameworkCtx<'_, '_>, ev: &Event) {
            if let Event::AbcastRequest(m) = ev {
                ctx.broadcast_net("bottom.fwd", m.payload.clone());
                ctx.raise(Event::Adelivered(vec![m.id]));
            }
        }
        fn on_net(&mut self, ctx: &mut FrameworkCtx<'_, '_>, from: ProcessId, bytes: Bytes) {
            ctx.bump("bottom.rx", 1);
            let _ = (from, bytes);
        }
    }

    fn stack() -> Box<dyn Node> {
        Box::new(CompositeStack::new(vec![Box::new(Top), Box::new(Bottom)]))
    }

    #[test]
    fn events_flow_between_modules_and_network() {
        let cfg = ClusterConfig::instant(2, 1);
        let mut cluster = Cluster::new(cfg, vec![stack(), stack()]);
        let msg = AppMsg::new(MsgId::new(ProcessId(0), 0), Bytes::from_static(b"hello"));
        cluster.run_idle(VTime::ZERO); // run on_start
        let (adm, _) = cluster.submit(ProcessId(0), AppRequest::Abcast(msg));
        assert_eq!(adm, Admission::Accepted);
        cluster.run_idle(VTime::ZERO + VDur::secs(1));
        assert_eq!(cluster.counters().kind("bottom.fwd").msgs, 1);
        assert_eq!(cluster.counters().event("bottom.rx"), 1);
        assert_eq!(cluster.counters().event("top.adelivered"), 1);
    }

    #[test]
    fn dispatch_cost_charged_per_hop() {
        let mut cfg = ClusterConfig::instant(2, 1);
        cfg.cost.dispatch = VDur::micros(10);
        let mut cluster = Cluster::new(cfg, vec![stack(), stack()]);
        cluster.run_idle(VTime::ZERO);
        let before = cluster.cpu_busy(ProcessId(0));
        let msg = AppMsg::new(MsgId::new(ProcessId(0), 0), Bytes::from_static(b"x"));
        cluster.submit(ProcessId(0), AppRequest::Abcast(msg));
        let spent = cluster.cpu_busy(ProcessId(0)).saturating_sub(before);
        // Hops on p1: on_request offer (1) + AbcastRequest dispatch (1)
        // + Adelivered dispatch (1) = 3 dispatches of 10 µs.
        assert_eq!(spent, VDur::micros(30));
    }

    #[test]
    #[should_panic(expected = "duplicate module id")]
    fn duplicate_module_ids_rejected() {
        let _ = CompositeStack::new(vec![Box::new(Top), Box::new(Top)]);
    }

    #[test]
    fn unroutable_messages_counted_not_fatal() {
        struct Rogue;
        impl Microprotocol for Rogue {
            fn name(&self) -> &'static str {
                "rogue"
            }
            fn module_id(&self) -> ModuleId {
                30
            }
            fn subscriptions(&self) -> &'static [EventKind] {
                &[]
            }
            fn on_start(&mut self, ctx: &mut FrameworkCtx<'_, '_>) {
                if ctx.pid() == ProcessId(0) {
                    // Send to a module id that does not exist at the peer.
                    ctx.send_net(ProcessId(1), "rogue.msg", Bytes::from_static(b"?"));
                }
            }
        }
        let cfg = ClusterConfig::instant(2, 1);
        let nodes: Vec<Box<dyn Node>> = vec![
            Box::new(CompositeStack::new(vec![Box::new(Rogue)])),
            Box::new(CompositeStack::new(vec![Box::new(Top), Box::new(Bottom)])),
        ];
        let mut cluster = Cluster::new(cfg, nodes);
        cluster.run_idle(VTime::ZERO + VDur::secs(1));
        assert_eq!(cluster.counters().event("framework.unroutable"), 1);
    }
}
