//! Cactus-style microprotocol composition framework.
//!
//! The paper builds its *modular* atomic broadcast stack inside the
//! Cactus protocol framework: independent microprotocol modules composed
//! through typed events, each treating its neighbours as black boxes.
//! This crate reproduces that composition kernel:
//!
//! * [`Microprotocol`] — one module: handles events, its own network
//!   messages and timers.
//! * [`CompositeStack`] — a stack of modules that plugs into the cluster
//!   harness as a single [`fortika_net::Node`]; it demuxes network
//!   messages by [`ModuleId`] and dispatches [`Event`]s FIFO.
//! * [`events`] — the service interfaces between modules (atomic
//!   broadcast, consensus, reliable broadcast, failure detection).
//!
//! Every handler invocation charges the cost model's `dispatch` cost, so
//! the mechanical price of composition appears in the simulated CPU —
//! alongside the algorithmic price (extra messages and bytes) that the
//! paper shows dominates.
//!
//! # Example: a module that counts suspicions
//!
//! ```
//! use fortika_framework::{Event, EventKind, FrameworkCtx, Microprotocol, ModuleId};
//!
//! struct SuspicionCounter {
//!     count: u64,
//! }
//!
//! impl Microprotocol for SuspicionCounter {
//!     fn name(&self) -> &'static str { "suspicion-counter" }
//!     fn module_id(&self) -> ModuleId { 99 }
//!     fn subscriptions(&self) -> &'static [EventKind] { &[EventKind::Suspect] }
//!     fn on_event(&mut self, _ctx: &mut FrameworkCtx<'_, '_>, ev: &Event) {
//!         if let Event::Suspect(_) = ev {
//!             self.count += 1;
//!         }
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod stack;

pub use events::{Event, EventKind};
pub use stack::{CompositeStack, FrameworkCtx, Microprotocol, ModuleId};
