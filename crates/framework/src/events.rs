//! The inter-module event vocabulary.
//!
//! In Cactus, microprotocols interact exclusively through *events* bound
//! at composition time; a module knows the service interface of its
//! neighbours but nothing about their implementation. This module is the
//! Rust rendering of those service interfaces:
//!
//! * the **atomic broadcast** boundary ([`Event::AbcastRequest`],
//!   [`Event::Adelivered`]),
//! * the **consensus** service ([`Event::Propose`], [`Event::Decide`]),
//! * the **reliable broadcast** service ([`Event::Rbcast`],
//!   [`Event::RbDeliver`]),
//! * the **failure detector** service ([`Event::Suspect`],
//!   [`Event::Restore`]).
//!
//! Keeping payloads opaque where the paper requires it (e.g. reliable
//! broadcast carries `Bytes`, not a decision type) is what *enforces* the
//! modularity the paper studies: the modular stack physically cannot
//! implement the monolithic optimizations, because the information they
//! need does not cross these interfaces.

use bytes::Bytes;
use fortika_net::{AppMsg, Batch, ConfigStamp, MsgId, ProcessId, Snapshot};

/// An event raised on a composite stack's bus.
#[derive(Debug, Clone)]
pub enum Event {
    /// Flow control admitted an application message for atomic broadcast.
    AbcastRequest(AppMsg),
    /// The atomic broadcast module adelivered these messages (in order).
    Adelivered(Vec<MsgId>),
    /// Start consensus `instance` with the given initial value.
    Propose {
        /// Consensus instance number (the paper's `k`).
        instance: u64,
        /// This process's initial value: a batch of undelivered messages.
        value: Batch,
    },
    /// Consensus `instance` decided `value`.
    Decide {
        /// Consensus instance number.
        instance: u64,
        /// The decided batch.
        value: Batch,
    },
    /// Reliably broadcast an opaque payload on a logical stream.
    Rbcast {
        /// Stream discriminator so several users can share the module.
        stream: u8,
        /// Opaque payload (the reliable broadcast module never looks
        /// inside — that opacity is the modularity constraint).
        payload: Bytes,
    },
    /// A reliably broadcast payload was delivered.
    RbDeliver {
        /// Stream discriminator.
        stream: u8,
        /// The process that originally rbcast the payload.
        origin: ProcessId,
        /// The payload.
        payload: Bytes,
    },
    /// The failure detector started suspecting a process.
    Suspect(ProcessId),
    /// The failure detector stopped suspecting a process.
    Restore(ProcessId),
    /// The consensus service installed a log-compaction snapshot
    /// (rejoin catch-up past an evicted decided prefix): the delivery
    /// layer must fast-forward to instance `last_included + 1`, seed its
    /// duplicate suppression from the snapshot's delivered sets, and
    /// never expect the compacted instances to be decided again.
    InstallSnapshot {
        /// The installed snapshot.
        snapshot: Snapshot,
    },
    /// The consensus service activated a new configuration version (a
    /// log-decided add/remove-server reconfiguration reached its
    /// activation instance): modules tracking the member set — the
    /// failure detector's monitor list above all — must follow it.
    ConfigActive {
        /// The activated configuration.
        stamp: ConfigStamp,
    },
}

/// Discriminant of [`Event`], used for subscription routing. `Ord` so
/// the stack's subscription table can be a `BTreeMap` (dispatch order
/// must never depend on a hasher seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// See [`Event::AbcastRequest`].
    AbcastRequest,
    /// See [`Event::Adelivered`].
    Adelivered,
    /// See [`Event::Propose`].
    Propose,
    /// See [`Event::Decide`].
    Decide,
    /// See [`Event::Rbcast`].
    Rbcast,
    /// See [`Event::RbDeliver`].
    RbDeliver,
    /// See [`Event::Suspect`].
    Suspect,
    /// See [`Event::Restore`].
    Restore,
    /// See [`Event::InstallSnapshot`].
    InstallSnapshot,
    /// See [`Event::ConfigActive`].
    ConfigActive,
}

impl Event {
    /// The event's kind (subscription key).
    pub fn kind(&self) -> EventKind {
        match self {
            Event::AbcastRequest(_) => EventKind::AbcastRequest,
            Event::Adelivered(_) => EventKind::Adelivered,
            Event::Propose { .. } => EventKind::Propose,
            Event::Decide { .. } => EventKind::Decide,
            Event::Rbcast { .. } => EventKind::Rbcast,
            Event::RbDeliver { .. } => EventKind::RbDeliver,
            Event::Suspect(_) => EventKind::Suspect,
            Event::Restore(_) => EventKind::Restore,
            Event::InstallSnapshot { .. } => EventKind::InstallSnapshot,
            Event::ConfigActive { .. } => EventKind::ConfigActive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_match_variants() {
        let m = AppMsg::new(MsgId::new(ProcessId(0), 0), Bytes::new());
        assert_eq!(Event::AbcastRequest(m).kind(), EventKind::AbcastRequest);
        assert_eq!(Event::Adelivered(vec![]).kind(), EventKind::Adelivered);
        assert_eq!(
            Event::Propose {
                instance: 0,
                value: Batch::empty()
            }
            .kind(),
            EventKind::Propose
        );
        assert_eq!(
            Event::Decide {
                instance: 0,
                value: Batch::empty()
            }
            .kind(),
            EventKind::Decide
        );
        assert_eq!(
            Event::Rbcast {
                stream: 0,
                payload: Bytes::new()
            }
            .kind(),
            EventKind::Rbcast
        );
        assert_eq!(
            Event::RbDeliver {
                stream: 0,
                origin: ProcessId(1),
                payload: Bytes::new()
            }
            .kind(),
            EventKind::RbDeliver
        );
        assert_eq!(Event::Suspect(ProcessId(0)).kind(), EventKind::Suspect);
        assert_eq!(Event::Restore(ProcessId(0)).kind(), EventKind::Restore);
        assert_eq!(
            Event::ConfigActive {
                stamp: ConfigStamp {
                    version: 1,
                    decided_at: 0,
                    activation: 8,
                    members: vec![ProcessId(0)],
                }
            }
            .kind(),
            EventKind::ConfigActive
        );
    }
}
