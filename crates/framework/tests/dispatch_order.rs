//! Composition-kernel semantics: FIFO event dispatch, subscription
//! routing, request offer order, timer ownership.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use fortika_framework::{CompositeStack, Event, EventKind, FrameworkCtx, Microprotocol, ModuleId};
use fortika_net::{
    Admission, AppMsg, AppRequest, Cluster, ClusterConfig, MsgId, Node, ProcessId, TimerId,
};
use fortika_sim::{VDur, VTime};

type Trace = Rc<RefCell<Vec<String>>>;

/// A module that logs everything it sees and can raise chained events.
struct Tracer {
    name: &'static str,
    id: ModuleId,
    subs: &'static [EventKind],
    trace: Trace,
    /// Events to raise when receiving an AbcastRequest (chain test).
    chain: Vec<Event>,
    /// Whether to claim application requests.
    claims_requests: bool,
}

impl Microprotocol for Tracer {
    fn name(&self) -> &'static str {
        self.name
    }
    fn module_id(&self) -> ModuleId {
        self.id
    }
    fn subscriptions(&self) -> &'static [EventKind] {
        self.subs
    }
    fn on_event(&mut self, ctx: &mut FrameworkCtx<'_, '_>, ev: &Event) {
        self.trace
            .borrow_mut()
            .push(format!("{}:{:?}", self.name, ev.kind()));
        if matches!(ev, Event::AbcastRequest(_)) {
            for e in self.chain.drain(..) {
                ctx.raise(e);
            }
        }
    }
    fn on_timer(&mut self, _ctx: &mut FrameworkCtx<'_, '_>, _t: TimerId, tag: u64) {
        self.trace
            .borrow_mut()
            .push(format!("{}:timer:{tag}", self.name));
    }
    fn on_request(
        &mut self,
        ctx: &mut FrameworkCtx<'_, '_>,
        req: &AppRequest,
    ) -> Option<Admission> {
        self.trace
            .borrow_mut()
            .push(format!("{}:request", self.name));
        if self.claims_requests {
            let AppRequest::Abcast(m) = req;
            ctx.raise(Event::AbcastRequest(m.clone()));
            Some(Admission::Accepted)
        } else {
            None
        }
    }
}

fn msg() -> AppMsg {
    AppMsg::new(MsgId::new(ProcessId(0), 0), Bytes::from_static(b"x"))
}

#[test]
fn events_dispatch_fifo_across_chained_raises() {
    let trace: Trace = Default::default();
    // Module A raises [Adelivered, Suspect] upon AbcastRequest; both B
    // and C subscribe to both. FIFO means: all deliveries of Adelivered
    // happen before any delivery of Suspect.
    let a = Tracer {
        name: "a",
        id: 1,
        subs: &[EventKind::AbcastRequest],
        trace: trace.clone(),
        chain: vec![Event::Adelivered(vec![]), Event::Suspect(ProcessId(1))],
        claims_requests: true,
    };
    let b = Tracer {
        name: "b",
        id: 2,
        subs: &[EventKind::Adelivered, EventKind::Suspect],
        trace: trace.clone(),
        chain: vec![],
        claims_requests: false,
    };
    let c = Tracer {
        name: "c",
        id: 3,
        subs: &[EventKind::Adelivered, EventKind::Suspect],
        trace: trace.clone(),
        chain: vec![],
        claims_requests: false,
    };
    let stack: Box<dyn Node> = Box::new(CompositeStack::new(vec![
        Box::new(a),
        Box::new(b),
        Box::new(c),
    ]));
    let mut cluster = Cluster::new(ClusterConfig::instant(1, 1), vec![stack]);
    cluster.run_idle(VTime::ZERO);
    cluster.submit(ProcessId(0), AppRequest::Abcast(msg()));
    let t = trace.borrow().clone();
    assert_eq!(
        t,
        vec![
            "a:request",
            "a:AbcastRequest",
            "b:Adelivered",
            "c:Adelivered",
            "b:Suspect",
            "c:Suspect",
        ],
        "FIFO dispatch violated: {t:?}"
    );
}

#[test]
fn requests_offered_top_down_until_claimed() {
    let trace: Trace = Default::default();
    let top = Tracer {
        name: "top",
        id: 1,
        subs: &[],
        trace: trace.clone(),
        chain: vec![],
        claims_requests: false, // passes through
    };
    let mid = Tracer {
        name: "mid",
        id: 2,
        subs: &[],
        trace: trace.clone(),
        chain: vec![],
        claims_requests: true, // claims
    };
    let bottom = Tracer {
        name: "bottom",
        id: 3,
        subs: &[],
        trace: trace.clone(),
        chain: vec![],
        claims_requests: true, // never reached
    };
    let stack: Box<dyn Node> = Box::new(CompositeStack::new(vec![
        Box::new(top),
        Box::new(mid),
        Box::new(bottom),
    ]));
    let mut cluster = Cluster::new(ClusterConfig::instant(1, 1), vec![stack]);
    cluster.run_idle(VTime::ZERO);
    let (adm, _) = cluster.submit(ProcessId(0), AppRequest::Abcast(msg()));
    assert_eq!(adm, Admission::Accepted);
    assert_eq!(*trace.borrow(), vec!["top:request", "mid:request"]);
}

#[test]
fn timers_route_to_their_owning_module() {
    struct TimerSetter {
        trace: Trace,
    }
    impl Microprotocol for TimerSetter {
        fn name(&self) -> &'static str {
            "setter"
        }
        fn module_id(&self) -> ModuleId {
            7
        }
        fn subscriptions(&self) -> &'static [EventKind] {
            &[]
        }
        fn on_start(&mut self, ctx: &mut FrameworkCtx<'_, '_>) {
            ctx.set_timer(VDur::millis(5), 42);
        }
        fn on_timer(&mut self, _ctx: &mut FrameworkCtx<'_, '_>, _t: TimerId, tag: u64) {
            self.trace.borrow_mut().push(format!("setter:timer:{tag}"));
        }
    }
    let trace: Trace = Default::default();
    let other = Tracer {
        name: "other",
        id: 8,
        subs: &[],
        trace: trace.clone(),
        chain: vec![],
        claims_requests: false,
    };
    let stack: Box<dyn Node> = Box::new(CompositeStack::new(vec![
        Box::new(other),
        Box::new(TimerSetter {
            trace: trace.clone(),
        }),
    ]));
    let mut cluster = Cluster::new(ClusterConfig::instant(1, 1), vec![stack]);
    cluster.run_idle(VTime::ZERO + VDur::secs(1));
    // Only the owning module's handler fired, with the user tag intact.
    assert_eq!(*trace.borrow(), vec!["setter:timer:42"]);
}

#[test]
fn unsubscribed_modules_see_nothing() {
    let trace: Trace = Default::default();
    let raiser = Tracer {
        name: "raiser",
        id: 1,
        subs: &[EventKind::AbcastRequest],
        trace: trace.clone(),
        chain: vec![Event::Restore(ProcessId(0))],
        claims_requests: true,
    };
    let deaf = Tracer {
        name: "deaf",
        id: 2,
        subs: &[EventKind::Suspect], // not Restore
        trace: trace.clone(),
        chain: vec![],
        claims_requests: false,
    };
    let stack: Box<dyn Node> =
        Box::new(CompositeStack::new(vec![Box::new(raiser), Box::new(deaf)]));
    let mut cluster = Cluster::new(ClusterConfig::instant(1, 1), vec![stack]);
    cluster.run_idle(VTime::ZERO);
    cluster.submit(ProcessId(0), AppRequest::Abcast(msg()));
    let t = trace.borrow().clone();
    assert!(
        !t.iter().any(|e| e.starts_with("deaf:")),
        "unsubscribed module got events: {t:?}"
    );
}
