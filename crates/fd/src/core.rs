//! Failure-detector cores, independent of the composition framework.
//!
//! A core is a pure state machine consuming heartbeats and clock ticks
//! and emitting suspicion transitions. The framework adapter
//! ([`crate::FdModule`]) runs a core inside the modular stack; the
//! monolithic stack embeds a core directly — both stacks therefore share
//! the exact same detector behaviour, as in the paper's setup.

use fortika_net::ProcessId;
use fortika_sim::{VDur, VTime};

/// A suspicion transition emitted by a failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdEvent {
    /// The detector started suspecting the process.
    Suspect(ProcessId),
    /// The detector stopped suspecting the process.
    Restore(ProcessId),
}

/// A failure-detector core.
pub trait FailureDetector {
    /// Notes a heartbeat received from `from` at instant `now`.
    fn on_heartbeat(&mut self, from: ProcessId, now: VTime, out: &mut Vec<FdEvent>);

    /// Periodic clock tick: emits newly due suspicion transitions.
    fn tick(&mut self, now: VTime, out: &mut Vec<FdEvent>);

    /// How often [`tick`](Self::tick) should run; `None` disables ticking.
    fn tick_interval(&self) -> Option<VDur>;

    /// How often the host should emit heartbeats. Defaults to the tick
    /// interval; detectors that tick faster than they want heartbeats
    /// sent (e.g. fine-grained chaos overlays) override this so the
    /// host's heartbeat cadence stays decoupled from polling.
    fn heartbeat_interval(&self) -> Option<VDur> {
        self.tick_interval()
    }

    /// Whether this detector requires the host to emit heartbeats.
    fn sends_heartbeats(&self) -> bool;

    /// Current suspicion status of `p`.
    fn is_suspected(&self, p: ProcessId) -> bool;

    /// Replaces the monitor set with `members` (dynamic membership: the
    /// detector follows the active configuration). Newly monitored
    /// processes anchor their silence windows at `now`; a process that
    /// re-enters while suspected is restored through `out`. Detectors
    /// without a monitor set (scripted, quiescent) ignore the call.
    fn set_members(&mut self, members: &[ProcessId], now: VTime, out: &mut Vec<FdEvent>) {
        let _ = (members, now, out);
    }
}

/// Configuration of the heartbeat-based eventually-perfect detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdConfig {
    /// Interval between outgoing heartbeats.
    pub heartbeat_interval: VDur,
    /// Initial suspicion timeout.
    pub timeout: VDur,
    /// Amount added to a process's timeout after a false suspicion
    /// (the standard ◇P adaptation: eventually no correct process is
    /// suspected because its timeout outgrows message delays).
    pub timeout_increment: VDur,
}

impl Default for FdConfig {
    fn default() -> Self {
        FdConfig {
            heartbeat_interval: VDur::millis(100),
            // Generous relative to LAN delays so good runs see no wrong
            // suspicions even under CPU saturation (paper §5.1 evaluates
            // good runs only).
            timeout: VDur::millis(500),
            timeout_increment: VDur::millis(250),
        }
    }
}

/// Heartbeat-based eventually-perfect (◇P-style) failure detector.
///
/// Every process periodically heartbeats all others; a silence longer
/// than the (per-process, adaptive) timeout triggers suspicion. A
/// heartbeat from a suspected process cancels the suspicion and enlarges
/// that process's timeout.
///
/// # Example
///
/// ```
/// use fortika_fd::{FailureDetector, FdConfig, FdEvent, HeartbeatFd};
/// use fortika_net::ProcessId;
/// use fortika_sim::{VDur, VTime};
///
/// let mut fd = HeartbeatFd::new(3, ProcessId(0), FdConfig::default());
/// let mut out = Vec::new();
/// // Silence for 1 s: both peers become suspected.
/// fd.tick(VTime::ZERO + VDur::secs(1), &mut out);
/// assert_eq!(out.len(), 2);
/// assert!(fd.is_suspected(ProcessId(1)));
/// // A heartbeat restores p2.
/// out.clear();
/// fd.on_heartbeat(ProcessId(1), VTime::ZERO + VDur::secs(1), &mut out);
/// assert_eq!(out, [FdEvent::Restore(ProcessId(1))]);
/// ```
#[derive(Debug, Clone)]
pub struct HeartbeatFd {
    me: ProcessId,
    cfg: FdConfig,
    last_heard: Vec<VTime>,
    timeout: Vec<VDur>,
    suspected: Vec<bool>,
    /// Monitor mask: only current members are suspected on silence
    /// (dynamic membership — see [`FailureDetector::set_members`]).
    members: Vec<bool>,
    /// True while `me` is a member: only members emit heartbeats; a
    /// learner (removed or not-yet-added process) listens silently.
    active: bool,
}

impl HeartbeatFd {
    /// Creates a detector for a group of `n` processes, running at `me`.
    pub fn new(n: usize, me: ProcessId, cfg: FdConfig) -> Self {
        Self::new_anchored(n, me, cfg, VTime::ZERO)
    }

    /// Like [`new`](Self::new), but anchors every silence window at
    /// `now` instead of time zero.
    ///
    /// A detector built for a process **revived mid-run** must use this:
    /// anchored at zero, its very first tick would read hours of
    /// fictitious silence and suspect the whole (healthy) group, and the
    /// resulting round-change storm would stall the node's own rejoin.
    pub fn new_anchored(n: usize, me: ProcessId, cfg: FdConfig, now: VTime) -> Self {
        HeartbeatFd {
            me,
            timeout: vec![cfg.timeout; n],
            last_heard: vec![now; n],
            suspected: vec![false; n],
            members: vec![true; n],
            active: true,
            cfg,
        }
    }

    /// The configured heartbeat interval.
    pub fn config(&self) -> &FdConfig {
        &self.cfg
    }
}

impl FailureDetector for HeartbeatFd {
    fn on_heartbeat(&mut self, from: ProcessId, now: VTime, out: &mut Vec<FdEvent>) {
        let i = from.index();
        if i >= self.last_heard.len() || from == self.me {
            return;
        }
        let silence = now.since(self.last_heard[i]);
        self.last_heard[i] = now;
        if self.suspected[i] {
            self.suspected[i] = false;
            if silence > self.timeout[i] + self.timeout[i] {
                // Silence far beyond the timeout means the peer really
                // was down and has recovered (crash-recovery), not that
                // our timeout was too tight: un-suspect it and reset its
                // window to the configured base instead of inflating the
                // adaptive timeout forever.
                self.timeout[i] = self.cfg.timeout;
            } else {
                // False suspicion: adapt so it eventually stops
                // recurring (the standard ◇P accuracy argument).
                self.timeout[i] += self.cfg.timeout_increment;
            }
            out.push(FdEvent::Restore(from));
        }
    }

    fn tick(&mut self, now: VTime, out: &mut Vec<FdEvent>) {
        for i in 0..self.last_heard.len() {
            if i == self.me.index() || self.suspected[i] || !self.members[i] {
                continue;
            }
            if now.since(self.last_heard[i]) > self.timeout[i] {
                self.suspected[i] = true;
                out.push(FdEvent::Suspect(ProcessId(i as u16)));
            }
        }
    }

    fn tick_interval(&self) -> Option<VDur> {
        Some(self.cfg.heartbeat_interval)
    }

    fn sends_heartbeats(&self) -> bool {
        self.active
    }

    fn is_suspected(&self, p: ProcessId) -> bool {
        self.suspected.get(p.index()).copied().unwrap_or(false)
    }

    fn set_members(&mut self, members: &[ProcessId], now: VTime, out: &mut Vec<FdEvent>) {
        let mut mask = vec![false; self.last_heard.len()];
        for p in members {
            if p.index() < mask.len() {
                mask[p.index()] = true;
            }
        }
        for (i, now_member) in mask.iter().enumerate() {
            if *now_member && !self.members[i] {
                // Newly monitored: anchor its silence window here (it
                // may never have heartbeat before) and start from the
                // base timeout with a clean slate.
                self.last_heard[i] = now;
                self.timeout[i] = self.cfg.timeout;
                if self.suspected[i] {
                    self.suspected[i] = false;
                    out.push(FdEvent::Restore(ProcessId(i as u16)));
                }
            }
        }
        // Departed members keep their suspicion flag (a crashed member
        // that was removed really is down); they are simply no longer
        // monitored for fresh silence.
        self.members = mask;
        self.active = members.contains(&self.me);
    }
}

/// A detector that never suspects anyone and sends no heartbeats.
///
/// Useful for good-run micro-benchmarks where even the (tiny) heartbeat
/// traffic should be excluded; the full figure harnesses use
/// [`HeartbeatFd`] as the paper's stacks did.
#[derive(Debug, Clone, Default)]
pub struct QuiescentFd;

impl FailureDetector for QuiescentFd {
    fn on_heartbeat(&mut self, _: ProcessId, _: VTime, _: &mut Vec<FdEvent>) {}
    fn tick(&mut self, _: VTime, _: &mut Vec<FdEvent>) {}
    fn tick_interval(&self) -> Option<VDur> {
        None
    }
    fn sends_heartbeats(&self) -> bool {
        false
    }
    fn is_suspected(&self, _: ProcessId) -> bool {
        false
    }
}

/// A detector driven by a pre-programmed schedule of transitions —
/// the fault-injection tool of the test-suite (wrong suspicions at
/// chosen instants, targeted suspicion of a crashed coordinator, …).
#[derive(Debug, Clone)]
pub struct ScriptedFd {
    /// Remaining script, sorted by time ascending.
    script: Vec<(VTime, FdEvent)>,
    next: usize,
    suspected: Vec<bool>,
    resolution: VDur,
}

impl ScriptedFd {
    /// Creates a scripted detector for a group of `n` processes.
    ///
    /// `script` entries fire at (or just after) their instant, in order.
    /// `resolution` bounds the firing lag (the polling tick).
    pub fn new(n: usize, mut script: Vec<(VTime, FdEvent)>, resolution: VDur) -> Self {
        script.sort_by_key(|&(t, _)| t);
        ScriptedFd {
            script,
            next: 0,
            suspected: vec![false; n],
            resolution,
        }
    }
}

impl FailureDetector for ScriptedFd {
    fn on_heartbeat(&mut self, _: ProcessId, _: VTime, _: &mut Vec<FdEvent>) {}

    fn tick(&mut self, now: VTime, out: &mut Vec<FdEvent>) {
        while self.next < self.script.len() && self.script[self.next].0 <= now {
            let (_, ev) = self.script[self.next];
            self.next += 1;
            let (idx, flag) = match ev {
                FdEvent::Suspect(p) => (p.index(), true),
                FdEvent::Restore(p) => (p.index(), false),
            };
            if self.suspected[idx] != flag {
                self.suspected[idx] = flag;
                out.push(ev);
            }
        }
    }

    fn tick_interval(&self) -> Option<VDur> {
        Some(self.resolution)
    }

    fn sends_heartbeats(&self) -> bool {
        false
    }

    fn is_suspected(&self, p: ProcessId) -> bool {
        self.suspected.get(p.index()).copied().unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FdConfig {
        FdConfig {
            heartbeat_interval: VDur::millis(10),
            timeout: VDur::millis(50),
            timeout_increment: VDur::millis(25),
        }
    }

    #[test]
    fn regular_heartbeats_prevent_suspicion() {
        let mut fd = HeartbeatFd::new(2, ProcessId(0), cfg());
        let mut out = Vec::new();
        for ms in (0..200).step_by(10) {
            let now = VTime::ZERO + VDur::millis(ms);
            fd.on_heartbeat(ProcessId(1), now, &mut out);
            fd.tick(now, &mut out);
        }
        assert!(out.is_empty());
        assert!(!fd.is_suspected(ProcessId(1)));
    }

    #[test]
    fn silence_triggers_suspicion_once() {
        let mut fd = HeartbeatFd::new(2, ProcessId(0), cfg());
        let mut out = Vec::new();
        fd.tick(VTime::ZERO + VDur::millis(100), &mut out);
        fd.tick(VTime::ZERO + VDur::millis(200), &mut out);
        assert_eq!(out, [FdEvent::Suspect(ProcessId(1))]);
    }

    #[test]
    fn restore_grows_timeout() {
        let mut fd = HeartbeatFd::new(2, ProcessId(0), cfg());
        let mut out = Vec::new();
        // Suspect after 60 ms of silence (timeout 50 ms).
        fd.tick(VTime::ZERO + VDur::millis(60), &mut out);
        assert_eq!(out, [FdEvent::Suspect(ProcessId(1))]);
        out.clear();
        // Late heartbeat restores and bumps the timeout to 75 ms.
        fd.on_heartbeat(ProcessId(1), VTime::ZERO + VDur::millis(60), &mut out);
        assert_eq!(out, [FdEvent::Restore(ProcessId(1))]);
        out.clear();
        // 70 ms of new silence: below the enlarged timeout — no suspicion.
        fd.tick(VTime::ZERO + VDur::millis(130), &mut out);
        assert!(out.is_empty());
        // 80 ms of silence: suspected again.
        fd.tick(VTime::ZERO + VDur::millis(141), &mut out);
        assert_eq!(out, [FdEvent::Suspect(ProcessId(1))]);
    }

    #[test]
    fn recovery_after_long_silence_resets_timeout() {
        let mut fd = HeartbeatFd::new(2, ProcessId(0), cfg());
        let mut out = Vec::new();
        // p2 goes silent for 500 ms (10× the 50 ms timeout): suspected.
        fd.tick(VTime::ZERO + VDur::millis(60), &mut out);
        assert_eq!(out, [FdEvent::Suspect(ProcessId(1))]);
        out.clear();
        // It comes back (restart): restored, and the timeout stays at
        // the configured base — a genuine crash is not a false
        // suspicion, so the adaptive window must not inflate.
        fd.on_heartbeat(ProcessId(1), VTime::ZERO + VDur::millis(500), &mut out);
        assert_eq!(out, [FdEvent::Restore(ProcessId(1))]);
        out.clear();
        // 60 ms of new silence: above the (un-inflated) 50 ms timeout,
        // so the detector reacts at its original speed.
        fd.tick(VTime::ZERO + VDur::millis(561), &mut out);
        assert_eq!(out, [FdEvent::Suspect(ProcessId(1))]);
    }

    #[test]
    fn anchored_detector_measures_silence_from_anchor() {
        let start = VTime::ZERO + VDur::secs(3);
        let mut fd = HeartbeatFd::new_anchored(3, ProcessId(0), cfg(), start);
        let mut out = Vec::new();
        // Just after revival nothing is suspected, despite 3 s of
        // pre-revival "silence".
        fd.tick(start + VDur::millis(10), &mut out);
        assert!(out.is_empty());
        // Real silence past the timeout is still detected.
        fd.tick(start + VDur::millis(60), &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn own_process_never_suspected() {
        let mut fd = HeartbeatFd::new(3, ProcessId(1), cfg());
        let mut out = Vec::new();
        fd.tick(VTime::ZERO + VDur::secs(10), &mut out);
        assert!(!fd.is_suspected(ProcessId(1)));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn membership_mask_gates_suspicion_and_heartbeats() {
        // Capacity 4, but only {p1, p2} are members: the standby p3/p4
        // never heartbeat and must not be suspected for it.
        let mut fd = HeartbeatFd::new(4, ProcessId(0), cfg());
        let mut out = Vec::new();
        let members = [ProcessId(0), ProcessId(1)];
        fd.set_members(&members, VTime::ZERO, &mut out);
        assert!(out.is_empty());
        assert!(fd.sends_heartbeats());
        fd.tick(VTime::ZERO + VDur::secs(10), &mut out);
        assert_eq!(out, [FdEvent::Suspect(ProcessId(1))], "members only");
        assert!(!fd.is_suspected(ProcessId(2)));
        out.clear();

        // p3 joins at t=10s: silence anchored at the join, so it gets a
        // full fresh timeout before suspicion.
        let now = VTime::ZERO + VDur::secs(10);
        fd.set_members(&[ProcessId(0), ProcessId(1), ProcessId(2)], now, &mut out);
        fd.tick(now + VDur::millis(40), &mut out);
        assert!(out.is_empty(), "within p3's fresh window");
        fd.tick(now + VDur::millis(60), &mut out);
        assert_eq!(out, [FdEvent::Suspect(ProcessId(2))]);
        out.clear();

        // Removing this process turns it into a silent learner.
        fd.set_members(&[ProcessId(1), ProcessId(2)], now, &mut out);
        assert!(!fd.sends_heartbeats());
    }

    #[test]
    fn readded_suspected_member_is_restored() {
        let mut fd = HeartbeatFd::new(3, ProcessId(0), cfg());
        let mut out = Vec::new();
        fd.tick(VTime::ZERO + VDur::secs(1), &mut out);
        assert!(fd.is_suspected(ProcessId(2)));
        out.clear();
        // p3 leaves while suspected (flag kept), then rejoins: the
        // re-entry must be reported upward as a restore so observers'
        // suspicion sets match the detector's.
        fd.set_members(
            &[ProcessId(0), ProcessId(1)],
            VTime::ZERO + VDur::secs(1),
            &mut out,
        );
        assert!(out.is_empty());
        assert!(fd.is_suspected(ProcessId(2)), "departed member keeps flag");
        let now = VTime::ZERO + VDur::secs(2);
        fd.set_members(&[ProcessId(0), ProcessId(1), ProcessId(2)], now, &mut out);
        assert_eq!(out, [FdEvent::Restore(ProcessId(2))]);
        assert!(!fd.is_suspected(ProcessId(2)));
    }

    #[test]
    fn quiescent_fd_is_silent() {
        let mut fd = QuiescentFd;
        let mut out = Vec::new();
        fd.tick(VTime::ZERO + VDur::secs(100), &mut out);
        fd.on_heartbeat(ProcessId(0), VTime::ZERO, &mut out);
        assert!(out.is_empty());
        assert_eq!(fd.tick_interval(), None);
        assert!(!fd.sends_heartbeats());
    }

    #[test]
    fn scripted_fd_follows_schedule() {
        let script = vec![
            (
                VTime::ZERO + VDur::millis(10),
                FdEvent::Suspect(ProcessId(0)),
            ),
            (
                VTime::ZERO + VDur::millis(30),
                FdEvent::Restore(ProcessId(0)),
            ),
        ];
        let mut fd = ScriptedFd::new(2, script, VDur::millis(1));
        let mut out = Vec::new();
        fd.tick(VTime::ZERO + VDur::millis(5), &mut out);
        assert!(out.is_empty());
        fd.tick(VTime::ZERO + VDur::millis(10), &mut out);
        assert_eq!(out, [FdEvent::Suspect(ProcessId(0))]);
        assert!(fd.is_suspected(ProcessId(0)));
        out.clear();
        fd.tick(VTime::ZERO + VDur::millis(100), &mut out);
        assert_eq!(out, [FdEvent::Restore(ProcessId(0))]);
        assert!(!fd.is_suspected(ProcessId(0)));
    }

    #[test]
    fn scripted_fd_dedups_redundant_transitions() {
        let script = vec![
            (VTime::ZERO, FdEvent::Restore(ProcessId(1))), // already unsuspected
            (
                VTime::ZERO + VDur::millis(1),
                FdEvent::Suspect(ProcessId(1)),
            ),
            (
                VTime::ZERO + VDur::millis(2),
                FdEvent::Suspect(ProcessId(1)),
            ),
        ];
        let mut fd = ScriptedFd::new(2, script, VDur::millis(1));
        let mut out = Vec::new();
        fd.tick(VTime::ZERO + VDur::secs(1), &mut out);
        assert_eq!(out, [FdEvent::Suspect(ProcessId(1))]);
    }
}
