//! Framework adapter: runs a failure-detector core as a microprotocol.

use bytes::Bytes;
use fortika_framework::{Event, EventKind, FrameworkCtx, Microprotocol, ModuleId};
use fortika_net::{ProcessId, TimerId};

use crate::core::{FailureDetector, FdEvent};

/// Wire demux id of the failure-detector module.
pub const FD_MODULE_ID: ModuleId = 4;

const TIMER_TICK: u64 = 1;

/// The failure-detector microprotocol: emits heartbeats, consumes peer
/// heartbeats, and raises [`Event::Suspect`]/[`Event::Restore`] on the
/// stack bus.
pub struct FdModule<T> {
    core: T,
    scratch: Vec<FdEvent>,
    last_heartbeat: Option<fortika_sim::VTime>,
}

impl<T: FailureDetector> FdModule<T> {
    /// Wraps a detector core.
    pub fn new(core: T) -> Self {
        FdModule {
            core,
            scratch: Vec::new(),
            last_heartbeat: None,
        }
    }

    /// Read access to the wrapped core (tests inspect suspicion state).
    pub fn core(&self) -> &T {
        &self.core
    }

    fn flush(ctx: &mut FrameworkCtx<'_, '_>, events: &mut Vec<FdEvent>) {
        for ev in events.drain(..) {
            match ev {
                FdEvent::Suspect(p) => {
                    ctx.bump("fd.suspicions", 1);
                    ctx.raise(Event::Suspect(p));
                }
                FdEvent::Restore(p) => {
                    ctx.bump("fd.restores", 1);
                    ctx.raise(Event::Restore(p));
                }
            }
        }
    }
}

impl<T: FailureDetector> Microprotocol for FdModule<T> {
    fn name(&self) -> &'static str {
        "failure-detector"
    }

    fn module_id(&self) -> ModuleId {
        FD_MODULE_ID
    }

    fn subscriptions(&self) -> &'static [EventKind] {
        &[EventKind::ConfigActive]
    }

    fn on_event(&mut self, ctx: &mut FrameworkCtx<'_, '_>, ev: &Event) {
        // The monitor set follows the active configuration: on every
        // activated reconfiguration, re-point the core at the new
        // member list (newly added members get a fresh silence window;
        // whether this process heartbeats at all follows its own
        // membership).
        if let Event::ConfigActive { stamp } = ev {
            ctx.bump("fd.member_updates", 1);
            self.core
                .set_members(&stamp.members, ctx.now(), &mut self.scratch);
            Self::flush(ctx, &mut self.scratch);
        }
    }

    fn on_start(&mut self, ctx: &mut FrameworkCtx<'_, '_>) {
        if let Some(interval) = self.core.tick_interval() {
            ctx.set_timer(interval, TIMER_TICK);
        }
    }

    fn on_net(&mut self, ctx: &mut FrameworkCtx<'_, '_>, from: ProcessId, _bytes: Bytes) {
        self.core.on_heartbeat(from, ctx.now(), &mut self.scratch);
        Self::flush(ctx, &mut self.scratch);
    }

    fn on_timer(&mut self, ctx: &mut FrameworkCtx<'_, '_>, _timer: TimerId, tag: u64) {
        if tag != TIMER_TICK {
            return;
        }
        // Heartbeats go out on the core's heartbeat cadence, which may
        // be coarser than the polling tick (chaos overlays tick fast to
        // fire their windows promptly without inflating traffic).
        if self.core.sends_heartbeats() {
            let now = ctx.now();
            let due = match (self.last_heartbeat, self.core.heartbeat_interval()) {
                (Some(last), Some(interval)) => now.since(last) >= interval,
                _ => true,
            };
            if due {
                self.last_heartbeat = Some(now);
                ctx.broadcast_net("fd.heartbeat", Bytes::new());
            }
        }
        self.core.tick(ctx.now(), &mut self.scratch);
        Self::flush(ctx, &mut self.scratch);
        if let Some(interval) = self.core.tick_interval() {
            ctx.set_timer(interval, TIMER_TICK);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{FdConfig, HeartbeatFd, ScriptedFd};
    use fortika_framework::CompositeStack;
    use fortika_net::{Cluster, ClusterConfig, Node};
    use fortika_sim::{VDur, VTime};

    /// A probe module that counts suspicion events it observes.
    struct Probe;
    impl Microprotocol for Probe {
        fn name(&self) -> &'static str {
            "probe"
        }
        fn module_id(&self) -> ModuleId {
            90
        }
        fn subscriptions(&self) -> &'static [EventKind] {
            &[EventKind::Suspect, EventKind::Restore]
        }
        fn on_event(&mut self, ctx: &mut FrameworkCtx<'_, '_>, ev: &Event) {
            match ev {
                Event::Suspect(p) => ctx.bump(
                    if *p == ProcessId(0) {
                        "probe.suspect.p1"
                    } else {
                        "probe.suspect.other"
                    },
                    1,
                ),
                Event::Restore(_) => ctx.bump("probe.restore", 1),
                _ => {}
            }
        }
    }

    fn hb_stack(n: usize, me: ProcessId) -> Box<dyn Node> {
        let cfg = FdConfig {
            heartbeat_interval: VDur::millis(10),
            timeout: VDur::millis(50),
            timeout_increment: VDur::millis(20),
        };
        Box::new(CompositeStack::new(vec![
            Box::new(Probe),
            Box::new(FdModule::new(HeartbeatFd::new(n, me, cfg))),
        ]))
    }

    #[test]
    fn no_suspicions_in_good_runs() {
        let cfg = ClusterConfig::new(3, 5);
        let nodes = (0..3).map(|i| hb_stack(3, ProcessId(i))).collect();
        let mut cluster = Cluster::new(cfg, nodes);
        cluster.run_idle(VTime::ZERO + VDur::secs(5));
        assert_eq!(cluster.counters().event("fd.suspicions"), 0);
        assert!(cluster.counters().kind("fd.heartbeat").msgs > 100);
    }

    #[test]
    fn crashed_process_gets_suspected_by_all_others() {
        let cfg = ClusterConfig::new(3, 5);
        let nodes = (0..3).map(|i| hb_stack(3, ProcessId(i))).collect();
        let mut cluster = Cluster::new(cfg, nodes);
        cluster.schedule_crash(ProcessId(0), VTime::ZERO + VDur::secs(1));
        cluster.run_idle(VTime::ZERO + VDur::secs(3));
        // Both survivors suspect p1; nobody suspects anyone else.
        assert_eq!(cluster.counters().event("probe.suspect.p1"), 2);
        assert_eq!(cluster.counters().event("probe.suspect.other"), 0);
    }

    #[test]
    fn scripted_injection_raises_and_restores() {
        let script = vec![
            (
                VTime::ZERO + VDur::millis(100),
                FdEvent::Suspect(ProcessId(1)),
            ),
            (
                VTime::ZERO + VDur::millis(200),
                FdEvent::Restore(ProcessId(1)),
            ),
        ];
        let stack: Box<dyn Node> = Box::new(CompositeStack::new(vec![
            Box::new(Probe),
            Box::new(FdModule::new(ScriptedFd::new(2, script, VDur::millis(1)))),
        ]));
        let silent: Box<dyn Node> = Box::new(CompositeStack::new(vec![Box::new(Probe)]));
        let cfg = ClusterConfig::instant(2, 1);
        let mut cluster = Cluster::new(cfg, vec![stack, silent]);
        cluster.run_idle(VTime::ZERO + VDur::secs(1));
        assert_eq!(cluster.counters().event("fd.suspicions"), 1);
        assert_eq!(cluster.counters().event("probe.restore"), 1);
    }
}
