//! Fault-injection overlay for failure detectors.
//!
//! Chaos scenarios need to script *wrong* suspicions — the detector
//! lying about a perfectly healthy process — while keeping the real
//! heartbeat machinery running underneath (so genuine crashes are still
//! detected). [`OverlayFd`] wraps any [`FailureDetector`] core and
//! forces suspicion of chosen processes during chosen windows; outside
//! the windows the inner detector's verdicts pass through untouched.
//!
//! This is how `fortika-chaos` exercises the ◇P "inaccurate output"
//! clause of the paper's system model (§2.1): both stacks must stay safe
//! when the detector slanders the current coordinator.

use fortika_net::ProcessId;
use fortika_sim::{VDur, VTime};

use crate::core::{FailureDetector, FdEvent};

/// A window during which `observer`'s detector must claim `suspect` is
/// crashed, regardless of heartbeats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuspicionWindow {
    /// The process whose local detector lies.
    pub observer: ProcessId,
    /// The process being slandered.
    pub suspect: ProcessId,
    /// Window start (inclusive).
    pub from: VTime,
    /// Window end (exclusive).
    pub until: VTime,
}

impl SuspicionWindow {
    /// True while the forced suspicion is active.
    pub fn active_at(&self, now: VTime) -> bool {
        self.from <= now && now < self.until
    }
}

/// A failure detector that overlays scripted suspicion windows on an
/// inner core (see the [crate docs](crate)).
#[derive(Debug, Clone)]
pub struct OverlayFd<T> {
    inner: T,
    windows: Vec<SuspicionWindow>,
    /// Suspicion state last reported upward, per process — transitions
    /// are emitted exactly once even when forced and genuine suspicion
    /// overlap.
    reported: Vec<bool>,
    resolution: VDur,
    scratch: Vec<FdEvent>,
    /// End of the last retained window; once a tick lands at or past
    /// it, the fast polling cadence is no longer needed.
    windows_end: VTime,
    past_windows: bool,
}

impl<T: FailureDetector> OverlayFd<T> {
    /// Wraps `inner` for a group of `n` processes; only windows whose
    /// `observer` is `me` are retained.
    pub fn new(n: usize, me: ProcessId, inner: T, windows: Vec<SuspicionWindow>) -> Self {
        let windows: Vec<SuspicionWindow> =
            windows.into_iter().filter(|w| w.observer == me).collect();
        let windows_end = windows
            .iter()
            .map(|w| w.until)
            .fold(VTime::ZERO, VTime::max);
        OverlayFd {
            inner,
            past_windows: windows.is_empty(),
            windows,
            reported: vec![false; n],
            resolution: VDur::millis(5),
            scratch: Vec::new(),
            windows_end,
        }
    }

    /// Access to the wrapped core.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    fn forced(&self, p: usize, now: VTime) -> bool {
        self.windows
            .iter()
            .any(|w| w.suspect.index() == p && w.active_at(now))
    }

    /// Reconciles effective state (forced ∪ inner) with what was last
    /// reported, emitting the difference.
    fn reconcile(&mut self, now: VTime, out: &mut Vec<FdEvent>) {
        for p in 0..self.reported.len() {
            let effective = self.forced(p, now) || self.inner.is_suspected(ProcessId(p as u16));
            if effective != self.reported[p] {
                self.reported[p] = effective;
                out.push(if effective {
                    FdEvent::Suspect(ProcessId(p as u16))
                } else {
                    FdEvent::Restore(ProcessId(p as u16))
                });
            }
        }
    }
}

impl<T: FailureDetector> FailureDetector for OverlayFd<T> {
    fn on_heartbeat(&mut self, from: ProcessId, now: VTime, out: &mut Vec<FdEvent>) {
        self.scratch.clear();
        // Inner transitions are discarded; reconcile() re-derives them
        // against the overlay state.
        let scratch = &mut self.scratch;
        self.inner.on_heartbeat(from, now, scratch);
        self.reconcile(now, out);
    }

    fn tick(&mut self, now: VTime, out: &mut Vec<FdEvent>) {
        self.scratch.clear();
        let scratch = &mut self.scratch;
        self.inner.tick(now, scratch);
        self.reconcile(now, out);
        if now >= self.windows_end {
            // Every window is closed and this reconcile saw it: drop
            // back to the inner detector's cadence.
            self.past_windows = true;
        }
    }

    fn tick_interval(&self) -> Option<VDur> {
        // Tick at least every `resolution` while windows can still open
        // or close, so transitions fire promptly even over a
        // non-ticking inner core; afterwards, the inner cadence.
        match self.inner.tick_interval() {
            Some(i) if self.past_windows => Some(i),
            Some(i) => Some(i.min(self.resolution)),
            None if self.past_windows => None,
            None => Some(self.resolution),
        }
    }

    fn heartbeat_interval(&self) -> Option<VDur> {
        // The finer overlay polling tick must not inflate the host's
        // heartbeat traffic: keep the inner detector's cadence.
        self.inner.heartbeat_interval()
    }

    fn sends_heartbeats(&self) -> bool {
        self.inner.sends_heartbeats()
    }

    fn is_suspected(&self, p: ProcessId) -> bool {
        self.reported.get(p.index()).copied().unwrap_or(false)
    }

    fn set_members(&mut self, members: &[ProcessId], now: VTime, out: &mut Vec<FdEvent>) {
        self.scratch.clear();
        let scratch = &mut self.scratch;
        self.inner.set_members(members, now, scratch);
        // Forced windows stay forced regardless of membership (the
        // scenario scripted them); reconcile re-derives transitions.
        self.reconcile(now, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{FdConfig, HeartbeatFd, QuiescentFd};

    fn window(suspect: u16, from_ms: u64, until_ms: u64) -> SuspicionWindow {
        SuspicionWindow {
            observer: ProcessId(0),
            suspect: ProcessId(suspect),
            from: VTime::ZERO + VDur::millis(from_ms),
            until: VTime::ZERO + VDur::millis(until_ms),
        }
    }

    #[test]
    fn forced_window_opens_and_closes_once() {
        let mut fd = OverlayFd::new(2, ProcessId(0), QuiescentFd, vec![window(1, 10, 30)]);
        let mut out = Vec::new();
        fd.tick(VTime::ZERO + VDur::millis(5), &mut out);
        assert!(out.is_empty());
        fd.tick(VTime::ZERO + VDur::millis(10), &mut out);
        fd.tick(VTime::ZERO + VDur::millis(20), &mut out);
        assert_eq!(out, [FdEvent::Suspect(ProcessId(1))]);
        assert!(fd.is_suspected(ProcessId(1)));
        out.clear();
        fd.tick(VTime::ZERO + VDur::millis(30), &mut out);
        assert_eq!(out, [FdEvent::Restore(ProcessId(1))]);
        assert!(!fd.is_suspected(ProcessId(1)));
    }

    #[test]
    fn windows_for_other_observers_ignored() {
        let other = SuspicionWindow {
            observer: ProcessId(1),
            ..window(1, 0, 100)
        };
        let mut fd = OverlayFd::new(2, ProcessId(0), QuiescentFd, vec![other]);
        let mut out = Vec::new();
        fd.tick(VTime::ZERO + VDur::millis(50), &mut out);
        assert!(out.is_empty());
        assert_eq!(
            fd.tick_interval(),
            None,
            "no retained windows, quiescent inner"
        );
    }

    #[test]
    fn genuine_suspicion_passes_through_and_outlives_window() {
        // Inner heartbeat detector also suspects p1 (real silence); the
        // overlay window closing must not restore it.
        let cfg = FdConfig {
            heartbeat_interval: VDur::millis(10),
            timeout: VDur::millis(50),
            timeout_increment: VDur::millis(20),
        };
        let inner = HeartbeatFd::new(2, ProcessId(0), cfg);
        let mut fd = OverlayFd::new(2, ProcessId(0), inner, vec![window(1, 10, 30)]);
        let mut out = Vec::new();
        fd.tick(VTime::ZERO + VDur::millis(15), &mut out);
        assert_eq!(out, [FdEvent::Suspect(ProcessId(1))]);
        out.clear();
        // At 35 ms the window closed, but p1 has been silent > 50 ms? No:
        // only 35 ms. Inner does not suspect yet → restore.
        fd.tick(VTime::ZERO + VDur::millis(35), &mut out);
        assert_eq!(out, [FdEvent::Restore(ProcessId(1))]);
        out.clear();
        // At 80 ms the inner detector genuinely suspects (silence 80 ms
        // > 50 ms timeout): suspect again, no window involved.
        fd.tick(VTime::ZERO + VDur::millis(80), &mut out);
        assert_eq!(out, [FdEvent::Suspect(ProcessId(1))]);
        // A heartbeat restores through the overlay.
        out.clear();
        fd.on_heartbeat(ProcessId(1), VTime::ZERO + VDur::millis(81), &mut out);
        assert_eq!(out, [FdEvent::Restore(ProcessId(1))]);
    }

    #[test]
    fn overlapping_forced_and_real_emit_single_transition() {
        let cfg = FdConfig {
            heartbeat_interval: VDur::millis(10),
            timeout: VDur::millis(20),
            timeout_increment: VDur::millis(10),
        };
        let inner = HeartbeatFd::new(2, ProcessId(0), cfg);
        let mut fd = OverlayFd::new(2, ProcessId(0), inner, vec![window(1, 10, 200)]);
        let mut out = Vec::new();
        // Forced at 10 ms, genuine from ~20 ms: exactly one Suspect.
        fd.tick(VTime::ZERO + VDur::millis(15), &mut out);
        fd.tick(VTime::ZERO + VDur::millis(50), &mut out);
        fd.tick(VTime::ZERO + VDur::millis(150), &mut out);
        assert_eq!(out, [FdEvent::Suspect(ProcessId(1))]);
    }

    #[test]
    fn tick_interval_accounts_for_windows() {
        let mut fd = OverlayFd::new(2, ProcessId(0), QuiescentFd, vec![window(1, 0, 10)]);
        assert_eq!(fd.tick_interval(), Some(VDur::millis(5)));
        // Once a tick lands past the last window, the fast cadence is
        // dropped (here: back to the quiescent inner's no-tick).
        let mut out = Vec::new();
        fd.tick(VTime::ZERO + VDur::millis(9), &mut out);
        assert_eq!(fd.tick_interval(), Some(VDur::millis(5)));
        fd.tick(VTime::ZERO + VDur::millis(10), &mut out);
        assert_eq!(fd.tick_interval(), None);
        let cfg = FdConfig::default();
        let hb = OverlayFd::new(
            2,
            ProcessId(0),
            HeartbeatFd::new(2, ProcessId(0), cfg.clone()),
            vec![window(1, 0, 10)],
        );
        assert_eq!(
            hb.tick_interval(),
            Some(VDur::millis(5).min(cfg.heartbeat_interval))
        );
    }
}
