//! Failure detectors for the Fortika reproduction.
//!
//! The paper's system model (§2.1) equips every process with a local
//! failure detector (FD) whose output list of suspects "can change over
//! time \[and\] can be inaccurate" — the unreliable failure detectors of
//! Chandra & Toueg. This crate provides:
//!
//! * [`HeartbeatFd`] — the production detector: heartbeat-based,
//!   eventually-perfect (◇P-style) with adaptive timeouts.
//! * [`QuiescentFd`] — never suspects; zero traffic (micro-benchmarks).
//! * [`ScriptedFd`] — replays a pre-programmed suspicion schedule
//!   (fault injection for the correctness test-suite).
//! * [`OverlayFd`] — forces scripted false-suspicion windows *on top of*
//!   a live detector (the `fortika-chaos` scenario hook).
//! * [`FdModule`] — framework adapter used by the modular stack. The
//!   monolithic stack embeds a core directly, so both stacks share
//!   identical detector behaviour.
//!
//! Cores are pure state machines (see [`FailureDetector`]); time comes in
//! through parameters, which keeps them trivially testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core;
mod module;
mod overlay;

pub use crate::core::{FailureDetector, FdConfig, FdEvent, HeartbeatFd, QuiescentFd, ScriptedFd};
pub use module::{FdModule, FD_MODULE_ID};
pub use overlay::{OverlayFd, SuspicionWindow};
