//! Layering rules: the workspace dependency graph must respect the
//! documented layer order.
//!
//! The architecture is a strict stack — `sim < trace < net < framework
//! < {fd, rbcast} < {consensus, abcast, mono} < chaos < core < bench` —
//! and the whole modularity experiment depends on it staying one: the
//! chaos oracle audits *any* stack shape precisely because protocol
//! crates cannot see the harness that drives them. An upward edge (a
//! protocol crate importing `chaos` or `bench`) would let measurement
//! code leak into the measured system; a cycle would dissolve the
//! module boundaries the paper is about.
//!
//! The checker reads `[dependencies]` sections of every member manifest
//! with a line-oriented TOML reader (no `toml` crate — same discipline
//! as `fortika_bench::json`) and enforces:
//!
//! * every `fortika-*` dependency points **strictly down** the layer
//!   table ([`LAYERS`]);
//! * no protocol crate depends on `fortika-chaos`, `fortika-core` or
//!   `fortika-bench` (a sharper diagnostic for the worst upward edges);
//! * `fortika-lint` itself depends on nothing and nothing depends on it
//!   (the analyzer stays outside the graph it polices);
//! * every member is ranked — an unranked crate is a finding, which
//!   forces this table to grow with the workspace instead of rotting.
//!
//! Dev-dependencies are exempt: tests legitimately pull the harness
//! down into lower crates (e.g. `consensus` dev-depends on `chaos`).

use std::collections::BTreeMap;
use std::path::Path;

use crate::report::{Finding, Report};

/// Rule id for all layering findings.
pub const RULE_LAYERING: &str = "layering";

/// The documented layer order: `(crate, rank)`. A crate may depend only
/// on crates of strictly lower rank. Crates sharing a rank are peers
/// and must not depend on each other.
pub const LAYERS: &[(&str, u32)] = &[
    ("fortika-sim", 0),
    ("fortika-trace", 1),
    ("fortika-net", 2),
    ("fortika-framework", 3),
    ("fortika-fd", 4),
    ("fortika-rbcast", 4),
    ("fortika-consensus", 5),
    ("fortika-abcast", 5),
    ("fortika-mono", 5),
    ("fortika-chaos", 6),
    ("fortika-core", 7),
    ("fortika-bench", 8),
    // The umbrella crate re-exports the stacks for examples/tests.
    ("fortika", 9),
];

/// Vendored stand-ins, visible to every layer (they are leaves by
/// construction: the build works offline).
pub const VENDORED: &[&str] = &["bytes", "criterion"];

/// Crates the protocol layers must never depend on.
const HARNESS_CRATES: &[&str] = &["fortika-chaos", "fortika-core", "fortika-bench"];

/// One parsed member manifest.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Package name (`[package] name = ...`).
    pub name: String,
    /// Workspace-relative manifest path, for diagnostics.
    pub manifest: String,
    /// `[dependencies]` entries: `(dep name, 1-based line)`.
    pub deps: Vec<(String, usize)>,
}

/// Parses `name` and the normal `[dependencies]` of one `Cargo.toml`.
pub fn parse_manifest(rel: &str, content: &str) -> CrateInfo {
    let mut name = String::new();
    let mut deps = Vec::new();
    let mut section = String::new();
    for (idx, raw) in content.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        if line.is_empty() {
            continue;
        }
        if section == "package" && name.is_empty() {
            if let Some(v) = line.strip_prefix("name") {
                let v = v.trim_start();
                if let Some(v) = v.strip_prefix('=') {
                    name = v.trim().trim_matches('"').to_string();
                }
            }
        }
        if section == "dependencies" {
            // `fortika-net.workspace = true` / `bytes = { path = ... }`
            // / `foo = "1.0"` — the dep name is the first key segment.
            let key = line
                .split(['=', ' ', '\t'])
                .next()
                .unwrap_or("")
                .split('.')
                .next()
                .unwrap_or("")
                .trim();
            if !key.is_empty() {
                deps.push((key.to_string(), idx + 1));
            }
        }
    }
    CrateInfo {
        name,
        manifest: rel.to_string(),
        deps,
    }
}

/// Member directories listed in a workspace `Cargo.toml` (the
/// `members = [...]` array, which may span lines).
pub fn workspace_members(root_manifest: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_members = false;
    for raw in root_manifest.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if !in_members {
            if line.starts_with("members") && line.contains('[') {
                in_members = true;
            } else {
                continue;
            }
        }
        for piece in line.split(',') {
            let piece = piece.trim();
            if let Some(start) = piece.find('"') {
                if let Some(end) = piece[start + 1..].find('"') {
                    out.push(piece[start + 1..start + 1 + end].to_string());
                }
            }
        }
        if line.contains(']') {
            break;
        }
    }
    out
}

/// Runs the layering rules over the workspace rooted at `root`.
pub fn check(root: &Path, report: &mut Report) -> std::io::Result<()> {
    let root_manifest = std::fs::read_to_string(root.join("Cargo.toml"))?;
    let mut crates: Vec<CrateInfo> = Vec::new();
    // The root package (the umbrella `fortika` crate) lives in the same
    // manifest as the workspace tables.
    crates.push(parse_manifest("Cargo.toml", &root_manifest));
    for member in workspace_members(&root_manifest) {
        let path = root.join(&member).join("Cargo.toml");
        let rel = format!("{member}/Cargo.toml");
        let content = std::fs::read_to_string(&path)?;
        crates.push(parse_manifest(&rel, &content));
    }
    check_graph(&crates, report);
    Ok(())
}

/// The pure graph check, separated so fixture tests can feed synthetic
/// manifests.
pub fn check_graph(crates: &[CrateInfo], report: &mut Report) {
    report.crates_checked += crates.len();
    let ranks: BTreeMap<&str, u32> = LAYERS.iter().copied().collect();
    let protocol: Vec<String> = crate::determinism::PROTOCOL_CRATES
        .iter()
        .map(|c| format!("fortika-{c}"))
        .collect();

    for c in crates {
        if c.name == "fortika-lint" {
            for (dep, line) in &c.deps {
                report.findings.push(Finding {
                    rule: RULE_LAYERING,
                    file: c.manifest.clone(),
                    line: *line,
                    message: format!(
                        "fortika-lint must stay dependency-free (found `{dep}`): the analyzer \
                         cannot join the graph it polices"
                    ),
                });
            }
            continue;
        }
        let my_rank = ranks.get(c.name.as_str());
        if my_rank.is_none() && !VENDORED.contains(&c.name.as_str()) {
            report.findings.push(Finding {
                rule: RULE_LAYERING,
                file: c.manifest.clone(),
                line: 0,
                message: format!(
                    "crate `{}` is not in the layer table: add it to fortika-lint's LAYERS with \
                     an explicit rank (docs/LINTS.md)",
                    c.name
                ),
            });
        }
        for (dep, line) in &c.deps {
            if dep == "fortika-lint" {
                report.findings.push(Finding {
                    rule: RULE_LAYERING,
                    file: c.manifest.clone(),
                    line: *line,
                    message: "nothing may depend on fortika-lint (tooling, not a library)"
                        .to_string(),
                });
                continue;
            }
            if VENDORED.contains(&dep.as_str()) {
                continue;
            }
            let Some(dep_rank) = ranks.get(dep.as_str()) else {
                if dep.starts_with("fortika") {
                    report.findings.push(Finding {
                        rule: RULE_LAYERING,
                        file: c.manifest.clone(),
                        line: *line,
                        message: format!("dependency `{dep}` is not in the layer table"),
                    });
                } else {
                    report.findings.push(Finding {
                        rule: RULE_LAYERING,
                        file: c.manifest.clone(),
                        line: *line,
                        message: format!(
                            "external dependency `{dep}`: the workspace builds offline from \
                             vendored crates only (vendor it or drop it)"
                        ),
                    });
                }
                continue;
            };
            if protocol.contains(&c.name) && HARNESS_CRATES.contains(&dep.as_str()) {
                report.findings.push(Finding {
                    rule: RULE_LAYERING,
                    file: c.manifest.clone(),
                    line: *line,
                    message: format!(
                        "protocol crate `{}` must not depend on the harness crate `{dep}`: \
                         measurement code cannot leak into the measured system",
                        c.name
                    ),
                });
                continue;
            }
            if let Some(my_rank) = my_rank {
                if dep_rank >= my_rank {
                    report.findings.push(Finding {
                        rule: RULE_LAYERING,
                        file: c.manifest.clone(),
                        line: *line,
                        message: format!(
                            "upward dependency: `{}` (layer {my_rank}) -> `{dep}` (layer \
                             {dep_rank}); the layer order is sim < trace < net < framework < \
                             {{fd, rbcast}} < {{consensus, abcast, mono}} < chaos < core < bench",
                            c.name
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(specs: &[(&str, &[&str])]) -> Vec<CrateInfo> {
        specs
            .iter()
            .map(|(name, deps)| CrateInfo {
                name: name.to_string(),
                manifest: format!("crates/{name}/Cargo.toml"),
                deps: deps
                    .iter()
                    .enumerate()
                    .map(|(i, d)| (d.to_string(), i + 1))
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn downward_edges_pass_upward_edges_fire() {
        let mut r = Report::default();
        check_graph(
            &graph(&[("fortika-net", &["fortika-sim", "fortika-trace", "bytes"])]),
            &mut r,
        );
        assert!(r.clean(), "{:?}", r.findings);

        let mut r = Report::default();
        check_graph(&graph(&[("fortika-trace", &["fortika-net"])]), &mut r);
        assert_eq!(r.findings.len(), 1);
        assert!(r.findings[0].message.contains("upward dependency"));
    }

    #[test]
    fn peers_cannot_depend_on_each_other() {
        let mut r = Report::default();
        check_graph(&graph(&[("fortika-fd", &["fortika-rbcast"])]), &mut r);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    }

    #[test]
    fn protocol_crates_cannot_see_the_harness() {
        let mut r = Report::default();
        check_graph(&graph(&[("fortika-mono", &["fortika-chaos"])]), &mut r);
        assert_eq!(r.findings.len(), 1);
        assert!(r.findings[0].message.contains("harness"));
    }

    #[test]
    fn lint_stays_isolated_and_unknown_crates_are_flagged() {
        let mut r = Report::default();
        check_graph(
            &graph(&[
                ("fortika-lint", &["fortika-sim"]),
                ("fortika-shiny", &[]),
                ("fortika-bench", &["fortika-lint"]),
            ]),
            &mut r,
        );
        let msgs: Vec<&str> = r.findings.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(msgs.len(), 3, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("dependency-free")));
        assert!(msgs.iter().any(|m| m.contains("not in the layer table")));
        assert!(msgs
            .iter()
            .any(|m| m.contains("nothing may depend on fortika-lint")));
    }

    #[test]
    fn external_dependencies_are_rejected() {
        let mut r = Report::default();
        check_graph(&graph(&[("fortika-net", &["serde"])]), &mut r);
        assert_eq!(r.findings.len(), 1);
        assert!(r.findings[0].message.contains("vendored"));
    }

    #[test]
    fn manifest_and_members_parsing() {
        let manifest = "[package]\nname = \"fortika-net\"\n\n[dependencies]\nbytes.workspace = true\nfortika-sim.workspace = true\n\n[dev-dependencies]\nfortika-chaos.workspace = true\n";
        let info = parse_manifest("crates/net/Cargo.toml", manifest);
        assert_eq!(info.name, "fortika-net");
        let names: Vec<&str> = info.deps.iter().map(|(d, _)| d.as_str()).collect();
        assert_eq!(names, vec!["bytes", "fortika-sim"], "dev-deps are exempt");

        let ws =
            "[workspace]\nmembers = [\n    \"crates/sim\",\n    \"crates/net\", # comment\n]\n";
        assert_eq!(workspace_members(ws), vec!["crates/sim", "crates/net"]);
    }
}
