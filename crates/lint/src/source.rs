//! Source preprocessing: a comment/string-aware view of a Rust file.
//!
//! The analyzer is a *line-oriented scanner*, not a parser — the same
//! trade the hand-rolled `fortika_bench::json` validator makes. To keep
//! that honest it never matches banned tokens against raw text: every
//! file is first run through a small character-level state machine that
//! blanks out comments (so `// uses Instant for ...` cannot fire a
//! rule) and, for a second view, string literals (so
//! `"std::thread::spawn"` in a diagnostic message cannot either).
//!
//! Three views of each file, all line-aligned with the original:
//!
//! * [`SourceFile::raw`] — the bytes as committed (waiver comments are
//!   read from here, since waivers *live* in comments);
//! * [`SourceFile::code`] — comments blanked, strings intact (counter
//!   string literals are extracted from here);
//! * [`SourceFile::scan`] — comments *and* string contents blanked
//!   (banned-token matching happens here).
//!
//! `#[cfg(test)]` module regions are detected and masked out of the
//! determinism rules: the replay guarantees the lints protect concern
//! runtime protocol code, and test bodies routinely build throwaway
//! maps for assertions.

use std::fmt;
use std::path::{Path, PathBuf};

/// The waiver marker the analyzer honors: `// lint:allow(rule): reason`.
pub const WAIVER_MARKER: &str = "lint:allow(";

/// A justified waiver parsed from a `// lint:allow(rule): reason`
/// comment. A waiver covers its own line and the line directly below it
/// (so it can sit above the offending statement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// The rule being waived (e.g. `unordered-iter`).
    pub rule: String,
    /// The written justification after the colon. The scanner rejects
    /// empty reasons: an unexplained waiver is itself a violation.
    pub reason: String,
    /// 1-based line the waiver comment sits on.
    pub line: usize,
}

/// A preprocessed source file (see the [module docs](self)).
pub struct SourceFile {
    /// Path as given to [`SourceFile::load`] (diagnostics use it).
    pub path: PathBuf,
    /// Original lines.
    pub raw: Vec<String>,
    /// Comments blanked, string literals intact.
    pub code: Vec<String>,
    /// Comments and string-literal contents blanked.
    pub scan: Vec<String>,
    /// Per line: inside a `#[cfg(test)]` module region.
    pub in_test: Vec<bool>,
    /// Well-formed waivers, in line order.
    pub waivers: Vec<Waiver>,
    /// Malformed waiver markers: `(line, problem)`.
    pub bad_waivers: Vec<(usize, String)>,
}

impl fmt::Debug for SourceFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SourceFile")
            .field("path", &self.path)
            .field("lines", &self.raw.len())
            .field("waivers", &self.waivers.len())
            .finish()
    }
}

impl SourceFile {
    /// Reads and preprocesses `path`.
    pub fn load(path: &Path) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(path)?;
        Ok(SourceFile::from_text(path, &text))
    }

    /// Preprocesses in-memory content (fixture tests use this).
    pub fn from_text(path: &Path, text: &str) -> SourceFile {
        let (code_text, scan_text) = strip(text);
        let raw: Vec<String> = text.lines().map(str::to_string).collect();
        let code: Vec<String> = code_text.lines().map(str::to_string).collect();
        let scan: Vec<String> = scan_text.lines().map(str::to_string).collect();
        let in_test = test_mask(&scan);
        let (waivers, bad_waivers) = parse_waivers(&raw);
        SourceFile {
            path: path.to_path_buf(),
            raw,
            code,
            scan,
            in_test,
            waivers,
            bad_waivers,
        }
    }

    /// True when `rule` is waived for 1-based line `line` (waiver on the
    /// same line or the line directly above). Reasons were validated at
    /// parse time.
    pub fn waived(&self, rule: &str, line: usize) -> bool {
        self.waivers
            .iter()
            .any(|w| w.rule == rule && (w.line == line || w.line + 1 == line))
    }
}

/// Blanks comments (both views) and string contents (scan view only),
/// preserving line structure. Returns `(code, scan)`.
fn strip(text: &str) -> (String, String) {
    #[derive(PartialEq)]
    enum St {
        Normal,
        Line,          // // … to end of line
        Block(usize),  // /* … */ nest depth
        Str,           // "…"
        RawStr(usize), // r##"…"## with hash count
        Char,          // '…'
    }
    let mut code = String::with_capacity(text.len());
    let mut scan = String::with_capacity(text.len());
    let mut st = St::Normal;
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match st {
            St::Normal => match c {
                '/' if next == Some('/') => {
                    st = St::Line;
                    code.push(' ');
                    scan.push(' ');
                }
                '/' if next == Some('*') => {
                    st = St::Block(1);
                    code.push(' ');
                    scan.push(' ');
                }
                '"' => {
                    st = St::Str;
                    code.push(c);
                    scan.push(c);
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string r"…" / r#"…"#.
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for &ch in &bytes[i..=j] {
                            code.push(ch);
                            scan.push(ch);
                        }
                        i = j + 1;
                        continue;
                    }
                    code.push(c);
                    scan.push(c);
                }
                '\'' => {
                    // Char literal vs lifetime: 'a' has a closing quote
                    // within the next three chars ('x', '\n', '\u{..}'
                    // is longer but rare — treat as char until close).
                    let is_lifetime = matches!(next, Some(n) if n.is_alphabetic() || n == '_')
                        && bytes.get(i + 2) != Some(&'\'');
                    if is_lifetime {
                        code.push(c);
                        scan.push(c);
                    } else {
                        st = St::Char;
                        code.push(c);
                        scan.push(c);
                    }
                }
                _ => {
                    code.push(c);
                    scan.push(c);
                }
            },
            St::Line => {
                if c == '\n' {
                    st = St::Normal;
                    code.push('\n');
                    scan.push('\n');
                } else {
                    code.push(' ');
                    scan.push(' ');
                }
            }
            St::Block(depth) => {
                if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Normal
                    } else {
                        St::Block(depth - 1)
                    };
                    code.push_str("  ");
                    scan.push_str("  ");
                    i += 2;
                    continue;
                } else if c == '/' && next == Some('*') {
                    st = St::Block(depth + 1);
                    code.push_str("  ");
                    scan.push_str("  ");
                    i += 2;
                    continue;
                } else if c == '\n' {
                    code.push('\n');
                    scan.push('\n');
                } else {
                    code.push(' ');
                    scan.push(' ');
                }
            }
            St::Str => match c {
                '\\' => {
                    code.push(c);
                    scan.push(' ');
                    if let Some(n) = next {
                        code.push(n);
                        scan.push(if n == '\n' { '\n' } else { ' ' });
                        i += 2;
                        continue;
                    }
                }
                '"' => {
                    st = St::Normal;
                    code.push(c);
                    scan.push(c);
                }
                '\n' => {
                    code.push('\n');
                    scan.push('\n');
                }
                _ => {
                    code.push(c);
                    scan.push(' ');
                }
            },
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0;
                    while seen < hashes && bytes.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        st = St::Normal;
                        for &ch in &bytes[i..j] {
                            code.push(ch);
                            scan.push(ch);
                        }
                        i = j;
                        continue;
                    }
                }
                code.push(c);
                scan.push(if c == '\n' { '\n' } else { ' ' });
            }
            St::Char => match c {
                '\\' => {
                    code.push(c);
                    scan.push(' ');
                    if let Some(n) = next {
                        code.push(n);
                        scan.push(' ');
                        i += 2;
                        continue;
                    }
                }
                '\'' => {
                    st = St::Normal;
                    code.push(c);
                    scan.push(c);
                }
                _ => {
                    code.push(c);
                    scan.push(if c == '\n' { '\n' } else { ' ' });
                }
            },
        }
        i += 1;
    }
    (code, scan)
}

/// Marks the lines belonging to `#[cfg(test)]` items (the attribute, the
/// item header, and the braced body).
fn test_mask(scan: &[String]) -> Vec<bool> {
    let mut mask = vec![false; scan.len()];
    let mut i = 0;
    while i < scan.len() {
        let t = scan[i].trim();
        if t.starts_with("#[cfg(test)]") || t.starts_with("#[cfg(all(test") {
            let start = i;
            // Find the opening brace of the annotated item (skipping
            // further attributes), then the matching close.
            let mut depth: i64 = 0;
            let mut opened = false;
            let mut j = i;
            while j < scan.len() {
                for c in scan[j].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        ';' if !opened && depth == 0 => {
                            // Braceless item (e.g. `mod tests;`).
                            opened = true;
                            depth = 0;
                        }
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            let end = j.min(scan.len() - 1);
            for m in mask.iter_mut().take(end + 1).skip(start) {
                *m = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Parses `// lint:allow(rule): reason` markers out of the raw lines.
fn parse_waivers(raw: &[String]) -> (Vec<Waiver>, Vec<(usize, String)>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for (idx, line) in raw.iter().enumerate() {
        let lineno = idx + 1;
        let Some(pos) = line.find(WAIVER_MARKER) else {
            continue;
        };
        // The marker must live in a `//` comment on this line.
        match line.find("//") {
            Some(c) if c < pos => {}
            _ => {
                bad.push((lineno, "lint:allow outside a // comment".to_string()));
                continue;
            }
        }
        let rest = &line[pos + WAIVER_MARKER.len()..];
        let Some(close) = rest.find(')') else {
            bad.push((lineno, "unterminated lint:allow(rule)".to_string()));
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if rule.is_empty() {
            bad.push((lineno, "empty rule name in lint:allow".to_string()));
            continue;
        }
        let after = &rest[close + 1..];
        let reason = match after.strip_prefix(':') {
            Some(r) => r.trim().to_string(),
            None => String::new(),
        };
        if reason.is_empty() {
            bad.push((
                lineno,
                format!("waiver for `{rule}` has no justification (syntax: `// lint:allow({rule}): reason`)"),
            ));
            continue;
        }
        ok.push(Waiver {
            rule,
            reason,
            line: lineno,
        });
    }
    (ok, bad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn sf(text: &str) -> SourceFile {
        SourceFile::from_text(Path::new("mem.rs"), text)
    }

    #[test]
    fn comments_are_blanked_in_both_views() {
        let s = sf("let x = 1; // Instant::now here\n/* SystemTime */ let y = 2;\n");
        assert!(!s.scan[0].contains("Instant"));
        assert!(!s.code[0].contains("Instant"));
        assert!(s.scan[1].contains("let y = 2;"));
        assert!(!s.scan[1].contains("SystemTime"));
    }

    #[test]
    fn strings_survive_code_view_but_not_scan_view() {
        let s = sf("bump(\"std::thread::spawn\", 1);\n");
        assert!(s.code[0].contains("std::thread::spawn"));
        assert!(!s.scan[0].contains("std::thread::spawn"));
        // Quotes stay so literal extraction can find the span.
        assert_eq!(s.scan[0].matches('"').count(), 2);
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let s = sf("/* a /* b */ Instant */ ok\nlet r = r#\"thread_rng\"#;\n");
        assert!(!s.scan[0].contains("Instant"));
        assert!(s.scan[0].contains("ok"));
        assert!(!s.scan[1].contains("thread_rng"));
        assert!(s.code[1].contains("thread_rng"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let s = sf("fn f<'a>(x: &'a str) -> &'a str { x } // Instant\n");
        assert!(s.scan[0].contains("fn f<'a>"));
        assert!(!s.scan[0].contains("Instant"));
    }

    #[test]
    fn cfg_test_regions_are_masked() {
        let text = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn tail() {}\n";
        let s = sf(text);
        assert_eq!(s.in_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn waiver_parsing_demands_a_reason() {
        let s = sf(
            "// lint:allow(unordered-iter): feeds a commutative fold\nx.iter();\n// lint:allow(wall-clock)\n",
        );
        assert_eq!(s.waivers.len(), 1);
        assert_eq!(s.waivers[0].rule, "unordered-iter");
        assert!(s.waived("unordered-iter", 2));
        assert!(!s.waived("unordered-iter", 3));
        assert_eq!(s.bad_waivers.len(), 1);
        assert!(s.bad_waivers[0].1.contains("no justification"));
    }
}
