//! `fortika-lint`: a workspace determinism & layering analyzer.
//!
//! The chaos harness promises byte-identical prefix replay of any
//! `(scenario, seed)` pair, and the modularity experiment depends on a
//! strict crate layering. Both guarantees are invariants of the *source
//! tree*, not of any single run — a wall-clock read or an upward
//! dependency can sit dormant through every test and still break the
//! next replay. This crate turns them into checked rules.
//!
//! Three rule families (see [`determinism`], [`layering`],
//! [`registry`]):
//!
//! * **determinism** — protocol crates must not read wall clocks, use
//!   ambient randomness, spawn OS threads, or iterate Hash collections
//!   whose order could leak into behavior;
//! * **layering** — the workspace dependency graph must point strictly
//!   down the documented layer order;
//! * **registry** — scenario-event, counter and violation registries
//!   must stay wired end to end (no variant or name falls through a
//!   wildcard).
//!
//! Everything is hand-rolled and dependency-free in the spirit of
//! `fortika_bench::json`: a char-level comment/string stripper, a
//! line-oriented TOML reader, and a deterministic JSON emitter. No
//! `syn`, no `toml`, no `serde` — the analyzer builds offline with the
//! rest of the workspace and stays outside the graph it polices.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run --release -p fortika-lint
//! ```
//!
//! Diagnostics are compiler-style (`file:line: [rule] message`); the
//! machine-readable report lands in `target/lint-report.json`; the exit
//! code is nonzero iff violations were found. Intentional deviations are
//! waived in-source with `// lint:allow(rule): reason` — the reason is
//! mandatory and every *used* waiver is listed in the report.

pub mod determinism;
pub mod layering;
pub mod registry;
pub mod report;
pub mod source;

use std::path::{Path, PathBuf};

use report::Report;

/// Recursively collects `.rs` files under `dir` (sorted, so scan order —
/// and therefore report order — never depends on directory enumeration).
/// A missing `dir` is fine: not every workspace has `examples/`.
pub fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            // `target/` holds build products, never sources to lint.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative label for diagnostics, forward slashes on every
/// platform so reports are byte-identical across OSes.
pub fn rel_label(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Runs every rule family over the workspace rooted at `root` and
/// returns the sorted report.
pub fn run(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    for name in determinism::PROTOCOL_CRATES {
        determinism::check_crate(root, &root.join("crates").join(name), &mut report)?;
    }
    layering::check(root, &mut report)?;
    registry::check(root, &mut report)?;
    report.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_label_uses_forward_slashes() {
        let root = Path::new("/ws");
        let p = Path::new("/ws/crates/net/src/lib.rs");
        assert_eq!(rel_label(root, p), "crates/net/src/lib.rs");
    }
}
