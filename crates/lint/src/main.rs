//! CLI entry point: scan the workspace, print diagnostics, write
//! `target/lint-report.json`, exit nonzero on violations.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json-out" => json_out = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "fortika-lint: workspace determinism & layering analyzer\n\n\
                     USAGE: fortika-lint [--root DIR] [--json-out PATH]\n\n\
                     --root DIR       workspace root (default: auto-detected)\n\
                     --json-out PATH  report path (default: <root>/target/lint-report.json)\n\n\
                     Exits 0 on a clean tree, 1 on violations. Rules and waiver\n\
                     syntax: docs/LINTS.md."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("fortika-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    // Default root: the workspace this binary was built from (so
    // `cargo run -p fortika-lint` works from any subdirectory), falling
    // back to the current directory for a prebuilt binary.
    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .filter(|ws| ws.join("Cargo.toml").is_file())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let report = match fortika_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fortika-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    print!("{}", report.render_human());

    let json_path = json_out.unwrap_or_else(|| root.join("target").join("lint-report.json"));
    if let Some(dir) = json_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        eprintln!("fortika-lint: failed to write {}: {e}", json_path.display());
        return ExitCode::from(2);
    }
    println!("report: {}", json_path.display());

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
