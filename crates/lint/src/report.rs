//! Findings, waiver accounting and the machine-readable report.
//!
//! `fortika-lint` emits two artifacts from one run: human diagnostics
//! (`file:line: rule: message`, one per finding, compiler-style so
//! editors can jump) and `target/lint-report.json`, a deterministic
//! JSON document CI archives. The JSON is hand-rolled with the same
//! discipline as the bench emitter — and like the bench files it can be
//! re-validated by `fortika_bench::json`, though the lint crate itself
//! depends on nothing.

use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (e.g. `wall-clock`, `layering`).
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line (0 = whole-file finding).
    pub line: usize,
    /// What went wrong and what to do instead.
    pub message: String,
}

/// A waiver that actually suppressed a finding, for the report's audit
/// trail (unused waivers are reported too, as findings — dead waivers
/// rot into false confidence).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsedWaiver {
    /// The waived rule.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the waiver comment.
    pub line: usize,
    /// The written justification.
    pub reason: String,
}

/// Outcome of a full analyzer run.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Waivers that suppressed at least one finding.
    pub waivers: Vec<UsedWaiver>,
    /// Number of `.rs` files scanned by the determinism rules.
    pub files_scanned: usize,
    /// Number of crate manifests in the layering graph.
    pub crates_checked: usize,
}

impl Report {
    /// True when the workspace is clean.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Canonical ordering, applied once after all rules ran.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.findings.dedup();
        self.waivers
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        self.waivers.dedup();
    }

    /// Human diagnostics: one `file:line: rule: message` per finding
    /// plus a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            if f.line > 0 {
                let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
            } else {
                let _ = writeln!(out, "{}: [{}] {}", f.file, f.rule, f.message);
            }
        }
        let _ = writeln!(
            out,
            "fortika-lint: {} violation(s), {} waiver(s) in use, {} files / {} crates checked",
            self.findings.len(),
            self.waivers.len(),
            self.files_scanned,
            self.crates_checked,
        );
        out
    }

    /// The machine-readable report (deterministic: same tree, same
    /// bytes).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"version\": 1,");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"crates_checked\": {},", self.crates_checked);
        let _ = writeln!(out, "  \"violations\": {},", self.findings.len());
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let comma = if i + 1 < self.findings.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{comma}",
                escape(f.rule),
                escape(&f.file),
                f.line,
                escape(&f.message)
            );
        }
        out.push_str("  ],\n  \"waivers\": [\n");
        for (i, w) in self.waivers.iter().enumerate() {
            let comma = if i + 1 < self.waivers.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}{comma}",
                escape(&w.rule),
                escape(&w.file),
                w.line,
                escape(&w.reason)
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_and_deterministic_json() {
        let mut r = Report::default();
        r.findings.push(Finding {
            rule: "layering",
            file: "crates/net/Cargo.toml".into(),
            line: 9,
            message: "b \"quoted\"".into(),
        });
        r.findings.push(Finding {
            rule: "wall-clock",
            file: "crates/net/src/a.rs".into(),
            line: 3,
            message: "a".into(),
        });
        r.sort();
        assert_eq!(r.findings[0].rule, "layering");
        let json = r.to_json();
        assert_eq!(json, r.to_json());
        assert!(json.contains("\"violations\": 2"));
        assert!(json.contains("b \\\"quoted\\\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn human_render_is_compiler_style() {
        let mut r = Report::default();
        r.findings.push(Finding {
            rule: "ambient-rng",
            file: "crates/sim/src/rng.rs".into(),
            line: 12,
            message: "thread_rng is banned".into(),
        });
        let text = r.render_human();
        assert!(text.contains("crates/sim/src/rng.rs:12: [ambient-rng] thread_rng is banned"));
        assert!(text.contains("1 violation(s)"));
    }
}
