//! Registry exhaustiveness rules: enums and counter tables that must
//! stay wired end to end.
//!
//! Three registries keep the chaos harness honest, and each has a
//! failure mode the compiler cannot see:
//!
//! * **Scenario events** — a new [`ScenarioEvent`] variant that is
//!   generated but never scheduled in `Scenario::apply`, or skipped by
//!   `heals()`/`horizon()`, silently produces runs whose fault windows
//!   never close (or whose drain horizon is wrong). Wildcard match arms
//!   would compile fine; this rule demands every variant be *named* in
//!   all three functions.
//! * **Counters** — `CoverageReport`'s branch table and the `probe`
//!   sweeps reference counters by string. A typo (or a renamed counter)
//!   reads as eternally zero: the branch looks unreached, the sweep
//!   column flatlines, and nothing fails. This rule cross-checks every
//!   referenced counter name against the set of names some crate
//!   actually produces (`bump`/`record_send` call sites).
//! * **Violations** — a [`Violation`] variant that `process()`,
//!   `kind()` or `Display` does not name would dodge the trace-dump and
//!   minimization paths: the oracle would report it, but the bounded
//!   violation trace written to `target/trace/` could anchor on the
//!   wrong process, ddmin could conflate it with a different bug, or
//!   the report could render nothing useful.
//!
//! [`ScenarioEvent`]: ../../chaos/src/scenario.rs
//! [`Violation`]: ../../chaos/src/oracle.rs

use std::collections::BTreeSet;
use std::path::Path;

use crate::report::{Finding, Report};
use crate::source::SourceFile;

/// Rule id: `ScenarioEvent` wiring.
pub const RULE_SCENARIO: &str = "scenario-registry";
/// Rule id: counter-name cross-check.
pub const RULE_COUNTER: &str = "counter-registry";
/// Rule id: `Violation` wiring.
pub const RULE_VIOLATION: &str = "violation-registry";

/// The functions every `ScenarioEvent` variant must be named in.
/// `family` feeds the fuzz coverage matrix: a variant missing there
/// would be generated but never earn a matrix row, so steering could
/// never notice it is under-explored.
const SCENARIO_FNS: &[&str] = &["fn apply", "fn heals", "fn horizon", "fn family"];

/// Extracts the variant names of `enum <name>` from a preprocessed
/// file. Returns `(variants, 1-based line of the enum)`.
pub fn enum_variants(src: &SourceFile, name: &str) -> Option<(Vec<String>, usize)> {
    let needle = format!("enum {name}");
    let start = src
        .scan
        .iter()
        .position(|l| l.contains(&needle) && !l.trim_start().starts_with("use "))?;
    let mut variants = Vec::new();
    let mut depth: i64 = 0;
    let mut entered = false;
    for line in src.scan.iter().skip(start) {
        let at_variant_depth = entered && depth == 1;
        if at_variant_depth {
            let t = line.trim_start();
            let mut chars = t.chars();
            if let Some(first) = chars.next() {
                if first.is_ascii_uppercase() {
                    let end = t
                        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                        .unwrap_or(t.len());
                    let candidate = &t[..end];
                    // A variant line continues with `{`, `(`, `,` or
                    // nothing; anything else (`:` of a field, `=`) is
                    // not a variant.
                    let rest = t[end..].trim_start();
                    if rest.is_empty() || rest.starts_with(['{', '(', ',', '=']) {
                        variants.push(candidate.to_string());
                    }
                }
            }
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    entered = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if entered && depth == 0 {
            break;
        }
    }
    Some((variants, start + 1))
}

/// The body (including signature line) of the first `fn <name>` in the
/// file, as one string, plus its 1-based line.
pub fn fn_body(src: &SourceFile, fn_needle: &str) -> Option<(String, usize)> {
    let start = src.scan.iter().position(|l| {
        l.contains(fn_needle)
            && l[l.find(fn_needle).unwrap() + fn_needle.len()..].starts_with(['(', '<'])
    })?;
    Some((capture_block(src, start), start + 1))
}

/// The body of an `impl` block whose header contains `header_needle`.
pub fn impl_body(src: &SourceFile, header_needle: &str) -> Option<(String, usize)> {
    let start = src
        .scan
        .iter()
        .position(|l| l.contains("impl") && l.contains(header_needle))?;
    Some((capture_block(src, start), start + 1))
}

/// Captures lines from `start` through the close of the first brace
/// block opened at or after it.
fn capture_block(src: &SourceFile, start: usize) -> String {
    let mut out = String::new();
    let mut depth: i64 = 0;
    let mut entered = false;
    for line in src.scan.iter().skip(start) {
        out.push_str(line);
        out.push('\n');
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    entered = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if entered && depth <= 0 {
            break;
        }
    }
    out
}

/// `ScenarioEvent` wiring (see the [module docs](self)).
pub fn check_scenario_events(src: &SourceFile, rel: &str, report: &mut Report) {
    let Some((variants, enum_line)) = enum_variants(src, "ScenarioEvent") else {
        report.findings.push(Finding {
            rule: RULE_SCENARIO,
            file: rel.to_string(),
            line: 0,
            message: "enum ScenarioEvent not found (did the scenario registry move?)".to_string(),
        });
        return;
    };
    if variants.is_empty() {
        report.findings.push(Finding {
            rule: RULE_SCENARIO,
            file: rel.to_string(),
            line: enum_line,
            message: "enum ScenarioEvent parsed with zero variants".to_string(),
        });
        return;
    }
    for fn_needle in SCENARIO_FNS {
        let Some((body, fn_line)) = fn_body(src, fn_needle) else {
            report.findings.push(Finding {
                rule: RULE_SCENARIO,
                file: rel.to_string(),
                line: 0,
                message: format!("`{fn_needle}` not found next to enum ScenarioEvent"),
            });
            continue;
        };
        for v in &variants {
            if !body.contains(&format!("ScenarioEvent::{v}")) {
                report.findings.push(Finding {
                    rule: RULE_SCENARIO,
                    file: rel.to_string(),
                    line: fn_line,
                    message: format!(
                        "ScenarioEvent::{v} is not named in `{fn_needle}`: every variant must be \
                         explicitly scheduled (apply) and accounted (heals/horizon) — wildcard \
                         arms hide dropped fault events"
                    ),
                });
            }
        }
    }
}

/// `Violation` wiring: every variant named in `fn process` (the trace
/// dump anchor), `fn kind` (the minimizer's violation identity) and the
/// `Display` impl (the human diagnostic).
pub fn check_violations(src: &SourceFile, rel: &str, report: &mut Report) {
    let Some((variants, _)) = enum_variants(src, "Violation") else {
        report.findings.push(Finding {
            rule: RULE_VIOLATION,
            file: rel.to_string(),
            line: 0,
            message: "enum Violation not found (did the oracle move?)".to_string(),
        });
        return;
    };
    type Sink<'a> = (&'a str, Option<(String, usize)>, &'a str);
    let sinks: [Sink<'_>; 3] = [
        (
            "fn process",
            fn_body(src, "fn process"),
            "the violation trace dump anchors its bounded window on `Violation::process`",
        ),
        (
            "fn kind",
            fn_body(src, "fn kind"),
            "the counterexample minimizer matches candidate runs by `Violation::kind` — a \
             variant collapsing into another's kind (or a wildcard) lets ddmin swap one bug \
             for a different one mid-shrink",
        ),
        (
            "Display for Violation",
            impl_body(src, "Display for Violation"),
            "oracle reports render violations through `Display`",
        ),
    ];
    for (what, body, why) in sinks {
        let Some((body, line)) = body else {
            report.findings.push(Finding {
                rule: RULE_VIOLATION,
                file: rel.to_string(),
                line: 0,
                message: format!("`{what}` not found for enum Violation"),
            });
            continue;
        };
        for v in &variants {
            if !body.contains(&format!("Violation::{v}")) {
                report.findings.push(Finding {
                    rule: RULE_VIOLATION,
                    file: rel.to_string(),
                    line,
                    message: format!("Violation::{v} is not named in `{what}`: {why}"),
                });
            }
        }
    }
}

/// Collects counter names *produced* in `src`: string literals passed
/// to `bump(` / `record_send(` — or to a `send(` wrapper, which is how
/// the protocol modules register their per-kind message counters (the
/// literal may sit on a later line, and for `send` it is not the first
/// argument).
pub fn collect_produced(src: &SourceFile, out: &mut BTreeSet<String>) {
    let joined = src.code.join("\n");
    for needle in ["bump(", "record_send(", "send("] {
        let mut from = 0;
        while let Some(p) = joined[from..].find(needle) {
            let name_start = from + p;
            let at = name_start + needle.len();
            // Boundary on the left of the method name (`send_estimate(`
            // and `record_send(`-via-`send(` must not double-match).
            let bounded = name_start == 0 || {
                let c = joined.as_bytes()[name_start - 1] as char;
                c == '.' || !(c.is_ascii_alphanumeric() || c == '_')
            };
            if bounded {
                if let Some(lit) = harvest_call(&joined[at..]) {
                    out.insert(lit);
                }
            }
            from = at;
        }
    }
}

/// The counter-name literal of one call, given the text just after the
/// opening paren: the first argument when it is a string literal, or
/// else the first *dotted* literal among the arguments (counter names
/// always carry a `module.` prefix; payload strings do not).
fn harvest_call(args: &str) -> Option<String> {
    let window = &args[..args.len().min(600)];
    let mut depth: i32 = 1;
    let mut first_arg = true;
    let mut i = 0;
    let bytes = window.as_bytes();
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '"' => {
                let rest = &window[i + 1..];
                let end = rest.find('"')?;
                let lit = &rest[..end];
                if first_arg || lit.contains('.') {
                    return Some(lit.to_string());
                }
                i += end + 1;
                first_arg = false;
            }
            '(' => {
                depth += 1;
                first_arg = false;
            }
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return None;
                }
            }
            c if c.is_whitespace() => {}
            _ => first_arg = false,
        }
        i += 1;
    }
    None
}

/// Counter names *referenced* in `src` through `.event("…")` or
/// `.kind("…")` lookups, with their 1-based lines.
pub fn collect_referenced(src: &SourceFile, out: &mut Vec<(String, usize)>) {
    for (idx, line) in src.code.iter().enumerate() {
        if src.in_test[idx] {
            // Unit tests legitimately probe unknown counters to assert
            // zero-default semantics.
            continue;
        }
        for needle in [".event(\"", ".kind(\""] {
            let mut from = 0;
            while let Some(p) = line[from..].find(needle) {
                let at = from + p + needle.len();
                if let Some(end) = line[at..].find('"') {
                    out.push((line[at..at + end].to_string(), idx + 1));
                }
                from = at;
            }
        }
    }
}

/// Counter keys referenced by `CoverageReport`'s `BRANCHES` table: the
/// string literals inside the `keys:` arrays (every key carries a `.`;
/// branch *names* do not, which keeps the two apart without parsing the
/// struct).
pub fn coverage_keys(src: &SourceFile) -> Vec<(String, usize)> {
    let Some(start) = src.scan.iter().position(|l| l.contains("BRANCHES")) else {
        return Vec::new();
    };
    let block_end = {
        let mut depth: i64 = 0;
        let mut entered = false;
        let mut end = start;
        for (off, line) in src.scan.iter().skip(start).enumerate() {
            for c in line.chars() {
                match c {
                    '[' | '{' => {
                        depth += 1;
                        entered = true;
                    }
                    ']' | '}' => depth -= 1,
                    _ => {}
                }
            }
            end = start + off;
            if entered && depth <= 0 {
                break;
            }
        }
        end
    };
    let mut out = Vec::new();
    for idx in start..=block_end.min(src.code.len() - 1) {
        let line = &src.code[idx];
        let mut rest = line.as_str();
        let mut seen = 0;
        while let Some(q) = rest.find('"') {
            let tail = &rest[q + 1..];
            let Some(end) = tail.find('"') else { break };
            let lit = &tail[..end];
            if lit.contains('.') {
                out.push((lit.to_string(), idx + 1));
            }
            rest = &tail[end + 1..];
            seen += 1;
            if seen > 32 {
                break;
            }
        }
    }
    out
}

/// Cross-checks every referenced counter name against the produced set.
pub fn check_counter_names(
    referenced: &[(String, usize, String)], // (name, line, file)
    produced: &BTreeSet<String>,
    report: &mut Report,
) {
    for (name, line, file) in referenced {
        if !produced.contains(name) {
            report.findings.push(Finding {
                rule: RULE_COUNTER,
                file: file.clone(),
                line: *line,
                message: format!(
                    "counter `{name}` is referenced here but no crate ever bumps it — it will \
                     read as eternally zero (typo, or a renamed counter?)"
                ),
            });
        }
    }
}

/// Runs all registry rules over the workspace rooted at `root`.
pub fn check(root: &Path, report: &mut Report) -> std::io::Result<()> {
    // Scenario events + violations live in the chaos crate.
    let scenario_path = root.join("crates/chaos/src/scenario.rs");
    let scenario = SourceFile::load(&scenario_path)?;
    check_scenario_events(&scenario, &crate::rel_label(root, &scenario_path), report);

    let oracle_path = root.join("crates/chaos/src/oracle.rs");
    let oracle = SourceFile::load(&oracle_path)?;
    check_violations(&oracle, &crate::rel_label(root, &oracle_path), report);

    // Produced counters: every .rs file in the workspace (tests and
    // examples included — producers can live anywhere).
    let mut produced = BTreeSet::new();
    let mut all_rs = Vec::new();
    for dir in ["crates", "src", "tests", "examples"] {
        crate::walk_rs(&root.join(dir), &mut all_rs)?;
    }
    for path in &all_rs {
        let src = SourceFile::load(path)?;
        collect_produced(&src, &mut produced);
    }

    // Referenced counters: the CoverageReport branch table, plus every
    // non-test `.event("…")` / `.kind("…")` lookup in the bench crate
    // (probe's sweeps and audits).
    let mut referenced: Vec<(String, usize, String)> = Vec::new();
    let coverage_path = root.join("crates/chaos/src/coverage.rs");
    let coverage = SourceFile::load(&coverage_path)?;
    let cov_rel = crate::rel_label(root, &coverage_path);
    for (name, line) in coverage_keys(&coverage) {
        referenced.push((name, line, cov_rel.clone()));
    }
    let mut bench_rs = Vec::new();
    crate::walk_rs(&root.join("crates/bench"), &mut bench_rs)?;
    for path in &bench_rs {
        let src = SourceFile::load(path)?;
        let rel = crate::rel_label(root, path);
        let mut refs = Vec::new();
        collect_referenced(&src, &mut refs);
        for (name, line) in refs {
            referenced.push((name, line, rel.clone()));
        }
    }
    check_counter_names(&referenced, &produced, report);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn sf(text: &str) -> SourceFile {
        SourceFile::from_text(Path::new("mem.rs"), text)
    }

    #[test]
    fn variant_extraction_skips_fields_and_bodies() {
        let src = sf(
            "pub enum ScenarioEvent {\n    Crash {\n        pid: ProcessId,\n        at: VDur,\n    },\n    Restart { pid: ProcessId },\n    Lossy(f64),\n    Heal,\n}\n",
        );
        let (vars, line) = enum_variants(&src, "ScenarioEvent").unwrap();
        assert_eq!(vars, vec!["Crash", "Restart", "Lossy", "Heal"]);
        assert_eq!(line, 1);
    }

    #[test]
    fn missing_variant_in_apply_fires() {
        let src = sf(
            "pub enum ScenarioEvent {\n    Crash,\n    Restart,\n}\nimpl S {\n    pub fn apply(&self) {\n        match e { ScenarioEvent::Crash => {} _ => {} }\n    }\n    pub fn heals(&self) -> bool {\n        matches!(e, ScenarioEvent::Crash | ScenarioEvent::Restart)\n    }\n    pub fn horizon(&self) {\n        let _ = (ScenarioEvent::Crash, ScenarioEvent::Restart);\n    }\n    pub fn family(&self) {\n        let _ = (ScenarioEvent::Crash, ScenarioEvent::Restart);\n    }\n}\n",
        );
        let mut r = Report::default();
        check_scenario_events(&src, "mem.rs", &mut r);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert!(r.findings[0].message.contains("ScenarioEvent::Restart"));
        assert!(r.findings[0].message.contains("fn apply"));
    }

    #[test]
    fn violation_display_gap_fires() {
        let src = sf(
            "pub enum Violation {\n    A { p: u32 },\n    B,\n}\nimpl Violation {\n    pub fn process(&self) {\n        match self { Violation::A { .. } => {} Violation::B => {} }\n    }\n    pub fn kind(&self) {\n        match self { Violation::A { .. } => \"A\", Violation::B => \"B\" };\n    }\n}\nimpl fmt::Display for Violation {\n    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {\n        match self { Violation::A { .. } => write!(f, \"a\"), _ => write!(f, \"other\") }\n    }\n}\n",
        );
        let mut r = Report::default();
        check_violations(&src, "mem.rs", &mut r);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert!(r.findings[0].message.contains("Violation::B"));
        assert!(r.findings[0].message.contains("Display"));
    }

    #[test]
    fn produced_counters_found_across_lines() {
        let src = sf("ctx.bump(\"a.one\", 1);\nctx.bump(\n    \"a.two\",\n    1,\n);\nctx.record_send(\"k.send\", n);\nctx.bump(name, 1);\nself.send(ctx, coord, \"mono.estimate\", &msg);\nself.send(dst, kind, bytes);\n");
        let mut out = BTreeSet::new();
        collect_produced(&src, &mut out);
        let names: Vec<&str> = out.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["a.one", "a.two", "k.send", "mono.estimate"]);
    }

    #[test]
    fn unproduced_reference_fires() {
        let mut produced = BTreeSet::new();
        produced.insert("real.counter".to_string());
        let refs = vec![
            ("real.counter".to_string(), 3, "f.rs".to_string()),
            ("ghost.counter".to_string(), 9, "f.rs".to_string()),
        ];
        let mut r = Report::default();
        check_counter_names(&refs, &produced, &mut r);
        assert_eq!(r.findings.len(), 1);
        assert!(r.findings[0].message.contains("ghost.counter"));
        assert_eq!(r.findings[0].line, 9);
    }

    /// The dynamic-membership additions must be *visible* to the
    /// registry rules: the enum parser discovers the `AddNode` /
    /// `RemoveNode` scenario variants and the `ConfigDivergence`
    /// violation in the real workspace sources, and both are fully
    /// wired (apply/heals/horizon/family, process/kind/Display). If a
    /// refactor moved or renamed them, the exhaustiveness guarantee
    /// would silently evaporate — this pins it.
    #[test]
    fn workspace_registries_cover_the_reconfig_vocabulary() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let scenario = SourceFile::load(&root.join("crates/chaos/src/scenario.rs")).unwrap();
        let (vars, _) = enum_variants(&scenario, "ScenarioEvent").unwrap();
        for v in ["AddNode", "RemoveNode"] {
            assert!(
                vars.iter().any(|x| x == v),
                "ScenarioEvent::{v} not discovered"
            );
        }
        let mut r = Report::default();
        check_scenario_events(&scenario, "scenario.rs", &mut r);
        assert!(r.findings.is_empty(), "{:?}", r.findings);

        let oracle = SourceFile::load(&root.join("crates/chaos/src/oracle.rs")).unwrap();
        let (vars, _) = enum_variants(&oracle, "Violation").unwrap();
        assert!(
            vars.iter().any(|x| x == "ConfigDivergence"),
            "Violation::ConfigDivergence not discovered"
        );
        let mut r = Report::default();
        check_violations(&oracle, "oracle.rs", &mut r);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn coverage_keys_take_only_dotted_literals() {
        let src = sf(
            "const BRANCHES: &[Branch] = &[\n    Branch {\n        name: \"round_changes\",\n        keys: &[\"consensus.round_changes\", \"mono.round_changes\"],\n    },\n];\n",
        );
        let keys = coverage_keys(&src);
        let names: Vec<&str> = keys.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["consensus.round_changes", "mono.round_changes"]);
    }
}
