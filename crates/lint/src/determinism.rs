//! Determinism rules for protocol crates.
//!
//! The chaos oracle's strongest promise — byte-identical prefix replay
//! of the same `(scenario, seed)` pair — holds only while every source
//! of nondeterminism stays behind the simulator's virtual clock and
//! seeded `DetRng` (`crates/sim/src/rng.rs`). These rules ban the std
//! escape hatches that would
//! silently break it:
//!
//! * [`wall-clock`](RULE_WALL_CLOCK) — `std::time::Instant` /
//!   `SystemTime`: real time diverges across runs and machines.
//! * [`ambient-rng`](RULE_AMBIENT_RNG) — `rand` / `thread_rng`:
//!   OS-seeded randomness is unreplayable.
//! * [`thread`](RULE_THREAD) — `std::thread::spawn`: scheduling order
//!   is up to the OS, not the event queue.
//! * [`unordered-iter`](RULE_UNORDERED_ITER) — iterating a `HashMap` /
//!   `HashSet`: std randomizes the hasher seed *per process*, so
//!   iteration order can leak into message order and decisions.
//!   Allowed when the site visibly feeds a sort or an order-insensitive
//!   reduction, or carries a `// lint:allow(unordered-iter): reason`
//!   waiver.

use std::collections::BTreeSet;
use std::path::Path;

use crate::report::{Finding, Report, UsedWaiver};
use crate::source::SourceFile;

/// Rule id: wall-clock reads.
pub const RULE_WALL_CLOCK: &str = "wall-clock";
/// Rule id: ambient (OS-seeded) randomness.
pub const RULE_AMBIENT_RNG: &str = "ambient-rng";
/// Rule id: OS threads.
pub const RULE_THREAD: &str = "thread";
/// Rule id: iteration over randomly-ordered collections.
pub const RULE_UNORDERED_ITER: &str = "unordered-iter";
/// Rule id: malformed waiver comments.
pub const RULE_WAIVER: &str = "waiver-syntax";

/// The crates the determinism rules police. Everything at or below the
/// stacks must be bit-deterministic; `chaos`/`core`/`bench` orchestrate
/// runs and may touch the filesystem and wall clock.
pub const PROTOCOL_CRATES: &[&str] = &[
    "sim",
    "trace",
    "net",
    "framework",
    "fd",
    "rbcast",
    "consensus",
    "abcast",
    "mono",
];

/// Banned-token table: `(rule, needle, advice)`. Needles are matched on
/// the comment/string-stripped view with an identifier-boundary check on
/// the left, so `// Instant the handler started` (a comment) and
/// `restart_instant` (an identifier) cannot fire.
const BANNED: &[(&str, &str, &str)] = &[
    (
        RULE_WALL_CLOCK,
        "std::time::Instant",
        "use the simulator's virtual clock (`VTime`/`NodeCtx::now`)",
    ),
    (
        RULE_WALL_CLOCK,
        "std::time::SystemTime",
        "use the simulator's virtual clock (`VTime`/`NodeCtx::now`)",
    ),
    (
        RULE_WALL_CLOCK,
        "Instant::now",
        "use the simulator's virtual clock (`VTime`/`NodeCtx::now`)",
    ),
    (
        RULE_WALL_CLOCK,
        "SystemTime::now",
        "use the simulator's virtual clock (`VTime`/`NodeCtx::now`)",
    ),
    (
        RULE_AMBIENT_RNG,
        "thread_rng",
        "use the seeded `fortika_sim::DetRng` (derive a stream per purpose)",
    ),
    (
        RULE_AMBIENT_RNG,
        "rand::",
        "use the seeded `fortika_sim::DetRng` (derive a stream per purpose)",
    ),
    (
        RULE_THREAD,
        "std::thread::spawn",
        "protocol code runs on the discrete-event loop; schedule an event instead",
    ),
    // The bare spelling (after `use std::thread;`). The left-boundary
    // check rejects `::`-prefixed hits, so the two needles never both
    // fire on one call.
    (
        RULE_THREAD,
        "thread::spawn",
        "protocol code runs on the discrete-event loop; schedule an event instead",
    ),
];

/// Iteration methods that surface `HashMap`/`HashSet` order.
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".retain(",
];

/// How many lines below an iteration site the scanner looks for a
/// `.sort` call (the collect-then-sort idiom spreads the sink over a
/// few statements).
const SORT_LOOKAHEAD: usize = 12;

/// Runs every determinism rule over one preprocessed file, appending to
/// `report`. `rel` is the workspace-relative path used in diagnostics.
pub fn check_file(src: &SourceFile, rel: &str, report: &mut Report) {
    report.files_scanned += 1;

    // Malformed waivers are violations wherever they appear (including
    // test regions — a broken waiver is never intentional).
    for (line, problem) in &src.bad_waivers {
        report.findings.push(Finding {
            rule: RULE_WAIVER,
            file: rel.to_string(),
            line: *line,
            message: problem.clone(),
        });
    }

    let mut used: BTreeSet<usize> = BTreeSet::new();
    for (idx, line) in src.scan.iter().enumerate() {
        let lineno = idx + 1;
        if src.in_test[idx] {
            continue;
        }
        for (rule, needle, advice) in BANNED {
            if let Some(pos) = find_bounded(line, needle) {
                if src.waived(rule, lineno) {
                    used.insert(lineno);
                    note_waiver(src, rel, rule, lineno, report);
                } else {
                    let token = &line[pos..pos + needle.len()];
                    report.findings.push(Finding {
                        rule,
                        file: rel.to_string(),
                        line: lineno,
                        message: format!("`{token}` is banned in protocol crates: {advice}"),
                    });
                }
            }
        }
    }

    check_unordered_iter(src, rel, report);
}

/// The `unordered-iter` rule: track identifiers declared as `HashMap` /
/// `HashSet`, then flag any line that iterates one unless the site
/// visibly feeds a sort / order-insensitive reduction or is waived.
fn check_unordered_iter(src: &SourceFile, rel: &str, report: &mut Report) {
    let idents = collect_hash_idents(src);
    if idents.is_empty() {
        return;
    }
    for (idx, line) in src.scan.iter().enumerate() {
        let lineno = idx + 1;
        if src.in_test[idx] {
            continue;
        }
        for ident in &idents {
            let hit = iterates(line, ident);
            if !hit {
                continue;
            }
            if src.waived(RULE_UNORDERED_ITER, lineno) {
                note_waiver(src, rel, RULE_UNORDERED_ITER, lineno, report);
            } else if !order_insensitive(src, idx) {
                report.findings.push(Finding {
                    rule: RULE_UNORDERED_ITER,
                    file: rel.to_string(),
                    line: lineno,
                    message: format!(
                        "iteration over the randomly-ordered `{ident}` (HashMap/HashSet) can leak \
                         hasher-seed order into behavior: sort the result, switch to \
                         BTreeMap/BTreeSet, or waive with `// lint:allow(unordered-iter): reason`"
                    ),
                });
            }
        }
    }
}

/// Identifiers (fields, lets, params) declared with a Hash-collection
/// type in non-test code.
fn collect_hash_idents(src: &SourceFile) -> BTreeSet<String> {
    let mut idents = BTreeSet::new();
    for (idx, line) in src.scan.iter().enumerate() {
        if src.in_test[idx] {
            continue;
        }
        // `name: HashMap<...>` (field/param/let-with-type).
        for ty in ["HashMap<", "HashSet<"] {
            let mut from = 0;
            while let Some(p) = line[from..].find(ty) {
                let at = from + p;
                // Reject qualified paths like `other::HashMap<` only when
                // the qualifier is not std's collections module.
                if let Some(name) = ident_before_colon(line, at) {
                    idents.insert(name);
                }
                from = at + ty.len();
            }
        }
        // `let [mut] name = HashMap::new()` / `HashSet::with_capacity`.
        for ctor in [
            "HashMap::new",
            "HashMap::with_capacity",
            "HashMap::default",
            "HashSet::new",
            "HashSet::with_capacity",
            "HashSet::default",
        ] {
            if line.contains(ctor) {
                if let Some(name) = let_binding_name(line) {
                    idents.insert(name);
                }
            }
        }
    }
    idents
}

/// For `... name: [std::collections::]HashMap<` at byte `at` of the
/// type name, walk left to the `:` and capture the identifier.
fn ident_before_colon(line: &str, at: usize) -> Option<String> {
    let bytes = line.as_bytes();
    let mut i = at;
    // Skip a `std::collections::` (or any) path qualifier.
    while i >= 2 && &line[i - 2..i] == "::" {
        i -= 2;
        while i > 0 && is_ident_char(bytes[i - 1] as char) {
            i -= 1;
        }
    }
    // Expect optional whitespace then a single `:`.
    while i > 0 && (bytes[i - 1] as char).is_whitespace() {
        i -= 1;
    }
    if i == 0 || bytes[i - 1] as char != ':' || (i >= 2 && bytes[i - 2] as char == ':') {
        return None;
    }
    i -= 1;
    while i > 0 && (bytes[i - 1] as char).is_whitespace() {
        i -= 1;
    }
    let end = i;
    while i > 0 && is_ident_char(bytes[i - 1] as char) {
        i -= 1;
    }
    if i == end {
        return None;
    }
    Some(line[i..end].to_string())
}

/// The bound name of a `let [mut] name = ...` line.
fn let_binding_name(line: &str) -> Option<String> {
    let t = line.trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let end = rest.find(|c: char| !is_ident_char(c))?;
    let name = &rest[..end];
    (!name.is_empty()).then(|| name.to_string())
}

/// True when `line` iterates `ident`: `ident.iter()`-style method calls
/// or `for ... in [&[mut ]]ident`.
fn iterates(line: &str, ident: &str) -> bool {
    let mut from = 0;
    while let Some(p) = line[from..].find(ident) {
        let at = from + p;
        let left_ok = at == 0 || !is_ident_char(line.as_bytes()[at - 1] as char);
        let after = &line[at + ident.len()..];
        if left_ok {
            for m in ITER_METHODS {
                if after.starts_with(m) {
                    return true;
                }
            }
        }
        from = at + ident.len();
    }
    // `for x in &map {` / `for x in map {` (map moved or auto-ref'd).
    if let Some(inpos) = line.find(" in ") {
        if line.trim_start().starts_with("for ") {
            let mut expr = line[inpos + 4..].trim();
            if let Some(brace) = expr.find('{') {
                expr = expr[..brace].trim();
            }
            expr = expr
                .strip_prefix("&mut ")
                .or_else(|| expr.strip_prefix('&'))
                .unwrap_or(expr);
            // Allow `self.`/receiver-qualified spellings.
            let last = expr.rsplit('.').next().unwrap_or(expr);
            if last == ident {
                return true;
            }
        }
    }
    false
}

/// True when the statement starting at line `idx` visibly neutralizes
/// iteration order: a `.sort` within [`SORT_LOOKAHEAD`] lines below
/// (collect-then-sort), or a same-statement order-insensitive reduction
/// (`count`/`sum`/`all`/`any`/`min()`/`max()`) or a collect into an
/// ordered container.
fn order_insensitive(src: &SourceFile, idx: usize) -> bool {
    // Same statement: to the first `;` (or 6 lines, whichever first).
    let mut stmt = String::new();
    for line in src.scan.iter().skip(idx).take(6) {
        stmt.push_str(line);
        stmt.push('\n');
        if line.contains(';') {
            break;
        }
    }
    const REDUCTIONS: &[&str] = &[
        ".count()",
        ".sum()",
        ".sum::<",
        ".all(",
        ".any(",
        ".min()",
        ".max()",
        ".collect::<BTreeSet",
        ".collect::<BTreeMap",
        ": BTreeSet<",
        ": BTreeMap<",
        ".is_empty()",
        ".len()",
    ];
    if REDUCTIONS.iter().any(|r| stmt.contains(r)) {
        return true;
    }
    // Collect-then-sort: a `.sort` a few lines below.
    src.scan
        .iter()
        .skip(idx)
        .take(SORT_LOOKAHEAD)
        .any(|l| l.contains(".sort"))
}

fn note_waiver(src: &SourceFile, rel: &str, rule: &str, lineno: usize, report: &mut Report) {
    let w = src
        .waivers
        .iter()
        .find(|w| w.rule == rule && (w.line == lineno || w.line + 1 == lineno))
        .expect("waived() implies a matching waiver");
    report.waivers.push(UsedWaiver {
        rule: w.rule.clone(),
        file: rel.to_string(),
        line: w.line,
        reason: w.reason.clone(),
    });
}

/// `needle` at an identifier boundary on the left (`restart_instant`
/// must not match `Instant`; `operand::` must not match `rand::`).
fn find_bounded(line: &str, needle: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(p) = line[from..].find(needle) {
        let at = from + p;
        let left_ok = at == 0 || {
            let c = line.as_bytes()[at - 1] as char;
            !is_ident_char(c) && c != ':'
        };
        if left_ok {
            return Some(at);
        }
        from = at + needle.len();
    }
    None
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Scans one protocol crate's `src/` tree rooted at `crate_dir`,
/// appending findings to `report`. Paths in diagnostics are relative to
/// `root`.
pub fn check_crate(root: &Path, crate_dir: &Path, report: &mut Report) -> std::io::Result<()> {
    let src_dir = crate_dir.join("src");
    let mut files = Vec::new();
    crate::walk_rs(&src_dir, &mut files)?;
    for path in files {
        let src = SourceFile::load(&path)?;
        let rel = crate::rel_label(root, &path);
        check_file(&src, &rel, report);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run(text: &str) -> Report {
        let src = SourceFile::from_text(Path::new("mem.rs"), text);
        let mut report = Report::default();
        check_file(&src, "mem.rs", &mut report);
        report.sort();
        report
    }

    #[test]
    fn bans_fire_outside_comments_and_strings() {
        let r = run("let t = std::time::Instant::now();\n");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, RULE_WALL_CLOCK);
        assert!(run("// std::time::Instant::now()\n").clean());
        assert!(run("let s = \"std::time::Instant\";\n").clean());
        assert!(run("let restart_instant = now;\n").clean());
    }

    #[test]
    fn rng_and_thread_bans() {
        assert_eq!(
            run("let x = rand::random::<u64>();\n").findings[0].rule,
            RULE_AMBIENT_RNG
        );
        assert_eq!(
            run("let mut r = thread_rng();\n").findings[0].rule,
            RULE_AMBIENT_RNG
        );
        assert_eq!(
            run("std::thread::spawn(|| {});\n").findings[0].rule,
            RULE_THREAD
        );
        // `operand::` is not `rand::`.
        assert!(run("use operand::x;\n").clean());
    }

    #[test]
    fn unordered_iteration_is_flagged_and_sorted_sites_pass() {
        let bad = "struct S { m: HashMap<u32, u32> }\nfn f(s: &S) { for v in s.m.values() { use_(v); } }\n";
        let r = run(bad);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, RULE_UNORDERED_ITER);
        assert_eq!(r.findings[0].line, 2);

        let sorted = "struct S { m: HashMap<u32, u32> }\nfn f(s: &S) -> Vec<u32> {\n    let mut v: Vec<u32> = s.m.values().copied().collect();\n    v.sort();\n    v\n}\n";
        assert!(run(sorted).clean(), "{:?}", run(sorted).findings);

        let counted =
            "struct S { m: HashMap<u32, u32> }\nfn f(s: &S) -> usize { s.m.values().count() }\n";
        assert!(run(counted).clean());
    }

    #[test]
    fn for_loop_over_map_is_flagged() {
        let text = "fn f() {\n    let mut m = HashMap::new();\n    m.insert(1, 2);\n    for (k, v) in &m { use_(k, v); }\n}\n";
        let r = run(text);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].line, 4);
    }

    #[test]
    fn waivers_suppress_and_are_accounted() {
        let text = "struct S { m: HashSet<u32> }\nfn f(s: &S) {\n    // lint:allow(unordered-iter): fold is commutative\n    for v in s.m.iter() { acc += v; }\n}\n";
        let r = run(text);
        assert!(r.clean(), "{:?}", r.findings);
        assert_eq!(r.waivers.len(), 1);
        assert_eq!(r.waivers[0].rule, RULE_UNORDERED_ITER);
        assert_eq!(r.waivers[0].reason, "fold is commutative");
    }

    #[test]
    fn test_modules_are_exempt() {
        let text = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::time::Instant::now(); }\n}\n";
        assert!(run(text).clean());
    }

    #[test]
    fn malformed_waiver_is_a_finding() {
        let r = run("// lint:allow(wall-clock)\nfn f() {}\n");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, RULE_WAIVER);
    }
}
