//! Every lint rule proven live against `fixtures/`: the bad fixture
//! fires exactly its rule, the waived/clean twin stays silent. If a
//! refactor of the scanner ever blinds a rule, these tests — not the
//! next replay divergence — are where it shows up.

use std::path::{Path, PathBuf};

use fortika_lint::determinism::{
    self, RULE_AMBIENT_RNG, RULE_THREAD, RULE_UNORDERED_ITER, RULE_WAIVER, RULE_WALL_CLOCK,
};
use fortika_lint::layering::{check_graph, parse_manifest};
use fortika_lint::registry::{check_scenario_events, check_violations};
use fortika_lint::report::Report;
use fortika_lint::source::SourceFile;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn scan(name: &str) -> Report {
    let path = fixture(name);
    let src = SourceFile::load(&path).expect("fixture readable");
    let mut report = Report::default();
    determinism::check_file(&src, name, &mut report);
    report.sort();
    report
}

fn rules(report: &Report) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn wall_clock_fires_on_every_spelling() {
    let r = scan("wall_clock_bad.rs");
    assert_eq!(rules(&r), vec![RULE_WALL_CLOCK; 4], "{:?}", r.findings);
    // The `fine()` half: comments, string literals and `restart_instant`
    // never fire, so every finding sits in the bad half of the file.
    assert!(r.findings.iter().all(|f| f.line <= 13), "{:?}", r.findings);
}

#[test]
fn wall_clock_waiver_suppresses_and_is_accounted() {
    let r = scan("wall_clock_waived.rs");
    assert!(r.clean(), "{:?}", r.findings);
    assert_eq!(r.waivers.len(), 1);
    assert_eq!(r.waivers[0].rule, RULE_WALL_CLOCK);
    assert!(r.waivers[0].reason.contains("never compared across runs"));
}

#[test]
fn ambient_rng_fires_twice_and_spares_operand() {
    let r = scan("ambient_rng_bad.rs");
    assert_eq!(rules(&r), vec![RULE_AMBIENT_RNG; 2], "{:?}", r.findings);
}

#[test]
fn thread_spawn_fires_qualified_and_bare() {
    let r = scan("thread_bad.rs");
    assert_eq!(rules(&r), vec![RULE_THREAD; 2], "{:?}", r.findings);
}

#[test]
fn unordered_iter_fires_on_all_three_shapes() {
    let r = scan("unordered_iter_bad.rs");
    assert_eq!(rules(&r), vec![RULE_UNORDERED_ITER; 3], "{:?}", r.findings);
}

#[test]
fn unordered_iter_spares_sorted_reduced_waived_and_tests() {
    let r = scan("unordered_iter_ok.rs");
    assert!(r.clean(), "{:?}", r.findings);
    assert_eq!(r.waivers.len(), 1);
    assert_eq!(r.waivers[0].rule, RULE_UNORDERED_ITER);
}

#[test]
fn malformed_waivers_are_findings() {
    let r = scan("waiver_bad.rs");
    assert_eq!(rules(&r), vec![RULE_WAIVER; 2], "{:?}", r.findings);
}

#[test]
fn layering_bad_manifest_fires_harness_and_peer_edges() {
    let content = std::fs::read_to_string(fixture("layering_bad.toml")).unwrap();
    let info = parse_manifest("fixtures/layering_bad.toml", &content);
    let mut r = Report::default();
    check_graph(&[info], &mut r);
    r.sort();
    let msgs: Vec<&str> = r.findings.iter().map(|f| f.message.as_str()).collect();
    assert_eq!(msgs.len(), 2, "{msgs:?}");
    assert!(msgs
        .iter()
        .any(|m| m.contains("harness crate `fortika-chaos`")));
    assert!(
        msgs.iter().any(|m| m.contains("upward dependency")),
        "{msgs:?}"
    );
}

#[test]
fn layering_ok_manifest_is_clean() {
    let content = std::fs::read_to_string(fixture("layering_ok.toml")).unwrap();
    let info = parse_manifest("fixtures/layering_ok.toml", &content);
    let mut r = Report::default();
    check_graph(&[info], &mut r);
    assert!(r.clean(), "{:?}", r.findings);
}

#[test]
fn registry_gaps_fire_and_wired_registries_pass() {
    let bad = SourceFile::load(&fixture("registry_bad.rs")).unwrap();
    let mut r = Report::default();
    check_scenario_events(&bad, "registry_bad.rs", &mut r);
    check_violations(&bad, "registry_bad.rs", &mut r);
    r.sort();
    let msgs: Vec<&str> = r.findings.iter().map(|f| f.message.as_str()).collect();
    assert_eq!(msgs.len(), 4, "{msgs:?}");
    assert!(msgs
        .iter()
        .any(|m| m.contains("ScenarioEvent::Quake") && m.contains("fn apply")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("ScenarioEvent::Quake") && m.contains("fn family")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("Violation::Stall") && m.contains("fn kind")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("Violation::Stall") && m.contains("Display")));

    let ok = SourceFile::load(&fixture("registry_ok.rs")).unwrap();
    let mut r = Report::default();
    check_scenario_events(&ok, "registry_ok.rs", &mut r);
    check_violations(&ok, "registry_ok.rs", &mut r);
    assert!(r.clean(), "{:?}", r.findings);
}
