//! The committed tree must satisfy its own lints: this is the same
//! check CI's `cargo run -p fortika-lint` gate performs, wired into
//! `cargo test` so a violation fails fast locally too.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root");
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found"
    );

    let report = fortika_lint::run(root).expect("scan succeeds");
    assert!(
        report.clean(),
        "the committed workspace must be lint-clean; fix or waive:\n{}",
        report.render_human()
    );
    // The scan actually covered the tree (guards against a refactor
    // that silently walks the wrong directory and reports vacuous
    // success).
    assert!(
        report.files_scanned > 30,
        "only {} files scanned",
        report.files_scanned
    );
    assert!(
        report.crates_checked >= 14,
        "only {} crates checked",
        report.crates_checked
    );
}
