// Fixture: HashMap/HashSet iteration whose order escapes.

struct State {
    peers: HashMap<u64, u32>,
    seen: HashSet<u64>,
}

fn bad_method(s: &State) {
    for v in s.peers.values() {
        emit(v);
    }
}

fn bad_for_loop(s: &State) {
    for id in &s.seen {
        emit(id);
    }
}

fn bad_local() {
    let mut scratch = HashMap::new();
    scratch.insert(1, 2);
    for (k, v) in scratch.iter() {
        emit(k + v);
    }
}
