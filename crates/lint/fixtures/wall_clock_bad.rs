// Fixture: every wall-clock spelling the rule must catch, plus the
// near-misses it must not. Never compiled — scanned by tests/fixtures.rs.

use std::time::Instant;

fn bad_direct() {
    let _t = std::time::Instant::now();
    let _s = std::time::SystemTime::now();
}

fn bad_imported() {
    let _t = Instant::now();
}

fn fine() {
    // std::time::Instant in a comment must not fire.
    let _s = "std::time::Instant";
    let restart_instant = 7;
    let _ = restart_instant;
}
