// Fixture: ambient randomness — OS-seeded, unreplayable.

fn bad() {
    let _x = rand::random::<u64>();
    let mut _r = thread_rng();
}

fn fine() {
    // `operand::` must not match `rand::`.
    use operand::thing;
    let _ = thing;
}
