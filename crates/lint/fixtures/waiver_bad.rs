// Fixture: malformed waivers — each is itself a violation, because a
// waiver that silently fails to parse would un-suppress on the next
// edit (or worse, suppress nothing while looking like it does).

fn missing_reason() {
    // lint:allow(wall-clock)
    let _x = 1;
}

fn empty_reason() {
    // lint:allow(unordered-iter):
    let _y = 2;
}
