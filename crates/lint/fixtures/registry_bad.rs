// Fixture: registry gaps — a scenario event that `apply` never
// schedules and `family` lumps into a wildcard (so the coverage matrix
// never gets its row), plus a violation that `kind` conflates and the
// `Display` impl renders through a wildcard. All exactly the rot the
// registry rules exist to catch.

pub enum ScenarioEvent {
    Crash { pid: u64 },
    Restart { pid: u64 },
    Quake { magnitude: f64 },
}

impl Scenario {
    pub fn apply(&self, net: &mut Net) {
        match self.event {
            ScenarioEvent::Crash { pid } => net.crash(pid),
            ScenarioEvent::Restart { pid } => net.restart(pid),
            _ => {}
        }
    }

    pub fn heals(&self) -> bool {
        matches!(
            self.event,
            ScenarioEvent::Restart { .. } | ScenarioEvent::Quake { .. } | ScenarioEvent::Crash { .. }
        )
    }

    pub fn horizon(&self) -> u64 {
        match self.event {
            ScenarioEvent::Crash { .. } => 0,
            ScenarioEvent::Restart { .. } => 1,
            ScenarioEvent::Quake { .. } => 2,
        }
    }

    pub fn family(&self) -> &'static str {
        match self.event {
            ScenarioEvent::Crash { .. } => "crash",
            ScenarioEvent::Restart { .. } => "restart",
            _ => "other",
        }
    }
}

pub enum Violation {
    Divergence { pid: u64 },
    Stall,
}

impl Violation {
    pub fn process(&self) -> Option<u64> {
        match self {
            Violation::Divergence { pid } => Some(*pid),
            Violation::Stall => None,
        }
    }

    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Divergence { .. } => "Divergence",
            _ => "Other",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Divergence { pid } => write!(f, "divergence at {pid}"),
            _ => write!(f, "violation"),
        }
    }
}
