// Fixture: the same violation carrying a waiver with a written reason —
// suppressed, and accounted in the report's waiver list.

fn waived() {
    // lint:allow(wall-clock): coarse startup stamp, never compared across runs
    let _t = std::time::Instant::now();
}
