// Fixture: fully-wired registries — every variant named in every sink.

pub enum ScenarioEvent {
    Crash { pid: u64 },
    Restart { pid: u64 },
}

impl Scenario {
    pub fn apply(&self, net: &mut Net) {
        match self.event {
            ScenarioEvent::Crash { pid } => net.crash(pid),
            ScenarioEvent::Restart { pid } => net.restart(pid),
        }
    }

    pub fn heals(&self) -> bool {
        matches!(self.event, ScenarioEvent::Restart { .. } | ScenarioEvent::Crash { .. })
    }

    pub fn horizon(&self) -> u64 {
        match self.event {
            ScenarioEvent::Crash { .. } => 0,
            ScenarioEvent::Restart { .. } => 1,
        }
    }

    pub fn family(&self) -> &'static str {
        match self.event {
            ScenarioEvent::Crash { .. } => "crash",
            ScenarioEvent::Restart { .. } => "restart",
        }
    }
}

pub enum Violation {
    Divergence { pid: u64 },
    Stall,
}

impl Violation {
    pub fn process(&self) -> Option<u64> {
        match self {
            Violation::Divergence { pid } => Some(*pid),
            Violation::Stall => None,
        }
    }

    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Divergence { .. } => "Divergence",
            Violation::Stall => "Stall",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Divergence { pid } => write!(f, "divergence at {pid}"),
            Violation::Stall => write!(f, "stall"),
        }
    }
}
