// Fixture: iteration sites that neutralize order — collect-then-sort,
// order-insensitive reductions, waivers, and test-only code. All clean.

struct State {
    peers: HashMap<u64, u32>,
    seen: HashSet<u64>,
}

fn sorted(s: &State) -> Vec<u32> {
    let mut v: Vec<u32> = s.peers.values().copied().collect();
    v.sort();
    v
}

fn reduced(s: &State) -> usize {
    s.peers.values().filter(|v| **v > 0).count()
}

fn waived(s: &State) {
    // lint:allow(unordered-iter): the fold below is commutative
    for id in &s.seen {
        acc_xor(id);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn order_free_assert() {
        let m: HashMap<u64, u32> = HashMap::new();
        for v in m.values() {
            assert!(*v < 10);
        }
    }
}
