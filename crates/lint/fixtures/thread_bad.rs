// Fixture: OS threads — scheduling order belongs to the event queue.

fn bad_qualified() {
    std::thread::spawn(|| {});
}

fn bad_bare() {
    use std::thread;
    thread::spawn(|| {});
}
