//! Cross-validation of the paper's analytical model (§5.2) against the
//! simulator's traffic counters: the saturated steady state must produce
//! exactly the closed-form message counts, and byte volumes within the
//! constant-size-message approximation.

use fortika_core::analysis;
use fortika_core::workload::Workload;
use fortika_core::{Experiment, StackKind};

fn saturated(kind: StackKind, n: usize, size: usize) -> fortika_core::RunReport {
    // Offered load far above capacity: flow control keeps the pipeline
    // permanently full, which is §5.2's standing assumption.
    let mut exp = Experiment::builder(kind, n)
        .workload(Workload::constant_rate(4000.0, size))
        .warmup_secs(1.0)
        .measure_secs(2.0)
        .seed(5)
        .build();
    exp.run()
}

#[test]
fn modular_messages_match_section_521() {
    for n in [3usize, 7] {
        let r = saturated(StackKind::Modular, n, 8192);
        let m = r.avg_batch_m;
        let expect = analysis::modular_messages(n, m.round() as usize) as f64
            + (m - m.round()) * (n as f64 - 1.0); // linear in M between integers
        let got = r.msgs_per_instance;
        let err = (got - expect).abs() / expect;
        assert!(
            err < 0.08,
            "n={n}: modular msgs/instance {got:.2} vs analytic {expect:.2} (M={m:.2})"
        );
    }
}

#[test]
fn monolithic_messages_match_section_521() {
    for n in [3usize, 7] {
        let r = saturated(StackKind::Monolithic, n, 8192);
        let expect = analysis::monolithic_messages(n) as f64;
        let got = r.msgs_per_instance;
        let err = (got - expect).abs() / expect;
        assert!(
            err < 0.08,
            "n={n}: monolithic msgs/instance {got:.2} vs analytic {expect}"
        );
    }
}

#[test]
fn data_volumes_match_section_522() {
    let l = 16384usize;
    for n in [3usize, 7] {
        let rm = saturated(StackKind::Modular, n, l);
        let expect_mod = analysis::modular_data(n, 1, l) as f64 * rm.avg_batch_m;
        let err = (rm.bytes_per_instance - expect_mod).abs() / expect_mod;
        assert!(
            err < 0.10,
            "n={n}: modular bytes/instance {:.0} vs analytic {expect_mod:.0} (M={:.2})",
            rm.bytes_per_instance,
            rm.avg_batch_m
        );

        let rk = saturated(StackKind::Monolithic, n, l);
        let expect_mono = analysis::monolithic_data(n, 1, l) * rk.avg_batch_m;
        let err = (rk.bytes_per_instance - expect_mono).abs() / expect_mono;
        assert!(
            err < 0.12,
            "n={n}: monolithic bytes/instance {:.0} vs analytic {expect_mono:.0} (M={:.2})",
            rk.bytes_per_instance,
            rk.avg_batch_m
        );
    }
}

#[test]
fn modular_data_overhead_approaches_closed_form() {
    // Per-ordered-message byte cost ratio should approach the paper's
    // (n−1)/(n+1) overhead: 50 % at n=3, 75 % at n=7.
    for (n, expect) in [(3usize, 0.50f64), (7, 0.75)] {
        let rm = saturated(StackKind::Modular, n, 16384);
        let rk = saturated(StackKind::Monolithic, n, 16384);
        let mod_per_msg = rm.bytes_per_instance / rm.avg_batch_m;
        let mono_per_msg = rk.bytes_per_instance / rk.avg_batch_m;
        let overhead = (mod_per_msg - mono_per_msg) / mono_per_msg;
        assert!(
            (overhead - expect).abs() < 0.15,
            "n={n}: measured overhead {overhead:.3} vs closed form {expect}"
        );
        assert!(
            (analysis::modularity_overhead(n) - expect).abs() < 1e-9,
            "closed form itself"
        );
    }
}

#[test]
fn flow_control_yields_paper_batch_size() {
    // The default window is tuned so the modular stack orders ~M = 4
    // messages per consensus at n = 3 under saturation (§5.1).
    let r = saturated(StackKind::Modular, 3, 16384);
    assert!(
        (r.avg_batch_m - 4.0).abs() < 1.0,
        "modular n=3 saturated M was {:.2}, expected ≈4",
        r.avg_batch_m
    );
}

#[test]
fn cpu_saturates_above_500_msgs_like_the_paper() {
    // §5.3.2: "99% of CPU resources were used with an offered load
    // bigger than 500 msgs/s" — for the modular stack.
    let mut exp = Experiment::builder(StackKind::Modular, 3)
        .workload(Workload::constant_rate(1000.0, 16384))
        .warmup_secs(1.0)
        .measure_secs(2.0)
        .seed(5)
        .build();
    let r = exp.run();
    assert!(
        r.max_cpu_utilization > 0.90,
        "modular CPU at 1000 msg/s offered was {:.2}",
        r.max_cpu_utilization
    );
}
