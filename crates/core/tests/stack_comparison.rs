//! End-to-end behaviour of the two public stacks under the experiment
//! runner: the paper's headline directional results, metric sanity, and
//! reproducibility.

use fortika_core::workload::Workload;
use fortika_core::{Experiment, StackKind};

fn point(kind: StackKind, n: usize, load: f64, size: usize, seed: u64) -> fortika_core::RunReport {
    let mut exp = Experiment::builder(kind, n)
        .workload(Workload::constant_rate(load, size))
        .warmup_secs(1.0)
        .measure_secs(1.5)
        .seed(seed)
        .build();
    exp.run()
}

#[test]
fn low_load_throughput_equals_offered_load() {
    // Below saturation, T = T_offered for both stacks (Fig. 10's linear
    // region).
    for kind in [StackKind::Modular, StackKind::Monolithic] {
        let r = point(kind, 3, 250.0, 16384, 1);
        assert!(
            (r.throughput_msgs_per_sec - 250.0).abs() < 15.0,
            "{}: T={:.1} at offered 250",
            kind.label(),
            r.throughput_msgs_per_sec
        );
        assert_eq!(r.lost_samples, 0, "good runs lose nothing");
    }
}

#[test]
fn monolithic_beats_modular_at_high_load() {
    // The paper's headline: at high load the monolithic stack delivers
    // higher throughput and lower early latency.
    let modular = point(StackKind::Modular, 3, 3000.0, 16384, 2);
    let mono = point(StackKind::Monolithic, 3, 3000.0, 16384, 2);
    assert!(
        mono.throughput_msgs_per_sec > modular.throughput_msgs_per_sec * 1.10,
        "throughput: mono {:.0} vs modular {:.0}",
        mono.throughput_msgs_per_sec,
        modular.throughput_msgs_per_sec
    );
    assert!(
        mono.early_latency_ms.mean < modular.early_latency_ms.mean,
        "latency: mono {:.2} vs modular {:.2}",
        mono.early_latency_ms.mean,
        modular.early_latency_ms.mean
    );
}

#[test]
fn latency_grows_with_message_size() {
    // Fig. 9: early latency increases with message size.
    for kind in [StackKind::Modular, StackKind::Monolithic] {
        let small = point(kind, 3, 500.0, 1024, 3);
        let large = point(kind, 3, 500.0, 32768, 3);
        assert!(
            large.early_latency_ms.mean > small.early_latency_ms.mean,
            "{}: latency small {:.2} vs large {:.2}",
            kind.label(),
            small.early_latency_ms.mean,
            large.early_latency_ms.mean
        );
    }
}

#[test]
fn throughput_plateaus_under_overload() {
    // Fig. 10: beyond saturation, more offered load does not increase
    // throughput (flow control pins the operating point).
    let at_2x = point(StackKind::Modular, 3, 2000.0, 16384, 4);
    let at_4x = point(StackKind::Modular, 3, 4000.0, 16384, 4);
    let ratio = at_4x.throughput_msgs_per_sec / at_2x.throughput_msgs_per_sec;
    assert!(
        (0.92..1.08).contains(&ratio),
        "plateau should be flat: {:.0} vs {:.0}",
        at_2x.throughput_msgs_per_sec,
        at_4x.throughput_msgs_per_sec
    );
}

#[test]
fn n7_degrades_faster_with_size_than_n3() {
    // Fig. 11's right side: as messages grow, n=7 throughput falls
    // faster than n=3 (the proposal fan-out hits the coordinator NIC).
    let n3_small = point(StackKind::Monolithic, 3, 2000.0, 1024, 5);
    let n3_large = point(StackKind::Monolithic, 3, 2000.0, 32768, 5);
    let n7_small = point(StackKind::Monolithic, 7, 2000.0, 1024, 5);
    let n7_large = point(StackKind::Monolithic, 7, 2000.0, 32768, 5);
    let drop3 = n3_large.throughput_msgs_per_sec / n3_small.throughput_msgs_per_sec;
    let drop7 = n7_large.throughput_msgs_per_sec / n7_small.throughput_msgs_per_sec;
    assert!(
        drop7 < drop3,
        "n=7 should degrade faster: n3 {drop3:.2} vs n7 {drop7:.2}"
    );
}

#[test]
fn same_seed_reproduces_identical_reports() {
    let a = point(StackKind::Modular, 3, 800.0, 4096, 42);
    let b = point(StackKind::Modular, 3, 800.0, 4096, 42);
    assert_eq!(a.delivered_total, b.delivered_total);
    assert_eq!(a.msgs_in_window, b.msgs_in_window);
    assert!((a.early_latency_ms.mean - b.early_latency_ms.mean).abs() < 1e-12);
    assert!((a.throughput_msgs_per_sec - b.throughput_msgs_per_sec).abs() < 1e-12);
}

#[test]
fn replicated_runs_produce_confidence_intervals() {
    let mut exp = Experiment::builder(StackKind::Monolithic, 3)
        .workload(Workload::constant_rate(500.0, 4096))
        .warmup_secs(0.5)
        .measure_secs(1.0)
        .build();
    let summary = exp.run_replicated(&[1, 2, 3]);
    assert_eq!(summary.runs.len(), 3);
    assert!(summary.early_latency_ms.mean > 0.0);
    assert!(summary.early_latency_ms.half_width >= 0.0);
    assert!(summary.throughput.mean > 450.0 && summary.throughput.mean < 550.0);
    // Different seeds actually produce different runs.
    let t: Vec<u64> = summary.runs.iter().map(|r| r.msgs_in_window).collect();
    assert!(t[0] != t[1] || t[1] != t[2], "seeds should differ: {t:?}");
}

#[test]
fn ablation_switches_change_the_wire_economy() {
    use fortika_core::{MonoOptimizations, StackConfig};
    let run_with = |opts: MonoOptimizations| {
        let mut exp = Experiment::builder(StackKind::Monolithic, 3)
            .workload(Workload::constant_rate(3000.0, 8192))
            .stack_config(StackConfig {
                mono_opts: opts,
                ..StackConfig::default()
            })
            .warmup_secs(1.0)
            .measure_secs(1.5)
            .seed(6)
            .build();
        exp.run()
    };
    let all = run_with(MonoOptimizations::all());
    let none = run_with(MonoOptimizations::none());
    assert!(
        all.msgs_per_instance < none.msgs_per_instance,
        "optimizations must reduce msgs/instance: {:.1} vs {:.1}",
        all.msgs_per_instance,
        none.msgs_per_instance
    );
    assert!(
        all.throughput_msgs_per_sec >= none.throughput_msgs_per_sec,
        "optimizations must not hurt throughput"
    );
}
