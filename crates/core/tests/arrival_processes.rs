//! The Poisson-arrival extension: same mean load, burstier spacing.

use fortika_core::workload::Workload;
use fortika_core::{Experiment, StackKind};

fn run(workload: Workload, seed: u64) -> fortika_core::RunReport {
    let mut exp = Experiment::builder(StackKind::Monolithic, 3)
        .workload(workload)
        .warmup_secs(1.0)
        .measure_secs(2.0)
        .seed(seed)
        .build();
    exp.run()
}

#[test]
fn poisson_sustains_the_same_mean_rate() {
    let constant = run(Workload::constant_rate(400.0, 1024), 8);
    let poisson = run(Workload::poisson(400.0, 1024), 8);
    // Same offered load below saturation: both deliver ≈400 msg/s.
    assert!((constant.throughput_msgs_per_sec - 400.0).abs() < 25.0);
    assert!(
        (poisson.throughput_msgs_per_sec - 400.0).abs() < 40.0,
        "poisson throughput {:.1}",
        poisson.throughput_msgs_per_sec
    );
    assert_eq!(constant.lost_samples, 0);
    assert_eq!(poisson.lost_samples, 0);
}

#[test]
fn poisson_has_heavier_tail_than_constant_rate() {
    let constant = run(Workload::constant_rate(600.0, 4096), 9);
    let poisson = run(Workload::poisson(600.0, 4096), 9);
    // Burstiness shows up in the tail: p99 grows relative to the median
    // much more under Poisson arrivals.
    let spread_const = constant.early_latency_ms.p99 / constant.early_latency_ms.p50;
    let spread_poisson = poisson.early_latency_ms.p99 / poisson.early_latency_ms.p50;
    assert!(
        spread_poisson > spread_const,
        "p99/p50: poisson {spread_poisson:.2} vs constant {spread_const:.2}"
    );
}

#[test]
fn percentiles_are_ordered_and_bracket_the_mean() {
    let r = run(Workload::constant_rate(500.0, 2048), 10);
    let l = &r.early_latency_ms;
    assert!(l.min <= l.p50 && l.p50 <= l.p90 && l.p90 <= l.p99);
    assert!(l.p99 <= l.max * 1.02, "p99 {} vs max {}", l.p99, l.max);
    assert!(l.p50 > 0.0);
    // For these unimodal latency distributions the mean sits between
    // the median and the p99.
    assert!(l.mean >= l.p50 * 0.8 && l.mean <= l.p99);
}

#[test]
fn poisson_runs_are_seed_deterministic() {
    let a = run(Workload::poisson(300.0, 512), 11);
    let b = run(Workload::poisson(300.0, 512), 11);
    assert_eq!(a.delivered_total, b.delivered_total);
    assert!((a.early_latency_ms.mean - b.early_latency_ms.mean).abs() < 1e-12);
}
