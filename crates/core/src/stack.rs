//! Stack construction: the two atomic broadcast implementations, plus
//! the shared flow-control microprotocol.

use fortika_abcast::{AbcastConfig, AbcastModule};
use fortika_consensus::{ConsensusConfig, ConsensusModule};
use fortika_fd::{FdConfig, FdModule, HeartbeatFd, OverlayFd, SuspicionWindow};
use fortika_framework::CompositeStack;
use fortika_mono::{MonoConfig, MonoNode, MonoOptimizations};
use fortika_net::{
    AppStateFactory, Cluster, Dissemination, Node, NodeFactory, ProcessId, StableStore,
};
use fortika_rbcast::{RbcastConfig, RbcastModule};
use fortika_sim::VTime;

pub use crate::flow::FlowControlModule;

/// Which of the paper's two implementations to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackKind {
    /// Microprotocol composition: flow control / abcast / consensus /
    /// rbcast / failure detector, each a black box to its neighbours.
    Modular,
    /// Everything merged in one module, optimizations O1–O3 enabled.
    Monolithic,
}

impl StackKind {
    /// Short lowercase label for tables (`"modular"`, `"monolithic"`).
    pub fn label(&self) -> &'static str {
        match self {
            StackKind::Modular => "modular",
            StackKind::Monolithic => "monolithic",
        }
    }
}

/// Protocol-level tunables shared by both stacks.
#[derive(Debug, Clone)]
pub struct StackConfig {
    /// Flow-control window (outstanding own messages per process). The
    /// default of 3 yields the paper's ~M = 4 messages ordered per
    /// consensus instance at n = 3 under saturation.
    pub window: usize,
    /// Failure detector parameters (identical in both stacks).
    pub fd: FdConfig,
    /// Monolithic optimization switches (ablation benches flip these).
    pub mono_opts: MonoOptimizations,
    /// Modular stack: consensus module configuration.
    pub consensus: ConsensusConfig,
    /// Modular stack: reliable broadcast configuration.
    pub rbcast: RbcastConfig,
    /// Modular stack: abcast module configuration.
    pub abcast: AbcastConfig,
    /// Log-compaction snapshot cadence, applied to **both** stacks
    /// (overrides the per-stack `snapshot_interval` fields): fold the
    /// decided prefix into a snapshot every this many instances, and
    /// whenever the decision cache would otherwise evict an uncompacted
    /// decision. `0` disables snapshots — deep rejoins then stall once
    /// the prefix outgrows `decision_cache` (`*.join_unservable`).
    pub snapshot_interval: u64,
    /// Decision cache depth, applied to both stacks (overrides the
    /// per-stack `decision_cache` fields).
    pub decision_cache: usize,
    /// Windowed-sequencer depth α, applied to **both** stacks
    /// (overrides the per-stack `pipeline_depth` fields): how many
    /// consensus instances each process keeps in flight concurrently.
    /// `1` (the default) reproduces the paper's strictly sequential
    /// instance execution; larger depths overlap decision round-trips
    /// while decisions are still applied strictly in instance order.
    /// The effective batch supply is bounded by the flow-control
    /// [`window`](StackConfig::window): a deep pipeline only fills when
    /// the flow windows offer enough distinct messages for α disjoint
    /// batches.
    pub pipeline_depth: usize,
    /// How the modular stack disseminates batch payloads.
    ///
    /// `Direct` (the default) is the seed-faithful diffusion path —
    /// byte-identical benches. `Ring`/`Tree` offload payloads onto a
    /// dissemination topology and run consensus on value-id-sized
    /// descriptors (see `docs/DISSEMINATION.md`). The monolithic stack
    /// already targets its coordinator directly and ignores the knob.
    /// Incompatible with [`app_state`](StackConfig::app_state): the
    /// snapshot fold sees descriptor batches under an offloading
    /// strategy, not application payloads.
    pub dissemination: Dissemination,
    /// Optional application-state hook folded into snapshots: each
    /// process gets its own state machine, advanced on every delivered
    /// message, encoded into snapshots and restored on install (see
    /// `examples/replicated_kv.rs`).
    pub app_state: Option<AppStateFactory>,
    /// **Test-only fault hook** (debug builds only), applied to both
    /// stacks: skip persisting CT vote records to stable storage. This
    /// plants the classic lost-vote recovery bug — a process can ack a
    /// round, crash, revive without its lock and let a different value
    /// win — which the fuzz campaign must find and the counterexample
    /// minimizer must shrink (`tests/minimizer.rs`). A no-op in release
    /// builds.
    pub skip_vote_persist: bool,
    /// Initial voting member count for reconfiguration runs, applied to
    /// both stacks. `0` (the default) means "every process": the whole
    /// group votes and dynamic membership is dormant. Reconfiguration
    /// runs set this below the cluster capacity so processes
    /// `initial_members..n` start as learners (standby capacity that a
    /// log-decided `Add` can later promote to voters).
    pub initial_members: usize,
    /// Activation offset of log-decided reconfigurations, applied to
    /// both stacks: a change decided at instance `d` governs instances
    /// `d + reconfig_offset` on. Must stay ≥ the pipeline depth so no
    /// in-flight instance can be governed by a not-yet-replayed change.
    pub reconfig_offset: u64,
    /// **Test-only fault hook** (debug builds only), applied to both
    /// stacks: ignore decided reconfigurations entirely, so the process
    /// keeps voting with the initial configuration's quorum math and
    /// never reports config activations. This plants the stale-quorum
    /// reconfiguration bug the config-aware oracle must detect
    /// (`tests/reconfig_oracle.rs`). A no-op in release builds.
    pub skip_config_fence: bool,
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig {
            window: 3,
            fd: FdConfig::default(),
            mono_opts: MonoOptimizations::all(),
            consensus: ConsensusConfig::default(),
            rbcast: RbcastConfig::default(),
            abcast: AbcastConfig::default(),
            snapshot_interval: 256,
            decision_cache: 1024,
            pipeline_depth: 1,
            dissemination: Dissemination::Direct,
            app_state: None,
            skip_vote_persist: false,
            initial_members: 0,
            reconfig_offset: 8,
            skip_config_fence: false,
        }
    }
}

/// Builds one process's stack of the requested kind.
pub fn build_node(kind: StackKind, n: usize, me: ProcessId, cfg: &StackConfig) -> Box<dyn Node> {
    build_node_with_windows(kind, n, me, cfg, Vec::new())
}

/// Builds one process's stack with scripted false-suspicion windows
/// overlaid on its failure detector (the `fortika-chaos` hook; an empty
/// `windows` is exactly [`build_node`]).
pub fn build_node_with_windows(
    kind: StackKind,
    n: usize,
    me: ProcessId,
    cfg: &StackConfig,
    windows: Vec<SuspicionWindow>,
) -> Box<dyn Node> {
    let heartbeat = HeartbeatFd::new(n, me, cfg.fd.clone());
    // Only chaos runs pay for the overlay: windows relevant to this
    // process wrap the detector, everything else runs the bare core.
    let wraps = windows.iter().any(|w| w.observer == me);
    let app = cfg.app_state.as_ref().map(AppStateFactory::make);
    match kind {
        StackKind::Modular => {
            let fd_module: Box<dyn fortika_framework::Microprotocol> = if wraps {
                Box::new(FdModule::new(OverlayFd::new(n, me, heartbeat, windows)))
            } else {
                Box::new(FdModule::new(heartbeat))
            };
            Box::new(CompositeStack::new(vec![
                Box::new(FlowControlModule::new(cfg.window)),
                Box::new(AbcastModule::new(abcast_config(cfg))),
                Box::new(ConsensusModule::new(consensus_config(cfg)).with_app(app)),
                Box::new(RbcastModule::new(cfg.rbcast.clone())),
                fd_module,
            ]))
        }
        StackKind::Monolithic => {
            let fd: Box<dyn fortika_fd::FailureDetector> = if wraps {
                Box::new(OverlayFd::new(n, me, heartbeat, windows))
            } else {
                Box::new(heartbeat)
            };
            Box::new(MonoNode::new(mono_config(cfg), fd).with_app(app))
        }
    }
}

/// The modular abcast configuration with the stack-wide pipeline,
/// dissemination and membership knobs applied.
fn abcast_config(cfg: &StackConfig) -> AbcastConfig {
    assert!(
        cfg.app_state.is_none() || !cfg.dissemination.offloads(),
        "app_state folds application payloads and is incompatible with \
         offloaded dissemination (consensus orders descriptors there)"
    );
    AbcastConfig {
        pipeline_depth: cfg.pipeline_depth.max(1) as u64,
        dissemination: cfg.dissemination,
        initial_members: cfg.initial_members,
        ..cfg.abcast.clone()
    }
}

/// The modular consensus configuration with the stack-wide snapshot and
/// cache knobs applied.
fn consensus_config(cfg: &StackConfig) -> ConsensusConfig {
    ConsensusConfig {
        snapshot_interval: cfg.snapshot_interval,
        decision_cache: cfg.decision_cache,
        pipeline_depth: cfg.pipeline_depth.max(1) as u64,
        skip_vote_persist: cfg.skip_vote_persist,
        initial_members: cfg.initial_members,
        reconfig_offset: cfg.reconfig_offset,
        skip_config_fence: cfg.skip_config_fence,
        ..cfg.consensus.clone()
    }
}

/// The monolithic configuration with the stack-wide knobs applied.
fn mono_config(cfg: &StackConfig) -> MonoConfig {
    MonoConfig {
        opts: cfg.mono_opts,
        window: cfg.window,
        snapshot_interval: cfg.snapshot_interval,
        decision_cache: cfg.decision_cache,
        pipeline_depth: cfg.pipeline_depth.max(1),
        skip_vote_persist: cfg.skip_vote_persist,
        initial_members: cfg.initial_members,
        reconfig_offset: cfg.reconfig_offset,
        skip_config_fence: cfg.skip_config_fence,
        ..MonoConfig::default()
    }
}

/// Builds the whole cluster's nodes (index = process id).
pub fn build_nodes(kind: StackKind, n: usize, cfg: &StackConfig) -> Vec<Box<dyn Node>> {
    ProcessId::all(n)
        .map(|me| build_node(kind, n, me, cfg))
        .collect()
}

/// Builds the whole cluster's nodes with the scenario's scripted
/// suspicion windows wired into every failure detector.
pub fn build_nodes_with_windows(
    kind: StackKind,
    n: usize,
    cfg: &StackConfig,
    windows: &[SuspicionWindow],
) -> Vec<Box<dyn Node>> {
    ProcessId::all(n)
        .map(|me| build_node_with_windows(kind, n, me, cfg, windows.to_vec()))
        .collect()
}

/// Builds a **revived** process's stack (crash-recovery): the failure
/// detector is anchored at the restart instant `now` instead of time
/// zero, and each protocol layer resumes its durable state — consensus
/// vote records, the decided watermark, the rbcast sequence counter —
/// out of `stable`. Everything else starts fresh, and the stack
/// announces its rejoin to pull the decided prefix from peers.
pub fn build_restarted_node(
    kind: StackKind,
    n: usize,
    me: ProcessId,
    cfg: &StackConfig,
    windows: &[SuspicionWindow],
    now: VTime,
    stable: &StableStore,
) -> Box<dyn Node> {
    let heartbeat = HeartbeatFd::new_anchored(n, me, cfg.fd.clone(), now);
    let wraps = windows.iter().any(|w| w.observer == me);
    let app = cfg.app_state.as_ref().map(AppStateFactory::make);
    match kind {
        StackKind::Modular => {
            let fd_module: Box<dyn fortika_framework::Microprotocol> = if wraps {
                Box::new(FdModule::new(OverlayFd::new(
                    n,
                    me,
                    heartbeat,
                    windows.to_vec(),
                )))
            } else {
                Box::new(FdModule::new(heartbeat))
            };
            Box::new(CompositeStack::new(vec![
                Box::new(FlowControlModule::new(cfg.window)),
                Box::new(AbcastModule::resume(abcast_config(cfg), stable)),
                Box::new(ConsensusModule::resume(consensus_config(cfg), stable).with_app(app)),
                Box::new(RbcastModule::resume(cfg.rbcast.clone(), stable)),
                fd_module,
            ]))
        }
        StackKind::Monolithic => {
            let fd: Box<dyn fortika_fd::FailureDetector> = if wraps {
                Box::new(OverlayFd::new(n, me, heartbeat, windows.to_vec()))
            } else {
                Box::new(heartbeat)
            };
            Box::new(MonoNode::resume(mono_config(cfg), fd, stable).with_app(app))
        }
    }
}

/// A [`NodeFactory`] rebuilding stacks of the given kind/config on
/// restart — register it with [`Cluster::set_node_factory`] (or use
/// [`install_restart_factory`]) before running scenarios that contain
/// `ScenarioEvent::Restart`.
pub fn node_factory(
    kind: StackKind,
    n: usize,
    cfg: StackConfig,
    windows: Vec<SuspicionWindow>,
) -> NodeFactory {
    Box::new(move |me, now, stable| build_restarted_node(kind, n, me, &cfg, &windows, now, stable))
}

/// Convenience: registers a restart factory matching `kind`/`cfg` on
/// `cluster` (see [`node_factory`]).
pub fn install_restart_factory(
    cluster: &mut Cluster,
    kind: StackKind,
    cfg: &StackConfig,
    windows: &[SuspicionWindow],
) {
    let n = cluster.n();
    cluster.set_node_factory(node_factory(kind, n, cfg.clone(), windows.to_vec()));
}
