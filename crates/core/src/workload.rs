//! Workload generation and measurement.
//!
//! The paper's workload (§5.1) is *symmetric*: all `n` processes abcast
//! fixed-size messages at a constant rate, for a global offered load
//! `T_offered` (msgs/s). Abcast is a blocking call: when flow control
//! closes, the generator waits — the offered load is the configured
//! attempt rate, while the measured throughput plateaus at capacity.
//!
//! [`WorkloadDriver`] implements the cluster [`Harness`]: it submits
//! requests on per-process ticks, retries blocked submissions on
//! `app_ready`, and collects the paper's two metrics —
//!
//! * **early latency** `L = (min_i t_i) − t0` per message, with `t0` the
//!   completion of the (admitted) `abcast` call and `t_i` the adeliver
//!   instants, and
//! * **throughput** `T = (1/n) Σ r_i`, the mean adeliver rate.

use std::collections::HashMap;

use bytes::Bytes;
use fortika_net::{Admission, AppMsg, AppRequest, ClusterApi, Delivery, Harness, MsgId, ProcessId};
use fortika_sim::stats::{Histogram, Welford};
use fortika_sim::{DetRng, VDur, VTime};

/// How submission instants are spaced at each sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Fixed inter-arrival period — the paper's workload (§5.1).
    ConstantRate,
    /// Exponentially distributed gaps with the same mean — a Poisson
    /// process, the common open-system model (extension; not in the
    /// paper, useful to check the findings aren't artifacts of perfectly
    /// regular arrivals).
    Poisson,
}

/// A symmetric workload: all `n` processes submit at the same rate.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Global offered load in messages per second (across all senders).
    pub offered_load: f64,
    /// Payload size in bytes (the paper's message size `l`/`s`).
    pub msg_size: usize,
    /// Arrival spacing (constant by default).
    pub arrivals: ArrivalProcess,
}

impl Workload {
    /// A symmetric workload offering `offered_load` msgs/s in total,
    /// each of `msg_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics unless `offered_load` is positive and finite.
    pub fn constant_rate(offered_load: f64, msg_size: usize) -> Self {
        assert!(
            offered_load.is_finite() && offered_load > 0.0,
            "offered load must be positive"
        );
        Workload {
            offered_load,
            msg_size,
            arrivals: ArrivalProcess::ConstantRate,
        }
    }

    /// Like [`constant_rate`](Self::constant_rate), but with Poisson
    /// (exponential-gap) arrivals of the same mean rate.
    pub fn poisson(offered_load: f64, msg_size: usize) -> Self {
        Workload {
            arrivals: ArrivalProcess::Poisson,
            ..Workload::constant_rate(offered_load, msg_size)
        }
    }

    /// Per-process submission period for a group of size `n`.
    pub fn period(&self, n: usize) -> VDur {
        VDur::from_secs_f64(n as f64 / self.offered_load)
    }
}

struct SenderState {
    next_seq: u64,
    blocked: Option<AppMsg>,
    last_tick: VTime,
}

struct PendingMsg {
    t0: VTime,
    earliest: VTime,
    earliest_pid: ProcessId,
    count: usize,
}

/// One finalized early-latency observation, kept only when the sample
/// log is enabled (tracing runs): which message, when its `abcast` call
/// completed, and where/when it was first adelivered. The trace
/// decomposition anchors its per-decision window on these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySample {
    /// The sampled message.
    pub id: MsgId,
    /// Completion instant of the admitted `abcast` call.
    pub t0: VTime,
    /// Earliest adeliver instant across all processes.
    pub earliest: VTime,
    /// Process that adelivered first.
    pub earliest_pid: ProcessId,
}

/// Measurement window results for one run.
#[derive(Debug, Clone)]
pub struct WindowStats {
    /// Early-latency samples (milliseconds), over messages admitted in
    /// the window.
    pub latency_ms: Welford,
    /// Full early-latency distribution (milliseconds).
    pub latency_hist: Histogram,
    /// Adeliver events per process with delivery time inside the window.
    pub delivered_per_proc: Vec<u64>,
    /// Messages admitted (abcast completed) inside the window.
    pub admitted: u64,
    /// Admitted-in-window messages never observed delivered by run end.
    pub lost_samples: u64,
    /// Per-message latency observations (empty unless the sample log
    /// was enabled via [`WorkloadDriver::enable_sample_log`]).
    pub samples: Vec<LatencySample>,
}

/// Drives the symmetric workload and records the paper's metrics.
pub struct WorkloadDriver {
    n: usize,
    period: VDur,
    arrivals: ArrivalProcess,
    rng: DetRng,
    window_start: VTime,
    window_end: VTime,
    senders: Vec<SenderState>,
    pending: HashMap<MsgId, PendingMsg>,
    latency_ms: Welford,
    latency_hist: Histogram,
    delivered_per_proc: Vec<u64>,
    admitted: u64,
    payload: Bytes,
    /// Accepted ids not yet handed to [`drain_accepted_ids`]
    /// (consumed by the runner's oracle tap; drained either way so it
    /// stays small).
    ///
    /// [`drain_accepted_ids`]: Self::drain_accepted_ids
    accepted_ids: Vec<MsgId>,
    /// `Some` when per-message observations should be kept for the
    /// trace decomposition (None on plain benchmark runs: no per-sample
    /// allocation, identical behaviour otherwise).
    sample_log: Option<Vec<LatencySample>>,
}

impl WorkloadDriver {
    /// Creates a driver measuring over `[window_start, window_end]`.
    pub fn new(workload: Workload, n: usize, window_start: VTime, window_end: VTime) -> Self {
        Self::with_seed(workload, n, window_start, window_end, 0x5EED)
    }

    /// Like [`new`](Self::new) with an explicit RNG seed (only used by
    /// the Poisson arrival process).
    pub fn with_seed(
        workload: Workload,
        n: usize,
        window_start: VTime,
        window_end: VTime,
        seed: u64,
    ) -> Self {
        let period = workload.period(n);
        let payload = Bytes::from(vec![0xABu8; workload.msg_size]);
        WorkloadDriver {
            n,
            period,
            arrivals: workload.arrivals,
            rng: DetRng::derive(seed, 0xA11D),
            window_start,
            window_end,
            senders: (0..n)
                .map(|_| SenderState {
                    next_seq: 0,
                    blocked: None,
                    last_tick: VTime::ZERO,
                })
                .collect(),
            pending: HashMap::new(),
            latency_ms: Welford::new(),
            latency_hist: Histogram::new(),
            delivered_per_proc: vec![0; n],
            admitted: 0,
            payload,
            accepted_ids: Vec::new(),
            sample_log: None,
        }
    }

    /// Keeps one [`LatencySample`] per in-window message so the runner
    /// can decompose each decision's latency against the event trace.
    /// Off by default; plain benchmark runs never pay for it.
    pub fn enable_sample_log(&mut self) {
        self.sample_log = Some(Vec::new());
    }

    /// Records a finalized in-window observation when the log is on.
    fn log_sample(&mut self, id: MsgId, p: &PendingMsg) {
        if let Some(log) = self.sample_log.as_mut() {
            log.push(LatencySample {
                id,
                t0: p.t0,
                earliest: p.earliest,
                earliest_pid: p.earliest_pid,
            });
        }
    }

    /// Drains the ids accepted since the last call (the runner's oracle
    /// tap feeds these to the integrity checker).
    pub fn drain_accepted_ids(&mut self) -> std::vec::Drain<'_, MsgId> {
        self.accepted_ids.drain(..)
    }

    /// The next inter-arrival gap for one sender.
    fn next_gap(&mut self) -> VDur {
        match self.arrivals {
            ArrivalProcess::ConstantRate => self.period,
            ArrivalProcess::Poisson => self.rng.exponential(self.period),
        }
    }

    /// Schedules the first tick of every sender; phases are staggered so
    /// the symmetric load does not arrive in synchronized bursts.
    pub fn start(&mut self, cluster: &mut fortika_net::Cluster) {
        for p in 0..self.n {
            let phase = (self.period / self.n as u64) * p as u64;
            let at = VTime::ZERO + VDur::micros(10) + phase;
            cluster.schedule_tick(at, p as u64);
        }
    }

    /// Finalizes samples and returns the window statistics. Messages
    /// delivered at least once contribute their earliest observed
    /// delivery; admitted messages never delivered are counted lost.
    pub fn finish(mut self) -> WindowStats {
        let mut lost = 0;
        let drained: Vec<(MsgId, PendingMsg)> = self.pending.drain().collect();
        for (id, p) in drained {
            let in_window = p.t0 >= self.window_start && p.t0 <= self.window_end;
            if p.count > 0 {
                if in_window {
                    let ms = p.earliest.since(p.t0).as_millis_f64();
                    self.latency_ms.add(ms);
                    self.latency_hist.record(ms);
                    self.log_sample(id, &p);
                }
            } else if in_window {
                // Admitted during the window but never observed delivered
                // by the end of the drain: a real loss (or a too-short
                // drain) worth surfacing.
                lost += 1;
            }
        }
        WindowStats {
            latency_ms: self.latency_ms,
            latency_hist: self.latency_hist,
            delivered_per_proc: self.delivered_per_proc,
            admitted: self.admitted,
            lost_samples: lost,
            samples: self.sample_log.unwrap_or_default(),
        }
    }

    fn submit(&mut self, api: &mut ClusterApi<'_>, pid: ProcessId, msg: AppMsg) -> bool {
        let (adm, t0) = api.submit(pid, AppRequest::Abcast(msg.clone()));
        match adm {
            Admission::Accepted => {
                if t0 >= self.window_start && t0 <= self.window_end {
                    self.admitted += 1;
                }
                self.accepted_ids.push(msg.id);
                self.pending.insert(
                    msg.id,
                    PendingMsg {
                        t0,
                        earliest: VTime::MAX,
                        earliest_pid: pid,
                        count: 0,
                    },
                );
                true
            }
            Admission::Blocked => {
                self.senders[pid.index()].blocked = Some(msg);
                false
            }
        }
    }

    fn next_msg(&mut self, pid: ProcessId) -> AppMsg {
        let seq = self.senders[pid.index()].next_seq;
        self.senders[pid.index()].next_seq += 1;
        AppMsg::new(MsgId::new(pid, seq), self.payload.clone())
    }

    fn schedule_next(&mut self, api: &mut ClusterApi<'_>, pid: ProcessId) {
        let gap = self.next_gap();
        let s = &mut self.senders[pid.index()];
        // A blocking abcast call does not "catch up" on missed periods.
        let at = (s.last_tick + gap).max(api.now());
        s.last_tick = at;
        api.schedule_tick(at, pid.index() as u64);
    }
}

impl Harness for WorkloadDriver {
    fn on_tick(&mut self, api: &mut ClusterApi<'_>, tick: u64, at: VTime) {
        let pid = ProcessId(tick as u16);
        if self.senders[pid.index()].blocked.is_some() {
            return; // still blocked: the generator is inside abcast()
        }
        self.senders[pid.index()].last_tick = at;
        let msg = self.next_msg(pid);
        if self.submit(api, pid, msg) {
            self.schedule_next(api, pid);
        }
        // If blocked, ticking resumes on app_ready.
    }

    fn on_app_ready(&mut self, api: &mut ClusterApi<'_>, pid: ProcessId, _at: VTime) {
        if pid.index() >= self.n {
            return; // standby process (reconfiguration run): not a sender
        }
        if let Some(msg) = self.senders[pid.index()].blocked.take() {
            if self.submit(api, pid, msg) {
                self.schedule_next(api, pid);
            }
        }
    }

    fn on_restart(&mut self, api: &mut ClusterApi<'_>, pid: ProcessId, _at: VTime) {
        if pid.index() >= self.n {
            return; // standby process (reconfiguration run): not a sender
        }
        // The generator was blocked inside abcast() when the process
        // died: retry against the revived stack (fresh flow window) so
        // the sender's tick chain resumes.
        if let Some(msg) = self.senders[pid.index()].blocked.take() {
            if self.submit(api, pid, msg) {
                self.schedule_next(api, pid);
            }
        }
    }

    fn on_delivery(&mut self, _api: &mut ClusterApi<'_>, pid: ProcessId, d: Delivery, at: VTime) {
        if pid.index() >= self.n {
            // Standby / late-added process: it delivers (and the oracle
            // audits it), but the paper's per-sender metrics cover the
            // initial group only.
            return;
        }
        if at >= self.window_start && at <= self.window_end {
            self.delivered_per_proc[pid.index()] += 1;
        }
        if let Some(p) = self.pending.get_mut(&d.msg) {
            p.count += 1;
            if at < p.earliest {
                p.earliest = at;
                p.earliest_pid = pid;
            }
            if p.count == self.n {
                // Everyone delivered: finalize the latency sample.
                let p = self.pending.remove(&d.msg).expect("entry exists");
                if p.t0 >= self.window_start && p.t0 <= self.window_end {
                    let ms = p.earliest.since(p.t0).as_millis_f64();
                    self.latency_ms.add(ms);
                    self.latency_hist.record(ms);
                    self.log_sample(d.msg, &p);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_splits_load_across_senders() {
        let w = Workload::constant_rate(1000.0, 64);
        // 1000 msgs/s over 4 senders: each sends every 4 ms.
        assert_eq!(w.period(4), VDur::millis(4));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_load_rejected() {
        let _ = Workload::constant_rate(0.0, 64);
    }

    #[test]
    fn driver_counts_window_admissions_only() {
        let w = Workload::constant_rate(100.0, 8);
        let driver = WorkloadDriver::new(
            w,
            2,
            VTime::ZERO + VDur::secs(1),
            VTime::ZERO + VDur::secs(2),
        );
        let stats = driver.finish();
        assert_eq!(stats.admitted, 0);
        assert_eq!(stats.latency_ms.count(), 0);
        assert_eq!(stats.lost_samples, 0);
    }
}
