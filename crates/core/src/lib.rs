//! # fortika-core — the public atomic-broadcast stacks
//!
//! This crate assembles the two implementations the paper compares and
//! provides everything needed to reproduce its evaluation:
//!
//! * [`StackKind`] / [`build_nodes`] — the modular microprotocol stack
//!   and the monolithic merged stack, both over the same algorithms,
//!   flow control and failure detector.
//! * [`workload`] — the symmetric constant-rate workload of §5.1 and the
//!   measurement driver (early latency, throughput).
//! * [`Experiment`] — one-call experiment runner with warm-up,
//!   stationary measurement window, CPU-utilization tracking and
//!   multi-seed 95 % confidence intervals.
//! * [`analysis`] — the closed-form message/byte counts of §5.2.
//!
//! # Example: compare the two stacks at one operating point
//!
//! ```
//! use fortika_core::{Experiment, StackKind};
//! use fortika_core::workload::Workload;
//!
//! let workload = Workload::constant_rate(1000.0, 1024);
//! let mut modular = Experiment::builder(StackKind::Modular, 3)
//!     .workload(workload.clone())
//!     .warmup_secs(0.5)
//!     .measure_secs(0.5)
//!     .build();
//! let mut mono = Experiment::builder(StackKind::Monolithic, 3)
//!     .workload(workload)
//!     .warmup_secs(0.5)
//!     .measure_secs(0.5)
//!     .build();
//! let a = modular.run();
//! let b = mono.run();
//! assert!(a.delivered_total > 0 && b.delivered_total > 0);
//! // The monolithic stack sends fewer messages per ordered batch.
//! assert!(b.msgs_per_instance < a.msgs_per_instance);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod flow;
pub mod fuzz;
pub mod runner;
pub mod stack;
pub mod workload;

pub use flow::{FlowControlModule, FLOW_MODULE_ID};
pub use fuzz::{fuzz_runner, run_fuzz_scenario};
pub use runner::{Experiment, ExperimentBuilder, LatencySummary, RunReport, Summary};
pub use stack::{
    build_node, build_node_with_windows, build_nodes, build_nodes_with_windows,
    build_restarted_node, install_restart_factory, node_factory, StackConfig, StackKind,
};
pub use workload::{ArrivalProcess, LatencySample, Workload, WorkloadDriver};

// Re-export the pieces callers need to configure experiments without
// importing every workspace crate.
pub use fortika_chaos::{
    minimize, CampaignReport, ChaosProfile, CoverageReport, DeliveryOracle, FailingRun,
    FuzzCampaign, FuzzConfig, MinimizeReport, OracleReport, RunOutcome, Scenario, StopReason,
    Violation,
};
pub use fortika_fd::FdConfig;
pub use fortika_mono::MonoOptimizations;
pub use fortika_net::{
    AppState, AppStateFactory, ClusterConfig, CostModel, NetModel, Snapshot, SnapshotStamp,
};
pub use fortika_trace::{
    ComponentSummary, DecompSample, LatencyDecomposition, Trace, TraceConfig, TraceData, TraceEvent,
};
