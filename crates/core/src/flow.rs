//! The flow-control microprotocol (top of the modular stack).
//!
//! The paper (§5.1) uses one flow-control mechanism in both stacks: a
//! bound on each process's un-adelivered own messages, tuned so ~M = 4
//! messages are ordered per consensus instance. The window logic itself
//! is [`FlowWindow`] (shared with the monolithic node, which embeds it);
//! this module is its adapter into the composition framework.

use fortika_framework::{Event, EventKind, FrameworkCtx, Microprotocol, ModuleId};
use fortika_net::flow::FlowWindow;
use fortika_net::{Admission, AppRequest};

/// Wire demux id of the flow-control module (it sends no messages, but
/// every module needs a unique id).
pub const FLOW_MODULE_ID: ModuleId = 5;

/// Flow-control microprotocol: admits or blocks application requests
/// and reopens the tap when own messages get adelivered.
pub struct FlowControlModule {
    window: FlowWindow,
}

impl FlowControlModule {
    /// Creates the module with the given window size.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        FlowControlModule {
            window: FlowWindow::new(window),
        }
    }

    /// Currently outstanding own messages.
    pub fn outstanding(&self) -> usize {
        self.window.outstanding()
    }
}

impl Microprotocol for FlowControlModule {
    fn name(&self) -> &'static str {
        "flow-control"
    }

    fn module_id(&self) -> ModuleId {
        FLOW_MODULE_ID
    }

    fn subscriptions(&self) -> &'static [EventKind] {
        &[EventKind::Adelivered]
    }

    fn on_event(&mut self, ctx: &mut FrameworkCtx<'_, '_>, ev: &Event) {
        if let Event::Adelivered(ids) = ev {
            let own = ids.iter().filter(|id| id.sender == ctx.pid()).count();
            if self.window.release(own) {
                ctx.app_ready();
            }
        }
    }

    fn on_request(
        &mut self,
        ctx: &mut FrameworkCtx<'_, '_>,
        req: &AppRequest,
    ) -> Option<Admission> {
        let AppRequest::Abcast(m) = req;
        if self.window.try_acquire() {
            ctx.bump("flow.admitted", 1);
            ctx.raise(Event::AbcastRequest(m.clone()));
            Some(Admission::Accepted)
        } else {
            ctx.bump("flow.blocked", 1);
            Some(Admission::Blocked)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use fortika_net::{AppMsg, MsgId, ProcessId};

    #[test]
    fn outstanding_tracks_window() {
        let fc = FlowControlModule::new(3);
        assert_eq!(fc.outstanding(), 0);
        let _ = AppMsg::new(MsgId::new(ProcessId(0), 0), Bytes::new());
    }

    #[test]
    #[should_panic(expected = "must admit something")]
    fn zero_window_rejected() {
        let _ = FlowControlModule::new(0);
    }
}
