//! The paper's analytical model (§5.2), as closed forms.
//!
//! These formulas count the messages and bytes needed to adeliver `M`
//! messages (one consensus instance) in the saturated regime, assuming
//! good runs and piggybacking opportunities (§5.2's standing assumption
//! that instance `k+1` starts right after instance `k`).
//!
//! The `analysis_*` benches print these next to simulator counters, and
//! the integration tests assert that the simulation reproduces them.

/// Messages per consensus instance in the **modular** stack (§5.2.1):
/// `(n−1) · (M + 2 + ⌊(n+1)/2⌋)` — diffusion of the `M` messages,
/// proposal, acks and the majority-optimized reliable broadcast of the
/// decision.
pub fn modular_messages(n: usize, m: usize) -> u64 {
    assert!(n >= 1, "group size must be positive");
    ((n - 1) * (m + 2 + n.div_ceil(2))) as u64
}

/// Messages per consensus instance in the **monolithic** stack (§5.2.1):
/// `2(n−1)` — one combined decision+proposal out, one ack-with-payload
/// back from each non-coordinator.
pub fn monolithic_messages(n: usize) -> u64 {
    assert!(n >= 1, "group size must be positive");
    (2 * (n - 1)) as u64
}

/// Payload bytes shipped per consensus instance by the **modular** stack
/// (§5.2.2): `2(n−1)·M·l` — every abcast message travels twice: once in
/// the diffusion to all, once inside the proposal.
pub fn modular_data(n: usize, m: usize, l: usize) -> u64 {
    2 * (n as u64 - 1) * m as u64 * l as u64
}

/// Payload bytes shipped per consensus instance by the **monolithic**
/// stack (§5.2.2): `(n−1)(1 + 1/n)·M·l` — each non-coordinator
/// piggybacks `M/n` messages to the coordinator; the proposal carries all
/// `M` to everyone.
pub fn monolithic_data(n: usize, m: usize, l: usize) -> f64 {
    (n as f64 - 1.0) * (1.0 + 1.0 / n as f64) * m as f64 * l as f64
}

/// The modular stack's data overhead relative to the monolithic one
/// (§5.2.2): `(n−1)/(n+1)` — 50 % at n = 3, 75 % at n = 7.
pub fn modularity_overhead(n: usize) -> f64 {
    (n as f64 - 1.0) / (n as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_n3_m4() {
        // §5.2.1's worked example: 16 modular messages vs 4 monolithic.
        assert_eq!(modular_messages(3, 4), 16);
        assert_eq!(monolithic_messages(3), 4);
    }

    #[test]
    fn message_counts_n7() {
        // (7−1)·(4+2+4) = 60 vs 2·6 = 12.
        assert_eq!(modular_messages(7, 4), 60);
        assert_eq!(monolithic_messages(7), 12);
    }

    #[test]
    fn data_volumes() {
        // n=3, M=4, l=16384: modular 2·2·4·16384 = 262144.
        assert_eq!(modular_data(3, 4, 16384), 262_144);
        // monolithic (n−1)(1+1/n)M·l = 2·(4/3)·4·16384 ≈ 174762.67.
        let mono = monolithic_data(3, 4, 16384);
        assert!((mono - 174_762.666).abs() < 1.0);
    }

    #[test]
    fn overhead_matches_paper() {
        assert!((modularity_overhead(3) - 0.50).abs() < 1e-12);
        assert!((modularity_overhead(7) - 0.75).abs() < 1e-12);
        // Overhead from the data formulas agrees with the closed form.
        for n in [3usize, 5, 7, 9] {
            let m = 4;
            let l = 1024;
            let ratio = (modular_data(n, m, l) as f64 - monolithic_data(n, m, l))
                / monolithic_data(n, m, l);
            assert!(
                (ratio - modularity_overhead(n)).abs() < 1e-9,
                "n={n}: {ratio} vs {}",
                modularity_overhead(n)
            );
        }
    }

    #[test]
    fn modular_cost_grows_with_batch_monolithic_does_not() {
        assert!(modular_messages(3, 8) > modular_messages(3, 4));
        assert_eq!(monolithic_messages(3), monolithic_messages(3));
    }
}
