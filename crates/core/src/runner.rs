//! The experiment runner: one run = one simulated cluster under one
//! workload; a summary = several runs (seeds) combined with 95 %
//! confidence intervals, as the paper reports.

use fortika_chaos::{DeliveryOracle, OracleReport, ReconfigInjector, Scenario};
use fortika_net::{
    Cluster, ClusterApi, ClusterConfig, ConfigStamp, CostModel, Counters, Delivery, Harness,
    NetModel, ProcessId, SnapshotStamp,
};
use fortika_sim::stats::{mean_ci95, MeanCi};
use fortika_sim::{VDur, VTime};
use fortika_trace::{decompose_window, LatencyDecomposition, Trace, TraceConfig, WindowSpec};

use crate::stack::{build_nodes_with_windows, StackConfig, StackKind};
use crate::workload::{Workload, WorkloadDriver};

/// Everything needed to run one experiment configuration.
#[derive(Debug, Clone)]
pub struct Experiment {
    kind: StackKind,
    n: usize,
    workload: Workload,
    stack: StackConfig,
    net: NetModel,
    cost: CostModel,
    seed: u64,
    warmup: VDur,
    measure: VDur,
    drain: VDur,
    scenario: Option<Scenario>,
    trace: TraceConfig,
    /// Violation side effects (trace dump, auto-minimized reproducer).
    /// True for user-built experiments; cleared on the internal probe
    /// runs the minimizer spawns, so shrinking can't recurse or litter
    /// `target/trace/` with candidate dumps.
    emit_artifacts: bool,
}

/// Builder for [`Experiment`] (see [`Experiment::builder`]).
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    inner: Experiment,
}

impl Experiment {
    /// Starts building an experiment on `n` processes with the given
    /// stack kind.
    pub fn builder(kind: StackKind, n: usize) -> ExperimentBuilder {
        assert!(n >= 1, "need at least one process");
        ExperimentBuilder {
            inner: Experiment {
                kind,
                n,
                workload: Workload::constant_rate(500.0, 1024),
                stack: StackConfig::default(),
                net: NetModel::default(),
                cost: CostModel::default(),
                seed: 1,
                warmup: VDur::millis(1500),
                measure: VDur::secs(3),
                drain: VDur::millis(500),
                scenario: None,
                trace: TraceConfig::default(),
                emit_artifacts: true,
            },
        }
    }

    /// Runs the experiment once and reports the window metrics.
    ///
    /// With a [`Scenario`] attached, its faults are scheduled before the
    /// run, scripted suspicion windows are wired into every failure
    /// detector, the drain is stretched past the scenario horizon, and
    /// the delivery-invariant oracle audits every `adeliver` — safety
    /// violations land in [`RunReport::oracle`].
    pub fn run(&mut self) -> RunReport {
        // Dynamic membership: a scenario with `AddNode` events needs
        // standby processes beyond the initial group, so the cluster is
        // provisioned at the scenario's capacity. Standbys boot crashed
        // (revived by the restart their `AddNode` schedules) and start
        // as learners via `initial_members`.
        let capacity = self
            .scenario
            .as_ref()
            .map(|s| s.capacity(self.n))
            .unwrap_or(self.n);
        let has_reconfigs = self
            .scenario
            .as_ref()
            .is_some_and(|s| !s.reconfigs().is_empty());
        let mut cluster_cfg = ClusterConfig::new(capacity, self.seed);
        cluster_cfg.net = self.net.clone();
        cluster_cfg.cost = self.cost.clone();
        cluster_cfg.trace = self.trace.clone();
        let windows = self
            .scenario
            .as_ref()
            .map(|s| s.suspicion_windows())
            .unwrap_or_default();
        // A scenario may carry a windowed-sequencer depth (the chaos
        // generator draws one so fault fuzzing also covers pipelined
        // runs); the deeper of the two requests wins, so an explicit
        // stack_config override is never silently weakened.
        let mut stack = self.stack.clone();
        if let Some(scenario) = &self.scenario {
            stack.pipeline_depth = stack.pipeline_depth.max(scenario.pipeline_depth());
            // Same upgrade-only rule for the dissemination axis: a
            // scenario-drawn Ring/Tree is adopted only when the stack
            // is at the Direct default (an explicit override is never
            // silently replaced) and no app-state fold is configured
            // (offloaded runs fold descriptors, not app payloads).
            if !stack.dissemination.offloads() && stack.app_state.is_none() {
                stack.dissemination = scenario.dissemination();
            }
        }
        if has_reconfigs && stack.initial_members == 0 {
            // Only the original group votes; standbys (and anyone a
            // log-decided `Add` later promotes) start as learners.
            stack.initial_members = self.n;
        }
        let stack = &stack;
        let nodes = build_nodes_with_windows(self.kind, capacity, stack, &windows);
        let mut cluster = Cluster::new(cluster_cfg, nodes);
        if let Some(scenario) = &self.scenario {
            // Crash-recovery support: scenarios may revive crashed
            // processes, which needs a factory for fresh stacks.
            crate::stack::install_restart_factory(&mut cluster, self.kind, stack, &windows);
            // Standbys are down until their `AddNode` revives them —
            // crashed before the scenario's own events are applied so
            // the revival always finds them crashed.
            for pid in self.n..capacity {
                cluster.schedule_crash(ProcessId(pid as u16), VTime::ZERO);
            }
            scenario.apply(&mut cluster);
        }

        let window_start = VTime::ZERO + self.warmup;
        let window_end = window_start + self.measure;
        let mut driver = WorkloadDriver::with_seed(
            self.workload.clone(),
            self.n,
            window_start,
            window_end,
            self.seed,
        );
        if self.trace.enabled {
            // Keep per-message observations so every latency sample can
            // be decomposed against the event trace below.
            driver.enable_sample_log();
        }
        driver.start(&mut cluster);
        // Record deliveries for the oracle only when a scenario asked
        // for an audit — plain benchmark runs skip the bookkeeping.
        let mut oracle = self
            .scenario
            .as_ref()
            .map(|_| DeliveryOracle::new(capacity));
        let mut tap = OracleTap {
            driver: &mut driver,
            oracle: oracle.as_mut(),
            injector: ReconfigInjector::new(),
            reconfigs_accepted: 0,
        };

        // Warm-up.
        cluster.run_until(window_start, &mut tap);
        let counters_at_start = cluster.counters().clone();
        let busy_at_start: Vec<VDur> = ProcessId::all(self.n)
            .map(|p| cluster.cpu_busy(p))
            .collect();
        let dur_at_start: Vec<VDur> = ProcessId::all(self.n)
            .map(|p| cluster.durability_busy(p))
            .collect();

        // Measurement window + drain (so in-flight messages complete).
        cluster.run_until(window_end, &mut tap);
        let counters_at_end = cluster.counters().clone();
        let busy_at_end: Vec<VDur> = ProcessId::all(self.n)
            .map(|p| cluster.cpu_busy(p))
            .collect();
        let dur_at_end: Vec<VDur> = ProcessId::all(self.n)
            .map(|p| cluster.durability_busy(p))
            .collect();
        // Under a scenario, drain past the last fault plus a margin so
        // healing (and post-heal catch-up) happens inside the run.
        let mut end_of_drain = window_end + self.drain;
        if let Some(scenario) = &self.scenario {
            end_of_drain = end_of_drain.max(VTime::ZERO + scenario.horizon() + VDur::secs(1));
        }
        cluster.run_until(end_of_drain, &mut tap);
        let trace = cluster.take_trace();

        let oracle_report = self.scenario.as_ref().and_then(|scenario| {
            let correct = scenario.correct(capacity);
            oracle.as_ref().map(|o| o.check(&correct))
        });
        // A violating traced run leaves its bounded evidence window on
        // disk before anything else can panic on the report.
        if self.emit_artifacts {
            if let (Some(trace), Some(report)) = (&trace, &oracle_report) {
                if !report.is_ok() {
                    let label = format!("{:?}-seed{}", self.kind, self.seed).to_lowercase();
                    let dir = std::path::Path::new("target").join("trace");
                    match fortika_chaos::dump_violation_trace(trace, report, &dir, &label) {
                        Ok(paths) => {
                            for p in paths {
                                eprintln!("violation trace written: {}", p.display());
                            }
                        }
                        Err(e) => eprintln!("violation trace dump failed: {e}"),
                    }
                }
            }
        }
        // Any oracle violation also auto-minimizes its scenario: ddmin
        // re-runs this experiment (artifacts and tracing off) on
        // candidate sub-timelines until no single event can be dropped
        // while still tripping the same violation kind. The reproducer
        // lands next to the trace dump and in the report.
        let minimized_scenario = if self.emit_artifacts {
            self.minimize_violation(&oracle_report)
        } else {
            None
        };
        let stats = driver.finish();
        let latency_decomposition = trace.as_ref().map(|t| {
            let samples: Vec<_> = stats
                .samples
                .iter()
                .map(|s| {
                    decompose_window(
                        &t.events,
                        &WindowSpec {
                            pid: s.earliest_pid.0,
                            t0_ns: s.t0.as_nanos(),
                            te_ns: s.earliest.as_nanos(),
                        },
                    )
                })
                .collect();
            LatencyDecomposition::from_samples(&samples)
        });
        let secs = self.measure.as_secs_f64();
        let per_proc_rates: Vec<f64> = stats
            .delivered_per_proc
            .iter()
            .map(|&c| c as f64 / secs)
            .collect();
        let throughput = per_proc_rates.iter().sum::<f64>() / self.n as f64;

        let window = counters_at_end.delta_since(&counters_at_start);
        let decided = window.event("consensus.decided") as f64 / self.n as f64;
        let delivered = window.event("abcast.delivered") as f64 / self.n as f64;
        let msgs = window.total_msgs_excluding(|k| k.starts_with("fd."));
        let bytes = {
            let mut b = 0;
            for (k, c) in window.iter_sends() {
                if !k.starts_with("fd.") {
                    b += c.bytes;
                }
            }
            b
        };
        let utilization: Vec<f64> = busy_at_start
            .iter()
            .zip(&busy_at_end)
            .map(|(&s, &e)| (e.saturating_sub(s).as_secs_f64() / secs).clamp(0.0, 1.0))
            .collect();
        let durability_utilization: Vec<f64> = dur_at_start
            .iter()
            .zip(&dur_at_end)
            .map(|(&s, &e)| (e.saturating_sub(s).as_secs_f64() / secs).clamp(0.0, 1.0))
            .collect();

        RunReport {
            kind: self.kind,
            n: self.n,
            offered_load: self.workload.offered_load,
            msg_size: self.workload.msg_size,
            seed: self.seed,
            early_latency_ms: LatencySummary {
                mean: stats.latency_ms.mean(),
                ci95: stats.latency_ms.ci95_half_width(),
                min: if stats.latency_ms.count() > 0 {
                    stats.latency_ms.min()
                } else {
                    0.0
                },
                max: if stats.latency_ms.count() > 0 {
                    stats.latency_ms.max()
                } else {
                    0.0
                },
                p50: stats.latency_hist.percentile(50.0),
                p90: stats.latency_hist.percentile(90.0),
                p99: stats.latency_hist.percentile(99.0),
                samples: stats.latency_ms.count(),
            },
            throughput_msgs_per_sec: throughput,
            delivered_total: stats.delivered_per_proc.iter().sum(),
            admitted_in_window: stats.admitted,
            lost_samples: stats.lost_samples,
            instances_per_proc: decided,
            avg_batch_m: if decided > 0.0 {
                delivered / decided
            } else {
                0.0
            },
            msgs_in_window: msgs,
            bytes_in_window: bytes,
            msgs_per_instance: if decided > 0.0 {
                msgs as f64 / decided
            } else {
                0.0
            },
            bytes_per_instance: if decided > 0.0 {
                bytes as f64 / decided
            } else {
                0.0
            },
            max_cpu_utilization: utilization.iter().cloned().fold(0.0, f64::max),
            mean_cpu_utilization: utilization.iter().sum::<f64>() / self.n as f64,
            max_durability_utilization: durability_utilization.iter().cloned().fold(0.0, f64::max),
            counters: window,
            oracle: oracle_report,
            trace,
            latency_decomposition,
            minimized_scenario,
        }
    }

    /// Shrinks a violating run's scenario to a locally minimal
    /// reproducer (same [`Violation::kind`]) and writes it under
    /// `target/trace/`; returns the minimized scenario. `None` when the
    /// run was clean, had no scenario, or minimization lost the
    /// violation entirely (the original scenario is its own minimum
    /// then — still reported, so callers always get a reproducer).
    ///
    /// [`Violation::kind`]: fortika_chaos::Violation::kind
    fn minimize_violation(&self, oracle_report: &Option<OracleReport>) -> Option<Scenario> {
        let scenario = self.scenario.as_ref()?;
        let violation = oracle_report.as_ref()?.violations.first()?;
        let kind = violation.kind();
        let mut probe = self.clone();
        probe.emit_artifacts = false;
        probe.trace = TraceConfig::default();
        let minimized = fortika_chaos::minimize(scenario, |candidate| {
            probe.scenario = Some(candidate.clone());
            probe
                .run()
                .oracle
                .as_ref()
                .and_then(|r| r.violations.first())
                .is_some_and(|v| v.kind() == kind)
        });
        let label = format!("{:?}-seed{}", self.kind, self.seed).to_lowercase();
        let path = std::path::Path::new("target")
            .join("trace")
            .join(format!("violation-{label}.min.txt"));
        let body = format!(
            "kind: {:?}\nn: {}\nseed: {}\nviolation: {kind}\nevents: {} (of {})\n\
             pipeline_depth: {}\nscenario: {:#?}\n",
            self.kind,
            self.n,
            self.seed,
            minimized.scenario.events().len(),
            minimized.original_events,
            minimized.scenario.pipeline_depth(),
            minimized.scenario,
        );
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(&path, body) {
            Ok(()) => eprintln!("minimized reproducer written: {}", path.display()),
            Err(e) => eprintln!("minimized reproducer write failed: {e}"),
        }
        Some(minimized.scenario)
    }

    /// Runs the experiment once per seed and combines the runs.
    pub fn run_replicated(&mut self, seeds: &[u64]) -> Summary {
        assert!(!seeds.is_empty(), "need at least one seed");
        let mut runs = Vec::with_capacity(seeds.len());
        for &seed in seeds {
            self.seed = seed;
            runs.push(self.run());
        }
        Summary::from_runs(runs)
    }
}

impl ExperimentBuilder {
    /// Sets the workload.
    pub fn workload(mut self, w: Workload) -> Self {
        self.inner.workload = w;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner.seed = seed;
        self
    }

    /// Sets the warm-up duration (excluded from measurements).
    pub fn warmup_secs(mut self, secs: f64) -> Self {
        self.inner.warmup = VDur::from_secs_f64(secs);
        self
    }

    /// Sets the measurement window length.
    pub fn measure_secs(mut self, secs: f64) -> Self {
        self.inner.measure = VDur::from_secs_f64(secs);
        self
    }

    /// Overrides the stack configuration (flow window, FD, ablations…).
    pub fn stack_config(mut self, cfg: StackConfig) -> Self {
        self.inner.stack = cfg;
        self
    }

    /// Attaches a fault [`Scenario`]: its crashes, restarts, link
    /// faults and scripted suspicions run against this experiment, the
    /// runner registers the crash-recovery restart factory, and the
    /// delivery-invariant oracle audits every `adeliver` (see
    /// [`RunReport::oracle`]). A scenario that carries a windowed-
    /// sequencer depth (`Scenario::pipeline_depth` — the chaos
    /// generator draws one per scenario) raises the stack's
    /// `pipeline_depth` to at least that value, so generated fault
    /// timelines also fuzz pipelined instance execution.
    ///
    /// # Example: crash-recovery under audit
    ///
    /// ```
    /// use fortika_core::workload::Workload;
    /// use fortika_core::{Experiment, Scenario, StackKind};
    /// use fortika_net::ProcessId;
    /// use fortika_sim::VDur;
    ///
    /// // p2 crashes at 0.5 s with total volatile-state loss and is
    /// // revived at 1 s; the oracle checks agreement, total order,
    /// // integrity and byte-identical replay across incarnations.
    /// let scenario = Scenario::new()
    ///     .crash(ProcessId(1), VDur::millis(500))
    ///     .restart(ProcessId(1), VDur::millis(1000));
    /// let mut exp = Experiment::builder(StackKind::Modular, 3)
    ///     .workload(Workload::constant_rate(200.0, 256))
    ///     .seed(3)
    ///     .warmup_secs(0.2)
    ///     .measure_secs(1.0)
    ///     .scenario(scenario)
    ///     .build();
    /// let report = exp.run();
    /// report.oracle.expect("scenario attached").assert_ok("doc example");
    /// ```
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.inner.scenario = Some(scenario);
        self
    }

    /// Overrides the network model.
    pub fn net(mut self, net: NetModel) -> Self {
        self.inner.net = net;
        self
    }

    /// Overrides the CPU cost model.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.inner.cost = cost;
        self
    }

    /// Enables event tracing for the run (off by default). Tracing
    /// never changes simulated timing — the benchmark numbers with and
    /// without it are bit-identical — but a traced run additionally
    /// yields [`RunReport::trace`] and
    /// [`RunReport::latency_decomposition`], and a traced run whose
    /// oracle reports a violation dumps the bounded event window around
    /// the offending process under `target/trace/`.
    ///
    /// ```
    /// use fortika_core::{Experiment, StackKind, TraceConfig};
    ///
    /// let mut exp = Experiment::builder(StackKind::Modular, 3)
    ///     .warmup_secs(0.2)
    ///     .measure_secs(0.5)
    ///     .trace(TraceConfig::on())
    ///     .build();
    /// let report = exp.run();
    /// let trace = report.trace.expect("tracing was on");
    /// assert!(!trace.events.is_empty());
    /// let d = report.latency_decomposition.expect("tracing was on");
    /// assert!(d.samples > 0);
    /// ```
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.inner.trace = trace;
        self
    }

    /// Finishes building.
    pub fn build(self) -> Experiment {
        self.inner
    }
}

/// Early-latency summary for one run.
#[derive(Debug, Clone, Copy)]
pub struct LatencySummary {
    /// Mean early latency (ms) over messages admitted in the window.
    pub mean: f64,
    /// 95 % confidence half-width over those samples.
    pub ci95: f64,
    /// Fastest message.
    pub min: f64,
    /// Slowest message.
    pub max: f64,
    /// Median (ms, ~1.5 % resolution).
    pub p50: f64,
    /// 90th percentile (ms).
    pub p90: f64,
    /// 99th percentile (ms).
    pub p99: f64,
    /// Number of samples.
    pub samples: u64,
}

/// All metrics from one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Stack under test.
    pub kind: StackKind,
    /// Group size.
    pub n: usize,
    /// Configured offered load (msgs/s).
    pub offered_load: f64,
    /// Message payload size (bytes).
    pub msg_size: usize,
    /// RNG seed of this run.
    pub seed: u64,
    /// Early latency over the window.
    pub early_latency_ms: LatencySummary,
    /// Throughput T = (1/n) Σ rᵢ (msgs/s).
    pub throughput_msgs_per_sec: f64,
    /// Total adeliver events in the window (all processes).
    pub delivered_total: u64,
    /// Messages admitted (abcast completed) in the window.
    pub admitted_in_window: u64,
    /// Admitted messages never observed delivered (0 in good runs).
    pub lost_samples: u64,
    /// Consensus instances decided per process in the window.
    pub instances_per_proc: f64,
    /// Average messages ordered per instance (the paper's M).
    pub avg_batch_m: f64,
    /// Protocol messages sent in the window (heartbeats excluded).
    pub msgs_in_window: u64,
    /// Protocol bytes sent in the window (heartbeats excluded).
    pub bytes_in_window: u64,
    /// Messages per consensus instance (compare §5.2.1).
    pub msgs_per_instance: f64,
    /// Bytes per consensus instance (compare §5.2.2).
    pub bytes_per_instance: f64,
    /// Highest per-process CPU utilization in the window. Durability
    /// time (stable writes, snapshot encode/install) is CPU time like
    /// any other and is folded in — a `stable_write` sweep moves this
    /// number, which is how the sweep benches detect saturation.
    pub max_cpu_utilization: f64,
    /// Mean per-process CPU utilization in the window.
    pub mean_cpu_utilization: f64,
    /// Highest per-process share of the window spent on durability
    /// alone (a subset of
    /// [`max_cpu_utilization`](RunReport::max_cpu_utilization)): how
    /// much of the busiest process's time went to stable writes and
    /// snapshot encode/install. Zero under the default
    /// (free-durability) calibration.
    pub max_durability_utilization: f64,
    /// Counter deltas over the window (heartbeats included).
    pub counters: Counters,
    /// Delivery-invariant audit of the whole run (present when a
    /// [`Scenario`] was attached): safety checks — uniform agreement,
    /// total order, integrity, prefix-consistency of crashed processes —
    /// over every `adeliver` from start to drain.
    pub oracle: Option<OracleReport>,
    /// The frozen event trace (present when tracing was enabled via
    /// [`ExperimentBuilder::trace`]): wire events, handler executions
    /// and per-instance lifecycle spans, ring-bounded at the configured
    /// capacity. Export with [`Trace::to_jsonl`] /
    /// [`Trace::to_chrome_json`].
    pub trace: Option<Trace>,
    /// Per-decision latency decomposition (present when tracing was
    /// enabled): each in-window early-latency sample split into
    /// queueing, transmission, CPU and durability time at the
    /// first-delivering process, with percentiles per component. The
    /// four components sum to the end-to-end window exactly (integer
    /// nanoseconds; durability is also counted inside CPU).
    pub latency_decomposition: Option<LatencyDecomposition>,
    /// The auto-minimized reproducer (present when the oracle reported
    /// a violation on a scenario run): the attached scenario
    /// ddmin-shrunk to a locally minimal event list that still trips
    /// the same violation kind. Also written to
    /// `target/trace/violation-<kind>-seed<seed>.min.txt`.
    pub minimized_scenario: Option<Scenario>,
}

/// Forwards workload callbacks while teeing every delivery into the
/// oracle (when one is attached). Also owns the [`ReconfigInjector`]
/// that turns a scenario's reserved reconfiguration ticks into abcast
/// submissions — those ticks must never reach the workload driver,
/// which reads tick ids as sender pids.
struct OracleTap<'a> {
    driver: &'a mut WorkloadDriver,
    oracle: Option<&'a mut DeliveryOracle>,
    injector: ReconfigInjector,
    /// Accepted reconfig submissions so far: each one, once decided,
    /// must surface as exactly one config version — fed to the oracle
    /// as its drained-completeness floor.
    reconfigs_accepted: u64,
}

impl OracleTap<'_> {
    /// Hands freshly accepted ids to the oracle (arming its
    /// unknown-delivery integrity check); with no oracle the ids are
    /// simply discarded so the driver's buffer stays empty.
    fn sync_submissions(&mut self) {
        let ids = self.driver.drain_accepted_ids();
        if let Some(oracle) = self.oracle.as_deref_mut() {
            for id in ids {
                oracle.note_submission(id);
            }
        }
    }
}

impl Harness for OracleTap<'_> {
    fn on_delivery(&mut self, api: &mut ClusterApi<'_>, pid: ProcessId, d: Delivery, at: VTime) {
        if let Some(oracle) = self.oracle.as_deref_mut() {
            oracle.record(pid, d.msg, at);
        }
        self.driver.on_delivery(api, pid, d, at);
    }

    fn on_app_ready(&mut self, api: &mut ClusterApi<'_>, pid: ProcessId, at: VTime) {
        self.driver.on_app_ready(api, pid, at);
        self.sync_submissions();
    }

    fn on_tick(&mut self, api: &mut ClusterApi<'_>, tick: u64, at: VTime) {
        if let Some(outcome) = self.injector.on_tick(api, tick, at) {
            // A reserved reconfig tick: submitted (or rescheduled), and
            // in no case the workload driver's to interpret.
            if let (Some(id), Some(oracle)) = (outcome, self.oracle.as_deref_mut()) {
                oracle.note_submission(id);
                self.reconfigs_accepted += 1;
                oracle.expect_configs(self.reconfigs_accepted);
            }
            return;
        }
        self.driver.on_tick(api, tick, at);
        self.sync_submissions();
    }

    fn on_restart(&mut self, api: &mut ClusterApi<'_>, pid: ProcessId, at: VTime) {
        if let Some(oracle) = self.oracle.as_deref_mut() {
            oracle.note_restart(pid);
        }
        self.driver.on_restart(api, pid, at);
        self.sync_submissions();
    }

    fn on_snapshot(
        &mut self,
        _api: &mut ClusterApi<'_>,
        pid: ProcessId,
        stamp: SnapshotStamp,
        _at: VTime,
    ) {
        if let Some(oracle) = self.oracle.as_deref_mut() {
            oracle.note_snapshot(pid, &stamp);
        }
    }

    fn on_config(
        &mut self,
        _api: &mut ClusterApi<'_>,
        pid: ProcessId,
        stamp: ConfigStamp,
        _at: VTime,
    ) {
        if let Some(oracle) = self.oracle.as_deref_mut() {
            oracle.note_config(pid, stamp);
        }
    }
}

/// Metrics combined over several runs (seeds), with Student-t 95 %
/// confidence intervals across runs — the paper's error bars.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Per-run reports.
    pub runs: Vec<RunReport>,
    /// Early latency: grand mean and CI over per-run means.
    pub early_latency_ms: MeanCi,
    /// Throughput: grand mean and CI over per-run means.
    pub throughput: MeanCi,
    /// Mean of per-run M (messages per instance).
    pub avg_batch_m: f64,
    /// Mean of per-run max CPU utilization.
    pub max_cpu_utilization: f64,
}

impl Summary {
    /// Combines per-run reports.
    pub fn from_runs(runs: Vec<RunReport>) -> Self {
        let lat: Vec<f64> = runs.iter().map(|r| r.early_latency_ms.mean).collect();
        let thr: Vec<f64> = runs.iter().map(|r| r.throughput_msgs_per_sec).collect();
        let m = runs.iter().map(|r| r.avg_batch_m).sum::<f64>() / runs.len() as f64;
        let cpu = runs.iter().map(|r| r.max_cpu_utilization).sum::<f64>() / runs.len() as f64;
        Summary {
            early_latency_ms: mean_ci95(&lat).expect("at least one run"),
            throughput: mean_ci95(&thr).expect("at least one run"),
            avg_batch_m: m,
            max_cpu_utilization: cpu,
            runs,
        }
    }
}
