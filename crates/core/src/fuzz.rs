//! The cluster-backed runner for [`FuzzCampaign`]s.
//!
//! `fortika-chaos` keeps its campaign driver runner-agnostic (the
//! layering forbids it from depending on this crate), so the standard
//! "build a cluster, apply the scenario, drive load, audit deliveries"
//! execution lives here: [`run_fuzz_scenario`] executes one generated
//! `(scenario, seed)` pair on a real stack, and [`fuzz_runner`]
//! packages it as the closure [`FuzzCampaign::run`] expects.
//!
//! Runs are safety-audited (uniform agreement, total order, integrity,
//! prefix consistency, replay/snapshot obligations) but not
//! validity-audited: a steered campaign deliberately draws loss and
//! partition windows, under which demanding full delivery would be
//! unfair. The drain is sized past the scenario horizon so late
//! recovery still happens inside the audited window, while keeping
//! per-run cost low enough for multi-batch campaigns in debug builds.
//!
//! [`FuzzCampaign`]: fortika_chaos::FuzzCampaign
//! [`FuzzCampaign::run`]: fortika_chaos::FuzzCampaign::run

use fortika_chaos::{LoadPlan, RunOutcome, Scenario, ScriptedDriver};
use fortika_net::{Cluster, ClusterConfig, ProcessId};
use fortika_sim::{VDur, VTime};

use crate::stack::{build_nodes_with_windows, install_restart_factory, StackConfig, StackKind};

/// Messages each fuzz run's load plan submits.
const FUZZ_LOAD_MSGS: usize = 16;
/// Payload-size cap of fuzz-load messages (bytes).
const FUZZ_LOAD_MAX_SIZE: usize = 512;
/// Post-horizon drain: room for suspicion timeouts, round changes and
/// recovery to finish inside the audited window.
const FUZZ_DRAIN: VDur = VDur::secs(2);

/// Executes one generated scenario on a real cluster of `n` `kind`
/// stacks and reports the campaign outcome: the run's final protocol
/// counters plus the first safety violation, if any.
///
/// `seed` seeds the cluster *and* the load plan, and is the same value
/// the campaign derived the scenario from — so one `u64` replays the
/// whole run bit for bit.
pub fn run_fuzz_scenario(
    kind: StackKind,
    n: usize,
    stack: &StackConfig,
    scenario: &Scenario,
    seed: u64,
) -> RunOutcome {
    // Dynamic membership: `AddNode` scenarios need standby processes
    // beyond the initial group, provisioned crashed (their add revives
    // them) and configured as learners via `initial_members`.
    let capacity = scenario.capacity(n);
    let cfg = ClusterConfig::new(capacity, seed);
    let mut stack_cfg = stack.clone();
    stack_cfg.pipeline_depth = stack_cfg.pipeline_depth.max(scenario.pipeline_depth());
    if !stack_cfg.dissemination.offloads() && stack_cfg.app_state.is_none() {
        stack_cfg.dissemination = scenario.dissemination();
    }
    if !scenario.reconfigs().is_empty() && stack_cfg.initial_members == 0 {
        stack_cfg.initial_members = n;
    }
    let windows = scenario.suspicion_windows();
    let nodes = build_nodes_with_windows(kind, capacity, &stack_cfg, &windows);
    let mut cluster = Cluster::new(cfg, nodes);
    install_restart_factory(&mut cluster, kind, &stack_cfg, &windows);
    for pid in n..capacity {
        cluster.schedule_crash(ProcessId(pid as u16), VTime::ZERO);
    }
    scenario.apply(&mut cluster);

    let horizon = scenario.horizon().max(VDur::millis(200));
    // Senders are the initial members only; standbys deliver (and the
    // oracle audits them) without generating load.
    let plan = LoadPlan::random(n, seed, FUZZ_LOAD_MSGS, horizon, FUZZ_LOAD_MAX_SIZE);
    let mut driver = ScriptedDriver::new(capacity, plan);
    driver.start(&mut cluster);
    cluster.run_until(VTime::ZERO + horizon + FUZZ_DRAIN, &mut driver);

    let report = driver.oracle().check(&scenario.correct(capacity));
    RunOutcome {
        counters: cluster.counters().clone(),
        violation: report.violations.first().cloned(),
    }
}

/// A [`run_fuzz_scenario`] closure over a fixed `(kind, n, stack)` —
/// plug it straight into [`FuzzCampaign::run`]:
///
/// ```
/// use fortika_chaos::{ChaosProfile, FuzzCampaign, FuzzConfig, StopReason};
/// use fortika_core::fuzz::fuzz_runner;
/// use fortika_core::{StackConfig, StackKind};
/// use fortika_sim::VDur;
///
/// let cfg = FuzzConfig {
///     batch_runs: 2,
///     max_batches: 2,
///     profile: ChaosProfile {
///         horizon: VDur::millis(300),
///         ..ChaosProfile::network_only()
///     },
///     ..FuzzConfig::new(3, 11)
/// };
/// let report = FuzzCampaign::new(cfg)
///     .run(fuzz_runner(StackKind::Monolithic, 3, StackConfig::default()));
/// assert_ne!(report.stop, StopReason::Violation, "both stacks are correct");
/// assert!(report.coverage.runs() > 0);
/// ```
///
/// [`FuzzCampaign::run`]: fortika_chaos::FuzzCampaign::run
pub fn fuzz_runner(
    kind: StackKind,
    n: usize,
    stack: StackConfig,
) -> impl FnMut(&Scenario, u64) -> RunOutcome {
    move |scenario, seed| run_fuzz_scenario(kind, n, &stack, scenario, seed)
}
