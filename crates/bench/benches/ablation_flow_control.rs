//! Ablation A2 — flow-control window sweep.
//!
//! The paper states (§5.1) that the flow control was tuned so that on
//! average M = 4 messages are ordered per consensus execution, and that
//! "this value of M optimizes performance of both stacks". This harness
//! sweeps the per-process window and prints the resulting M, throughput
//! and latency for both stacks, exposing the latency/throughput
//! trade-off behind that tuning.

use fortika_bench::seeds;
use fortika_core::workload::Workload;
use fortika_core::{Experiment, StackConfig, StackKind};

fn main() {
    println!("== Ablation A2 — flow-control window sweep (n=3, load=3000, size=16384) ==");
    println!();
    println!(
        "{:>7} | {:>10} {:>12} {:>12} | {:>10} {:>12} {:>12}",
        "window", "mod M", "mod lat(ms)", "mod thr", "mono M", "mono lat", "mono thr"
    );
    for window in [1usize, 2, 3, 4, 6, 8, 12] {
        let mut cells = Vec::new();
        for kind in [StackKind::Modular, StackKind::Monolithic] {
            let mut exp = Experiment::builder(kind, 3)
                .workload(Workload::constant_rate(3000.0, 16_384))
                .stack_config(StackConfig {
                    window,
                    ..StackConfig::default()
                })
                .warmup_secs(1.0)
                .measure_secs(1.5)
                .build();
            let s = exp.run_replicated(&seeds());
            cells.push((s.avg_batch_m, s.early_latency_ms.mean, s.throughput.mean));
        }
        println!(
            "{:>7} | {:>10.2} {:>12.3} {:>12.1} | {:>10.2} {:>12.3} {:>12.1}",
            window, cells[0].0, cells[0].1, cells[0].2, cells[1].0, cells[1].1, cells[1].2
        );
    }
    println!();
    println!("# paper: flow control tuned for ~M=4; larger windows buy throughput at the cost");
    println!("# of latency (deeper pipeline), smaller windows starve the batch.");
}
