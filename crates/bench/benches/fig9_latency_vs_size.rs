//! Figure 9 — Early latency vs. message size (offered load 2000 msg/s).
//!
//! Paper's findings in shape: the monolithic stack is ~50 % faster for
//! small messages (up to 4096 B at n=7 / 8192 B at n=3); the advantage
//! narrows to ~25 % (n=7) / 35 % (n=3) for the largest sizes, where data
//! volume rather than message count dominates.

use fortika_bench::{figure_series, full_sweep, print_header, print_row, run_point};

fn main() {
    let load = 2000.0;
    let sizes: Vec<usize> = if full_sweep() {
        vec![64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768]
    } else {
        vec![64, 512, 4096, 16384, 32768]
    };
    let series = figure_series();
    print_header(
        "Fig. 9 — early latency (ms) vs message size (bytes), load=2000 msgs/s",
        "size",
        &series.iter().map(|(_, _, l)| l.clone()).collect::<Vec<_>>(),
    );
    for &size in &sizes {
        let mut cells = Vec::new();
        for (kind, n, _) in &series {
            let s = run_point(*kind, *n, load, size, 1.5);
            cells.push((s.early_latency_ms.mean, s.early_latency_ms.half_width));
        }
        print_row(size as f64, &cells);
    }
    println!();
    println!(
        "# paper: mono ~50% lower latency at small sizes; 25% (n=7) / 35% (n=3) at the largest."
    );
}
