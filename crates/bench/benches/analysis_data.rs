//! §5.2.2 — Total amount of data sent per consensus instance.
//!
//! Regenerates the analytical byte volumes and the modularity overhead
//! `(n−1)/(n+1)` (50 % at n = 3, 75 % at n = 7), cross-checked against
//! saturated-simulation byte counters.

use fortika_bench::seeds;
use fortika_core::analysis;
use fortika_core::workload::Workload;
use fortika_core::{Experiment, StackKind};

fn saturated_bytes_per_msg(kind: StackKind, n: usize, l: usize) -> f64 {
    let mut vals = Vec::new();
    for &seed in &seeds() {
        let mut exp = Experiment::builder(kind, n)
            .workload(Workload::constant_rate(4000.0, l))
            .warmup_secs(1.0)
            .measure_secs(1.5)
            .seed(seed)
            .build();
        let r = exp.run();
        vals.push(r.bytes_per_instance / r.avg_batch_m);
    }
    vals.iter().sum::<f64>() / vals.len() as f64
}

fn main() {
    let l = 16384usize;
    println!("== §5.2.2 — data volume per consensus instance (l = {l} bytes) ==");
    println!();
    println!("closed forms per ordered message:");
    println!("  modular    2(n-1)·l");
    println!("  monolithic (n-1)(1+1/n)·l");
    println!("  overhead   (n-1)/(n+1)");
    println!();
    println!(
        "{:>3} | {:>12} {:>12} | {:>12} {:>12} | {:>10} {:>10}",
        "n", "mod KB/msg", "(analytic)", "mono KB/msg", "(analytic)", "overhead", "(analytic)"
    );
    for n in [3usize, 7] {
        let analytic_mod = analysis::modular_data(n, 1, l) as f64 / 1024.0;
        let analytic_mono = analysis::monolithic_data(n, 1, l) / 1024.0;
        let sim_mod = saturated_bytes_per_msg(StackKind::Modular, n, l) / 1024.0;
        let sim_mono = saturated_bytes_per_msg(StackKind::Monolithic, n, l) / 1024.0;
        let overhead = (sim_mod - sim_mono) / sim_mono;
        println!(
            "{:>3} | {:>12.1} {:>12.1} | {:>12.1} {:>12.1} | {:>9.1}% {:>9.0}%",
            n,
            sim_mod,
            analytic_mod,
            sim_mono,
            analytic_mono,
            overhead * 100.0,
            analysis::modularity_overhead(n) * 100.0
        );
    }
    println!();
    println!("paper: \"the modular implementation needs to send 50% more data (n=3), 75% (n=7)\"");
}
