//! Ablation A1 — contribution of each monolithic optimization.
//!
//! The paper motivates three cross-module optimizations (§4.1–§4.3) but
//! evaluates only the all-on stack. This harness measures them
//! cumulatively: none → +O1 → +O1+O2 → all, at the paper's reference
//! operating point (n = 3, high load, 16384-byte messages).
//!
//! `none` is the modular *algorithm* inside one module — comparing it to
//! the actual modular stack isolates the composition framework's
//! mechanical overhead from the algorithmic gains.

use fortika_bench::seeds;
use fortika_core::workload::Workload;
use fortika_core::{Experiment, MonoOptimizations, StackConfig, StackKind};

fn run(kind: StackKind, opts: MonoOptimizations) -> fortika_core::Summary {
    let mut exp = Experiment::builder(kind, 3)
        .workload(Workload::constant_rate(3000.0, 16_384))
        .stack_config(StackConfig {
            mono_opts: opts,
            ..StackConfig::default()
        })
        .warmup_secs(1.0)
        .measure_secs(1.5)
        .build();
    exp.run_replicated(&seeds())
}

fn main() {
    println!("== Ablation A1 — monolithic optimizations (n=3, load=3000, size=16384) ==");
    println!();
    println!(
        "{:<26} {:>12} {:>14} {:>12} {:>12}",
        "configuration", "latency(ms)", "thr(msgs/s)", "msg/inst", "KB/inst"
    );
    let combos: Vec<(&str, StackKind, MonoOptimizations)> = vec![
        (
            "modular stack",
            StackKind::Modular,
            MonoOptimizations::all(),
        ),
        (
            "mono: none",
            StackKind::Monolithic,
            MonoOptimizations::none(),
        ),
        (
            "mono: O1",
            StackKind::Monolithic,
            MonoOptimizations {
                combine_decision_proposal: true,
                piggyback_on_acks: false,
                implicit_decision_acks: false,
            },
        ),
        (
            "mono: O1+O2",
            StackKind::Monolithic,
            MonoOptimizations {
                combine_decision_proposal: true,
                piggyback_on_acks: true,
                implicit_decision_acks: false,
            },
        ),
        (
            "mono: O1+O2+O3 (paper)",
            StackKind::Monolithic,
            MonoOptimizations::all(),
        ),
    ];
    for (label, kind, opts) in combos {
        let s = run(kind, opts);
        let r0 = &s.runs[0];
        println!(
            "{:<26} {:>12.3} {:>14.1} {:>12.2} {:>12.1}",
            label,
            s.early_latency_ms.mean,
            s.throughput.mean,
            r0.msgs_per_instance,
            r0.bytes_per_instance / 1024.0
        );
    }
    println!();
    println!("# O2 (ack piggybacking) removes the M(n-1) diffusion: the big message saving.");
    println!("# O1 merges decision k with proposal k+1; O3 removes the rbcast relay traffic.");
}
