//! Figure 10 — Throughput vs. offered load (message size 16384 B).
//!
//! Paper's findings in shape: T equals the offered load up to ~500
//! msg/s, then plateaus (flow control); at high load the monolithic
//! plateau sits 25 % (n=7) to 30 % (n=3) above the modular one.

use fortika_bench::{figure_series, full_sweep, print_header, print_row, run_point};

fn main() {
    let msg_size = 16_384;
    let loads: Vec<f64> = if full_sweep() {
        vec![
            125.0, 250.0, 500.0, 1000.0, 2000.0, 3000.0, 4000.0, 5000.0, 6000.0, 7000.0,
        ]
    } else {
        vec![250.0, 500.0, 1000.0, 2000.0, 4000.0]
    };
    let series = figure_series();
    print_header(
        "Fig. 10 — throughput (msgs/s) vs offered load (msgs/s), size=16384",
        "load",
        &series.iter().map(|(_, _, l)| l.clone()).collect::<Vec<_>>(),
    );
    for &load in &loads {
        let mut cells = Vec::new();
        for (kind, n, _) in &series {
            let s = run_point(*kind, *n, load, msg_size, 1.5);
            cells.push((s.throughput.mean, s.throughput.half_width));
        }
        print_row(load, &cells);
    }
    println!();
    println!(
        "# paper: T = offered load below ~500 msgs/s; mono plateau 25% (n=7) to 30% (n=3) higher."
    );
}
