//! Figure 11 — Throughput vs. message size (offered load 2000 msg/s).
//!
//! Paper's findings in shape: mono 10–15 % higher at small sizes;
//! throughput roughly constant up to ~4096 B (n=7) / ~16384 B (n=3);
//! beyond that, the n=7 curves degrade *faster* than n=3 because the
//! coordinator must ship M·l-byte proposals to six peers.

use fortika_bench::{figure_series, full_sweep, print_header, print_row, run_point};

fn main() {
    let load = 2000.0;
    let sizes: Vec<usize> = if full_sweep() {
        vec![64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768]
    } else {
        vec![64, 512, 4096, 16384, 32768]
    };
    let series = figure_series();
    print_header(
        "Fig. 11 — throughput (msgs/s) vs message size (bytes), load=2000 msgs/s",
        "size",
        &series.iter().map(|(_, _, l)| l.clone()).collect::<Vec<_>>(),
    );
    for &size in &sizes {
        let mut cells = Vec::new();
        for (kind, n, _) in &series {
            let s = run_point(*kind, *n, load, size, 1.5);
            cells.push((s.throughput.mean, s.throughput.half_width));
        }
        print_row(size as f64, &cells);
    }
    println!();
    println!("# paper: mono 10-15% higher at small sizes; n=7 degrades faster at large sizes.");
}
