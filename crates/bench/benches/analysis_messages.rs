//! §5.2.1 — Number of messages sent per consensus instance.
//!
//! Regenerates the paper's analytical message counts and cross-checks
//! them against saturated-simulation counters.
//!
//! Paper's example: n = 3, M = 4 → 16 modular messages vs 4 monolithic.

use fortika_bench::seeds;
use fortika_core::analysis;
use fortika_core::workload::Workload;
use fortika_core::{Experiment, StackKind};

fn saturated(kind: StackKind, n: usize) -> (f64, f64) {
    let mut msgs = Vec::new();
    let mut m = Vec::new();
    for &seed in &seeds() {
        let mut exp = Experiment::builder(kind, n)
            .workload(Workload::constant_rate(4000.0, 8192))
            .warmup_secs(1.0)
            .measure_secs(1.5)
            .seed(seed)
            .build();
        let r = exp.run();
        msgs.push(r.msgs_per_instance);
        m.push(r.avg_batch_m);
    }
    (
        msgs.iter().sum::<f64>() / msgs.len() as f64,
        m.iter().sum::<f64>() / m.len() as f64,
    )
}

fn main() {
    println!("== §5.2.1 — messages per consensus instance ==");
    println!();
    println!("closed forms: modular (n-1)(M+2+floor((n+1)/2)),  monolithic 2(n-1)");
    println!();
    println!(
        "{:>3} {:>4} | {:>18} {:>20} | {:>15} {:>12}",
        "n", "M", "modular(analytic)", "modular(sim)", "mono(analytic)", "mono(sim)"
    );
    for n in [3usize, 7] {
        let paper_m = 4usize;
        let (sim_mod, m_mod) = saturated(StackKind::Modular, n);
        let (sim_mono, _) = saturated(StackKind::Monolithic, n);
        println!(
            "{:>3} {:>4} | {:>18} {:>20} | {:>15} {:>12}",
            n,
            paper_m,
            analysis::modular_messages(n, paper_m),
            format!("{sim_mod:.2} (M={m_mod:.2})"),
            analysis::monolithic_messages(n),
            format!("{sim_mono:.2}"),
        );
        // Apples-to-apples: analytic evaluated at the measured M.
        let analytic_at_m = (n as f64 - 1.0) * (m_mod + 2.0 + n.div_ceil(2) as f64);
        let err = (sim_mod - analytic_at_m).abs() / analytic_at_m;
        println!(
            "      modular analytic at measured M: {analytic_at_m:.2} (sim error {:.1}%)",
            err * 100.0
        );
    }
    println!();
    println!(
        "paper's worked example (n=3, M=4): modular {} msgs vs monolithic {} msgs",
        analysis::modular_messages(3, 4),
        analysis::monolithic_messages(3)
    );
}
