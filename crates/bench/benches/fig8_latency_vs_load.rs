//! Figure 8 — Early latency vs. offered load (message size 16384 B).
//!
//! Paper's findings this harness should reproduce in *shape*:
//! * latencies close at small loads, then the monolithic stack wins by
//!   up to ~50 % (n=3) / ~30 % (n=7);
//! * latency plateaus above saturation (flow control);
//! * ≥ 99 % CPU above ~500 msg/s offered (printed as `cpu`).

use fortika_bench::{figure_series, full_sweep, print_header, print_row, run_point};

fn main() {
    let msg_size = 16_384;
    let loads: Vec<f64> = if full_sweep() {
        vec![
            125.0, 250.0, 500.0, 1000.0, 2000.0, 3000.0, 4000.0, 5000.0, 6000.0, 7000.0,
        ]
    } else {
        vec![250.0, 500.0, 1000.0, 2000.0, 4000.0]
    };
    let series = figure_series();
    print_header(
        "Fig. 8 — early latency (ms) vs offered load (msgs/s), size=16384",
        "load",
        &series.iter().map(|(_, _, l)| l.clone()).collect::<Vec<_>>(),
    );
    let mut cpu_note = Vec::new();
    for &load in &loads {
        let mut cells = Vec::new();
        for (kind, n, _) in &series {
            let s = run_point(*kind, *n, load, msg_size, 1.5);
            cells.push((s.early_latency_ms.mean, s.early_latency_ms.half_width));
            if *n == 3 {
                cpu_note.push((load, kind.label(), s.max_cpu_utilization));
            }
        }
        print_row(load, &cells);
    }
    println!();
    println!("# CPU utilization (busiest process, n=3):");
    for (load, label, cpu) in cpu_note {
        println!("#   load {load:>6.0}  {label:<10} cpu {:.0}%", cpu * 100.0);
    }
    println!(
        "# paper: latency close at small loads; mono 30% (n=7) to 50% (n=3) lower at high load;"
    );
    println!("# paper: 99% CPU above 500 msgs/s offered load.");
}
