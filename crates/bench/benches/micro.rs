//! Criterion micro-benchmarks (A3): host-level costs of the substrate.
//!
//! These measure the *reproduction's* hot paths — wire codec, event
//! queue, full simulated instances — not the paper's metrics (those are
//! virtual-time measurements produced by the figure harnesses).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use fortika_core::workload::Workload;
use fortika_core::{Experiment, StackKind};
use fortika_net::wire::{decode, encode};
use fortika_net::{AppMsg, Batch, MsgId, ProcessId};
use fortika_sim::{EventQueue, VTime};

fn batch(msgs: usize, size: usize) -> Batch {
    Batch::normalize(
        (0..msgs)
            .map(|i| {
                AppMsg::new(
                    MsgId::new(ProcessId((i % 3) as u16), i as u64),
                    Bytes::from(vec![0u8; size]),
                )
            })
            .collect(),
    )
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_codec");
    let b = batch(4, 16_384);
    let encoded = encode(&b);
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_batch_4x16k", |bench| {
        bench.iter(|| encode(std::hint::black_box(&b)))
    });
    g.bench_function("decode_batch_4x16k", |bench| {
        bench.iter_batched(
            || encoded.clone(),
            |bytes| decode::<Batch>(std::hint::black_box(bytes)).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("schedule_pop_1k", |bench| {
        bench.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(VTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
    g.finish();
}

fn bench_simulated_second(c: &mut Criterion) {
    // How much host time one virtual second of each stack costs at a
    // moderate operating point — the simulator's own efficiency.
    let mut g = c.benchmark_group("simulated_second");
    g.sample_size(10);
    for kind in [StackKind::Modular, StackKind::Monolithic] {
        g.bench_function(kind.label(), |bench| {
            bench.iter(|| {
                let mut exp = Experiment::builder(kind, 3)
                    .workload(Workload::constant_rate(500.0, 1024))
                    .warmup_secs(0.2)
                    .measure_secs(0.8)
                    .seed(9)
                    .build();
                exp.run().delivered_total
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_event_queue,
    bench_simulated_second
);
criterion_main!(benches);
