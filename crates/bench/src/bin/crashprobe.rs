//! Debug probe for post-crash recovery of the monolithic stack.

use bytes::Bytes;
use fortika_core::{build_nodes, StackConfig, StackKind};
use fortika_net::{
    Admission, AppMsg, AppRequest, Cluster, ClusterConfig, CollectingHarness, MsgId, ProcessId,
};
use fortika_sim::{VDur, VTime};

fn main() {
    let n = 3;
    let cfg = ClusterConfig::new(n, 99);
    let nodes = build_nodes(StackKind::Monolithic, n, &StackConfig::default());
    let mut cluster = Cluster::new(cfg, nodes);
    let mut harness = CollectingHarness::new(n);
    cluster.run_until(VTime::ZERO + VDur::millis(1), &mut harness);

    // Load phase.
    let mut seqs = vec![0u64; n];
    for _ in 0..4 {
        for p in 0..n as u16 {
            let id = MsgId::new(ProcessId(p), seqs[p as usize]);
            seqs[p as usize] += 1;
            let msg = AppMsg::new(id, Bytes::from(vec![p as u8; 512]));
            let (adm, _) = cluster.submit(ProcessId(p), AppRequest::Abcast(msg));
            println!("t={} submit p{} -> {:?}", cluster.now(), p + 1, adm);
        }
        let next = cluster.now() + VDur::millis(8);
        cluster.run_until(next, &mut harness);
    }
    println!(
        "delivered at p2 before crash: {}",
        harness.order(ProcessId(1)).len()
    );

    cluster.schedule_crash(ProcessId(0), cluster.now() + VDur::millis(2));
    cluster.run_until(cluster.now() + VDur::millis(800), &mut harness);
    println!(
        "after suspicion: suspicions={} round_changes={} decided={} delivered_p2={}",
        cluster.counters().event("fd.suspicions"),
        cluster.counters().event("mono.round_changes"),
        cluster.counters().event("consensus.decided"),
        harness.order(ProcessId(1)).len(),
    );

    // Post-crash submissions from p2 with status dumps.
    for i in 0..8u64 {
        let id = MsgId::new(ProcessId(1), seqs[1]);
        let msg = AppMsg::new(id, Bytes::from(vec![1u8; 512]));
        let (adm, _) = cluster.submit(ProcessId(1), AppRequest::Abcast(msg));
        if adm == Admission::Accepted {
            seqs[1] += 1;
        }
        println!(
            "t={} submit#{} -> {:?} | delivered_p2={} decided={} rounds={} proposals={} estimates_sent={}",
            cluster.now(),
            i,
            adm,
            harness.order(ProcessId(1)).len(),
            cluster.counters().event("consensus.decided"),
            cluster.counters().event("mono.round_changes"),
            cluster.counters().event("mono.proposals"),
            cluster.counters().kind("mono.estimate").msgs,
        );
        let next = cluster.now() + VDur::millis(500);
        cluster.run_until(next, &mut harness);
    }
}
