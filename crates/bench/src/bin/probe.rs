//! Calibration probe and sweep emitter.
//!
//! Prints latency/throughput tables at fixed operating points so the
//! cost model can be tuned against the paper's shapes, and writes five
//! machine-readable trajectory files meant to be committed so
//! performance history accumulates (formats documented in the
//! top-level README, "Benchmarks"):
//!
//! * `BENCH_modularity.json` — the good-run modularity sweep;
//! * `BENCH_degraded.json` — the same comparison under *resource*
//!   faults (degraded links, slow nodes), oracle-audited;
//! * `BENCH_stable_write.json` — the durability sweep: synchronous
//!   stable-write cost from free to 2 ms per persist;
//! * `BENCH_snapshot_cadence.json` — snapshot cadence × load with
//!   non-zero snapshot encode/install pricing;
//! * `BENCH_pipeline.json` — pipelined instance execution: the
//!   windowed-sequencer depth α × load, both stacks (self-verified:
//!   some depth > 1 must beat depth 1 per stack);
//! * `BENCH_dissemination.json` — payload/ordering separation: the
//!   monolithic baseline against the modular stack under `direct`,
//!   `ring` and `tree` dissemination on the CPU-bound LAN calibration
//!   (self-verified: every point is oracle-audited with 0 violations,
//!   `ring` must cut msgs/instance on every point and at least 3× on
//!   some point, and the offload must narrow the modular/monolithic
//!   throughput gap).
//!
//! `--quick` trims every sweep to a smoke-sized operating set (CI runs
//! this) and writes it under `target/bench-quick/` so the committed
//! full-resolution files are never clobbered. In either mode the probe
//! re-reads every file it wrote — and in quick mode also the six
//! *committed* files — and fails (exit 1) unless the JSON parses,
//! covers both stacks, and (for committed files) keeps at least 8
//! operating points, so the committed bench files cannot silently rot.
//! Quick mode also asserts that every smoke record it regenerates
//! appears **byte-identical** inside the corresponding committed file:
//! the quick operating sets are subsets of the full ones, so any drift
//! in the simulation (including a default-`Direct` regression from the
//! dissemination layer) shows up as a mismatched line.
//! Quick mode additionally runs a bounded **reconfiguration audit**
//! (a log-decided add + remove per stack, traced and oracle-audited —
//! violations dump under `target/trace/` like any other), and folds
//! every run's window counters into a [`CoverageReport`] written to
//! `target/coverage-report.json`.
//!
//! `--trace` runs the tracing smoke instead of the sweeps: one traced
//! run per stack, verifying that the latency decomposition's components
//! sum to the end-to-end latency and that the JSONL / Chrome exports
//! under `target/trace/` are well-formed.
//!
//! `--fuzz-quick` runs a bounded coverage-steered fuzz campaign per
//! stack (see `docs/FUZZING.md`), archives each campaign's coverage
//! matrix under `target/fuzz/`, and fails (exit 1) on any safety
//! violation — after ddmin-shrinking the offending scenario and writing
//! the minimized reproducer next to the matrix.

use std::fmt::Write as _;

use fortika_bench::json;
use fortika_chaos::{minimize, ChaosProfile, CoverageReport, FuzzCampaign, FuzzConfig, StopReason};
use fortika_core::workload::Workload;
use fortika_core::{
    fuzz_runner, run_fuzz_scenario, Experiment, RunReport, Scenario, StackConfig, StackKind,
    TraceConfig,
};
use fortika_net::{CostModel, Dissemination, LinkSelector, NetModel, ProcessId};
use fortika_sim::VDur;

/// The modularity operating points: `(n, offered load msgs/s, payload bytes)`.
const POINTS: &[(usize, f64, usize)] = &[
    (3, 250.0, 16384),
    (3, 500.0, 16384),
    (3, 1000.0, 16384),
    (3, 2000.0, 16384),
    (3, 4000.0, 16384),
    (7, 500.0, 16384),
    (7, 2000.0, 16384),
    (3, 2000.0, 1024),
    (7, 2000.0, 1024),
    (3, 2000.0, 32768),
    (7, 2000.0, 32768),
];

/// Trimmed modularity set for `--quick` (still both group sizes).
const POINTS_QUICK: &[(usize, f64, usize)] = &[(3, 1000.0, 16384), (7, 2000.0, 1024)];

/// Resource-fault configurations for the degraded sweep:
/// `(label, slow_factor_milli on p0, degrade rate_milli on all links)`.
const FAULTS: &[(&str, u64, u64)] = &[
    ("slow_node", 4000, 1000),
    ("degraded_link", 1000, 250),
    ("slow+degraded", 2500, 500),
];

/// Base operating points for the degraded sweep.
const DEGRADED_POINTS: &[(usize, f64, usize)] = &[
    (3, 1000.0, 16384),
    (3, 2000.0, 16384),
    (7, 2000.0, 16384),
    (3, 2000.0, 1024),
];
const DEGRADED_POINTS_QUICK: &[(usize, f64, usize)] = &[(3, 2000.0, 16384)];

/// Stable-write costs swept, in microseconds per persisted record.
const STABLE_US: &[u64] = &[0, 50, 200, 500, 1000, 2000];
const STABLE_US_QUICK: &[u64] = &[0, 500];

/// Snapshot cadences swept (instances between snapshots) × loads.
const CADENCES: &[u64] = &[32, 128, 512, 1024];
const CADENCES_QUICK: &[u64] = &[32, 512];
const CADENCE_LOADS: &[f64] = &[500.0, 2000.0];
const CADENCE_LOADS_QUICK: &[f64] = &[500.0];

/// Pipeline depths swept (instances concurrently in flight) × loads.
const PIPELINE_DEPTHS: &[usize] = &[1, 2, 4, 8];
const PIPELINE_DEPTHS_QUICK: &[usize] = &[1, 4];
/// Flow-control window used by the pipeline sweep: wide enough that
/// the pipeline (not admission) is the binding constraint.
const PIPELINE_WINDOW: usize = 12;

/// Dissemination operating points: `(n, offered load msgs/s, payload
/// bytes)` on the CPU-bound LAN calibration — the regime where the
/// paper's modular stack pays its per-message diffusion overhead and
/// the Ring Paxos-style offload has something to win back.
const DISSEM_POINTS: &[(usize, f64, usize)] = &[
    (3, 2000.0, 16384),
    (3, 4000.0, 16384),
    (7, 2000.0, 16384),
    (3, 4000.0, 1024),
];
/// The quick smoke keeps the n = 7 point: it is the one that carries
/// the headline ≥ 3× msgs/instance cut, so CI re-checks the claim.
const DISSEM_POINTS_QUICK: &[(usize, f64, usize)] = &[(7, 2000.0, 16384)];

/// Flow window for the dissemination sweep: wide enough that the
/// outstanding-payload cap, not admission, shapes the offload.
const DISSEM_WINDOW: usize = 16;

/// The common fields of one JSON record (shared by all five sweeps);
/// `extra` appends sweep-specific fields.
fn json_point(out: &mut String, r: &RunReport, extra: &str) {
    let _ = write!(
        out,
        "    {{\"stack\": \"{}\", \"n\": {}, \"offered_load\": {}, \"msg_size\": {}, \
         \"latency_ms\": {{\"mean\": {:.4}, \"p50\": {:.4}, \"p90\": {:.4}, \"p99\": {:.4}}}, \
         \"throughput_msgs_per_sec\": {:.2}, \"batch_m\": {:.3}, \"max_cpu_utilization\": {:.4}, \
         \"msgs_per_instance\": {:.3}, \"bytes_per_instance\": {:.1}{}}}",
        r.kind.label(),
        r.n,
        r.offered_load,
        r.msg_size,
        r.early_latency_ms.mean,
        r.early_latency_ms.p50,
        r.early_latency_ms.p90,
        r.early_latency_ms.p99,
        r.throughput_msgs_per_sec,
        r.avg_batch_m,
        r.max_cpu_utilization,
        r.msgs_per_instance,
        r.bytes_per_instance,
        extra,
    );
}

/// The six committed trajectory files (and their quick-mode
/// basenames under [`QUICK_DIR`]).
const BENCH_FILES: [&str; 6] = [
    "BENCH_modularity.json",
    "BENCH_degraded.json",
    "BENCH_stable_write.json",
    "BENCH_snapshot_cadence.json",
    "BENCH_pipeline.json",
    "BENCH_dissemination.json",
];

/// Where `--quick` writes its smoke output, so it never clobbers the
/// committed full-resolution sweeps in the repo root.
const QUICK_DIR: &str = "target/bench-quick";

/// Every committed sweep must keep at least this many operating points
/// (the acceptance bar; quick smoke output is exempt).
const MIN_COMMITTED_POINTS: usize = 8;

/// The output path for `file`: the repo root in full mode, the
/// throwaway [`QUICK_DIR`] in quick mode.
fn bench_path(file: &str, quick: bool) -> String {
    if quick {
        format!("{QUICK_DIR}/{file}")
    } else {
        file.to_string()
    }
}

/// Wraps records in the common envelope and writes `file` (placed per
/// [`bench_path`]), then re-reads and verifies it (JSON parses, both
/// stacks; full mode additionally enforces the committed point floor).
fn write_bench(file: &str, quick: bool, benchmark: &str, records: &[String]) -> Result<(), String> {
    let path = bench_path(file, quick);
    if quick {
        std::fs::create_dir_all(QUICK_DIR).map_err(|e| format!("mkdir {QUICK_DIR}: {e}"))?;
    }
    let mut doc = String::new();
    let _ = write!(
        doc,
        "{{\n  \"benchmark\": \"{benchmark}\",\n  \"seed\": 7,\n  \
         \"units\": {{\"latency\": \"ms\", \"throughput\": \"msgs/s\"}},\n  \"points\": [\n"
    );
    for (i, r) in records.iter().enumerate() {
        doc.push_str(r);
        doc.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    doc.push_str("  ]\n}\n");
    std::fs::write(&path, &doc).map_err(|e| format!("write {path}: {e}"))?;
    verify_bench(&path, if quick { 1 } else { MIN_COMMITTED_POINTS })?;
    if quick {
        verify_quick_subset(file, records)?;
    }
    println!("wrote {path} ({} operating points)", records.len());
    Ok(())
}

/// Quick-mode regeneration audit: every smoke operating set is a
/// subset of the full-resolution one, and the simulator is
/// deterministic, so each freshly generated record must appear
/// **byte-identical** inside the committed file. A mismatch means the
/// simulation drifted since the committed sweep was generated (e.g. a
/// default-strategy regression from the dissemination layer) — the fix
/// is a deliberate full regeneration, not a silent one.
fn verify_quick_subset(file: &str, records: &[String]) -> Result<(), String> {
    let committed =
        std::fs::read_to_string(file).map_err(|e| format!("re-read committed {file}: {e}"))?;
    for rec in records {
        if !committed.contains(rec.as_str()) {
            return Err(format!(
                "{file}: freshly generated operating point is not byte-identical to the \
                 committed sweep — the simulation drifted; regenerate with \
                 `cargo run --release -p fortika-bench --bin probe` and commit the result.\n\
                 missing record:\n{rec}"
            ));
        }
    }
    println!(
        "{file}: {} smoke records byte-identical to the committed sweep",
        records.len()
    );
    Ok(())
}

/// Asserts that a bench file parses, holds at least `min_points`
/// operating points, and covers both stacks.
fn verify_bench(path: &str, min_points: usize) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("re-read {path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let points = doc
        .get("points")
        .and_then(json::Value::as_array)
        .ok_or_else(|| format!("{path}: no points array"))?;
    if points.len() < min_points {
        return Err(format!(
            "{path}: {} operating points, need at least {min_points}",
            points.len()
        ));
    }
    for want in ["modular", "monolithic"] {
        if !points
            .iter()
            .any(|p| p.get("stack").and_then(json::Value::as_str) == Some(want))
        {
            return Err(format!("{path}: no {want} points"));
        }
    }
    Ok(())
}

fn print_run_row(label: &str, r: &RunReport) {
    println!(
        "{:>14} {:>10} {:>3} {:>6.0} {:>7} | {:>9.3} {:>9.1} {:>7.2} {:>6.2} {:>8.2} {:>9.1}",
        label,
        r.kind.label(),
        r.n,
        r.offered_load,
        r.msg_size,
        r.early_latency_ms.mean,
        r.throughput_msgs_per_sec,
        r.avg_batch_m,
        r.max_cpu_utilization,
        r.msgs_per_instance,
        r.bytes_per_instance / 1024.0
    );
}

fn print_header(title: &str) {
    println!();
    println!("## {title}");
    println!(
        "{:>14} {:>10} {:>3} {:>6} {:>7} | {:>9} {:>9} {:>7} {:>6} {:>8} {:>9}",
        "point", "stack", "n", "load", "size", "lat(ms)", "thr", "M", "cpu", "msg/inst", "KB/inst"
    );
}

/// Sweep 1: the good-run modularity comparison (`BENCH_modularity.json`).
fn sweep_modularity(quick: bool, coverage: &mut CoverageReport) -> Result<(), String> {
    print_header("modularity (good runs)");
    let points = if quick { POINTS_QUICK } else { POINTS };
    let mut records = Vec::new();
    for &(n, load, size) in points {
        for kind in [StackKind::Monolithic, StackKind::Modular] {
            let mut exp = Experiment::builder(kind, n)
                .workload(Workload::constant_rate(load, size))
                .warmup_secs(1.0)
                .measure_secs(2.0)
                .seed(7)
                .build();
            let r = exp.run();
            coverage.absorb(&r.counters);
            print_run_row("good", &r);
            let mut rec = String::new();
            json_point(&mut rec, &r, "");
            records.push(rec);
        }
    }
    write_bench("BENCH_modularity.json", quick, "modularity_cost", &records)
}

/// Sweep 2: the same comparison under resource faults — a slow node
/// and/or degraded links covering the whole measurement window
/// (`BENCH_degraded.json`). Every run is oracle-audited; the recorded
/// `oracle_violations` must stay 0.
fn sweep_degraded(quick: bool, coverage: &mut CoverageReport) -> Result<(), String> {
    print_header("modularity under resource faults");
    let points = if quick {
        DEGRADED_POINTS_QUICK
    } else {
        DEGRADED_POINTS
    };
    let from = VDur::millis(1000);
    let until = VDur::millis(3000); // warm-up 1 s + measure 2 s
    let mut records = Vec::new();
    for &(n, load, size) in points {
        for &(label, slow, rate) in FAULTS {
            for kind in [StackKind::Monolithic, StackKind::Modular] {
                let mut scenario = Scenario::new();
                if slow > 1000 {
                    scenario = scenario.slow_node(ProcessId(0), slow, from, until);
                }
                if rate < 1000 {
                    scenario = scenario.degrade_link(LinkSelector::All, rate, from, until);
                }
                let mut exp = Experiment::builder(kind, n)
                    .workload(Workload::constant_rate(load, size))
                    .warmup_secs(1.0)
                    .measure_secs(2.0)
                    .seed(7)
                    .scenario(scenario)
                    .build();
                let r = exp.run();
                coverage.absorb(&r.counters);
                print_run_row(label, &r);
                let violations = r.oracle.as_ref().map_or(0, |o| o.violations.len());
                if violations > 0 {
                    return Err(format!(
                        "degraded sweep {label} ({} n={n} load={load}): {violations} oracle violations",
                        kind.label()
                    ));
                }
                let extra = format!(
                    ", \"fault\": \"{label}\", \"slow_factor_milli\": {slow}, \
                     \"degrade_rate_milli\": {rate}, \"oracle_violations\": {violations}"
                );
                let mut rec = String::new();
                json_point(&mut rec, &r, &extra);
                records.push(rec);
            }
        }
    }
    write_bench(
        "BENCH_degraded.json",
        quick,
        "modularity_under_degradation",
        &records,
    )
}

/// Sweep 3: stable-write cost from free to a 2 ms synchronous barrier
/// per persisted record (`BENCH_stable_write.json`).
fn sweep_stable_write(quick: bool, coverage: &mut CoverageReport) -> Result<(), String> {
    print_header("stable-write cost");
    let costs = if quick { STABLE_US_QUICK } else { STABLE_US };
    let (n, load, size) = (3usize, 1000.0, 1024usize);
    let mut records = Vec::new();
    for &us in costs {
        for kind in [StackKind::Monolithic, StackKind::Modular] {
            let cost = CostModel {
                stable_write: VDur::micros(us),
                ..CostModel::default()
            };
            let mut exp = Experiment::builder(kind, n)
                .workload(Workload::constant_rate(load, size))
                .warmup_secs(1.0)
                .measure_secs(2.0)
                .seed(7)
                .cost(cost)
                .build();
            let r = exp.run();
            coverage.absorb(&r.counters);
            print_run_row(&format!("{us}us"), &r);
            let extra = format!(
                ", \"stable_write_us\": {us}, \"max_durability_utilization\": {:.4}",
                r.max_durability_utilization
            );
            let mut rec = String::new();
            json_point(&mut rec, &r, &extra);
            records.push(rec);
        }
    }
    write_bench(
        "BENCH_stable_write.json",
        quick,
        "stable_write_cost",
        &records,
    )
}

/// Sweep 4: snapshot cadence × load with non-zero snapshot pricing
/// (`BENCH_snapshot_cadence.json`).
fn sweep_snapshot_cadence(quick: bool, coverage: &mut CoverageReport) -> Result<(), String> {
    print_header("snapshot cadence");
    let cadences = if quick { CADENCES_QUICK } else { CADENCES };
    let loads = if quick {
        CADENCE_LOADS_QUICK
    } else {
        CADENCE_LOADS
    };
    let (n, size) = (3usize, 1024usize);
    for &interval in cadences {
        assert!(interval > 0, "cadence sweep must keep snapshots enabled");
    }
    let mut records = Vec::new();
    for &interval in cadences {
        for &load in loads {
            for kind in [StackKind::Monolithic, StackKind::Modular] {
                // Priced durability: a 50 µs stable write, 40 µs/KiB
                // snapshot encode (install ×1.5), plus a 500 µs fixed
                // cost per snapshot — see docs/COST_MODEL.md.
                let mut cost = CostModel::with_durability(VDur::micros(50), VDur::micros(40));
                cost.snapshot_encode_fixed = VDur::micros(500);
                cost.snapshot_install_fixed = VDur::micros(500);
                let mut exp = Experiment::builder(kind, n)
                    .workload(Workload::constant_rate(load, size))
                    .warmup_secs(1.0)
                    .measure_secs(2.0)
                    .seed(7)
                    .cost(cost)
                    .stack_config(StackConfig {
                        snapshot_interval: interval,
                        ..StackConfig::default()
                    })
                    .build();
                let r = exp.run();
                coverage.absorb(&r.counters);
                print_run_row(&format!("every {interval}"), &r);
                let snapshots =
                    r.counters.event("consensus.snapshots") + r.counters.event("mono.snapshots");
                let extra = format!(
                    ", \"snapshot_interval\": {interval}, \"snapshots_in_window\": {snapshots}, \
                     \"max_durability_utilization\": {:.4}",
                    r.max_durability_utilization
                );
                let mut rec = String::new();
                json_point(&mut rec, &r, &extra);
                records.push(rec);
            }
        }
    }
    write_bench(
        "BENCH_snapshot_cadence.json",
        quick,
        "snapshot_cadence",
        &records,
    )
}

/// The wide-area network of the pipeline sweep: a 2 ms one-way
/// propagation delay makes the decision round-trip — not the CPU — the
/// thing pipelining must hide.
fn wan_net() -> NetModel {
    NetModel {
        prop_delay: VDur::millis(2),
        jitter: VDur::micros(100),
        ..NetModel::default()
    }
}

/// A modern-CPU calibration (≈10× the default Pentium-4-era speed):
/// with cheap handlers the stacks are latency-bound on [`wan_net`], the
/// regime where an in-flight instance window converts directly into
/// throughput (Ring Paxos / Chop Chop territory).
fn fast_cpu() -> CostModel {
    CostModel {
        send_fixed: VDur::micros(35),
        send_per_kib: VDur::nanos(250),
        recv_fixed: VDur::micros(40),
        recv_per_kib: VDur::nanos(350),
        dispatch: VDur::nanos(2_500),
        timer_fixed: VDur::micros(2),
        request_fixed: VDur::micros(5),
        deliver_fixed: VDur::micros(20),
        deliver_per_kib: VDur::nanos(150),
        ..CostModel::default()
    }
}

/// Sweep 5: pipelined instance execution — windowed-sequencer depth ×
/// load × network regime, both stacks (`BENCH_pipeline.json`).
///
/// Two regimes bound the story: on the paper's CPU-bound `lan`
/// calibration extra instances only buy the monolithic stack anything
/// (the modular stack's per-instance message complexity eats the CPU
/// the window frees), while on the latency-bound `wan` regime the
/// window overlaps decision round-trips and throughput climbs with
/// depth on both stacks. Self-verified: for each stack, some depth > 1
/// must beat the depth-1 throughput on at least one operating point,
/// otherwise the pipeline is not engaging and the sweep fails.
fn sweep_pipeline(quick: bool, coverage: &mut CoverageReport) -> Result<(), String> {
    print_header("pipelined instances (depth x load x regime)");
    let depths = if quick {
        PIPELINE_DEPTHS_QUICK
    } else {
        PIPELINE_DEPTHS
    };
    // (regime label, offered loads, net, cost).
    let lan_loads: &[f64] = if quick { &[4000.0] } else { &[1000.0, 4000.0] };
    let wan_loads: &[f64] = &[8000.0];
    let regimes: [(&str, &[f64], NetModel, CostModel); 2] = [
        ("lan", lan_loads, NetModel::default(), CostModel::default()),
        ("wan", wan_loads, wan_net(), fast_cpu()),
    ];
    let (n, size) = (3usize, 1024usize);
    let mut records = Vec::new();
    // (stack, regime, load) -> depth-1 baseline throughput.
    let mut baseline: Vec<(StackKind, &str, f64, f64)> = Vec::new();
    let mut speedup = [false; 2]; // [monolithic, modular]
    for (regime, loads, net, cost) in &regimes {
        for &load in *loads {
            for &depth in depths {
                for kind in [StackKind::Monolithic, StackKind::Modular] {
                    let mut exp = Experiment::builder(kind, n)
                        .workload(Workload::constant_rate(load, size))
                        .warmup_secs(1.0)
                        .measure_secs(2.0)
                        .seed(7)
                        .net(net.clone())
                        .cost(cost.clone())
                        .stack_config(StackConfig {
                            pipeline_depth: depth,
                            window: PIPELINE_WINDOW,
                            ..StackConfig::default()
                        })
                        .build();
                    let r = exp.run();
                    coverage.absorb(&r.counters);
                    print_run_row(&format!("{regime} depth {depth}"), &r);
                    if depth == 1 {
                        baseline.push((kind, regime, load, r.throughput_msgs_per_sec));
                    } else {
                        let base = baseline
                            .iter()
                            .find(|(k, g, l, _)| *k == kind && g == regime && *l == load)
                            .map(|(_, _, _, t)| *t)
                            .unwrap_or(f64::INFINITY);
                        let idx = matches!(kind, StackKind::Modular) as usize;
                        speedup[idx] |= r.throughput_msgs_per_sec > base;
                    }
                    let extra = format!(
                        ", \"regime\": \"{regime}\", \"pipeline_depth\": {depth}, \
                         \"flow_window\": {PIPELINE_WINDOW}"
                    );
                    let mut rec = String::new();
                    json_point(&mut rec, &r, &extra);
                    records.push(rec);
                }
            }
        }
    }
    for (idx, label) in [(0usize, "monolithic"), (1, "modular")] {
        if !speedup[idx] {
            return Err(format!(
                "pipeline sweep: no depth > 1 beat the depth-1 {label} throughput at any \
                 operating point — pipelining is not engaging"
            ));
        }
    }
    write_bench(
        "BENCH_pipeline.json",
        quick,
        "pipelined_instances",
        &records,
    )
}

/// Sweep 6: payload/ordering separation (`BENCH_dissemination.json`).
///
/// The monolithic baseline against the modular stack under `direct`
/// (seed-faithful per-message diffusion), `ring` and `tree`
/// dissemination, on the CPU-bound LAN calibration the paper measures.
/// Under the offload, consensus orders small fixed-size value ids
/// while batch payloads travel the topology exactly once — so the
/// modular stack sheds most of its per-message diffusion CPU.
///
/// Every run is oracle-audited (the recorded `oracle_violations` must
/// stay 0) and the sweep self-verifies its headline claims: `ring`
/// must cut msgs/instance on every operating point and by at least 3×
/// on some point (n = 7, where direct diffusion costs ~365
/// msgs/instance, carries it), and on at least one point the offload
/// must narrow the modular/monolithic throughput gap.
fn sweep_dissemination(quick: bool, coverage: &mut CoverageReport) -> Result<(), String> {
    print_header("dissemination (payload/ordering separation)");
    let points = if quick {
        DISSEM_POINTS_QUICK
    } else {
        DISSEM_POINTS
    };
    let mut records = Vec::new();
    let mut gap_narrowed = false;
    let mut best_cut = 0.0f64;
    for &(n, load, size) in points {
        // (kind, strategy): the monolithic baseline plus the modular
        // stack under all three strategies, same flow window.
        let variants = [
            (StackKind::Monolithic, Dissemination::Direct),
            (StackKind::Modular, Dissemination::Direct),
            (StackKind::Modular, Dissemination::Ring),
            (StackKind::Modular, Dissemination::Tree),
        ];
        let mut mono_thr = 0.0f64;
        let mut direct = None;
        let mut ring = None;
        for (kind, strategy) in variants {
            let mut exp = Experiment::builder(kind, n)
                .workload(Workload::constant_rate(load, size))
                .warmup_secs(1.0)
                .measure_secs(2.0)
                .seed(7)
                .stack_config(StackConfig {
                    dissemination: strategy,
                    window: DISSEM_WINDOW,
                    ..StackConfig::default()
                })
                // An empty scenario arms the delivery-invariant oracle:
                // every adeliver of every run in this sweep is audited.
                .scenario(Scenario::new())
                .build();
            let r = exp.run();
            coverage.absorb(&r.counters);
            print_run_row(strategy.label(), &r);
            let violations = r.oracle.as_ref().map_or(usize::MAX, |o| o.violations.len());
            if violations > 0 {
                return Err(format!(
                    "dissemination sweep ({} {} n={n} load={load}): {violations} oracle \
                     violations",
                    kind.label(),
                    strategy.label()
                ));
            }
            match kind {
                StackKind::Monolithic => mono_thr = r.throughput_msgs_per_sec,
                StackKind::Modular => match strategy {
                    Dissemination::Direct => direct = Some(r.clone()),
                    Dissemination::Ring => ring = Some(r.clone()),
                    Dissemination::Tree => {}
                },
            }
            let extra = format!(
                ", \"dissemination\": \"{}\", \"flow_window\": {DISSEM_WINDOW}, \
                 \"oracle_violations\": {violations}",
                strategy.label()
            );
            let mut rec = String::new();
            json_point(&mut rec, &r, &extra);
            records.push(rec);
        }
        let (direct, ring) = (direct.expect("direct run"), ring.expect("ring run"));
        if ring.msgs_per_instance >= direct.msgs_per_instance {
            return Err(format!(
                "dissemination sweep (n={n} load={load} size={size}): ring msgs/instance \
                 {:.2} did not improve on direct {:.2} — the offload is not shedding \
                 the diffusion traffic",
                ring.msgs_per_instance, direct.msgs_per_instance
            ));
        }
        best_cut = best_cut.max(direct.msgs_per_instance / ring.msgs_per_instance);
        gap_narrowed |=
            (mono_thr - ring.throughput_msgs_per_sec) < (mono_thr - direct.throughput_msgs_per_sec);
    }
    if best_cut < 3.0 {
        return Err(format!(
            "dissemination sweep: best ring msgs/instance cut vs direct is {best_cut:.2}x, \
             the headline claim needs at least 3x at some operating point"
        ));
    }
    if !gap_narrowed {
        return Err(
            "dissemination sweep: ring never narrowed the modular/monolithic throughput \
             gap at any operating point — the offload is not paying for itself"
                .to_string(),
        );
    }
    write_bench(
        "BENCH_dissemination.json",
        quick,
        "dissemination_offload",
        &records,
    )
}

/// Quick-mode reconfiguration audit: one bounded grow-then-shrink
/// scenario per stack — an `Add` and a `Remove` decided through the log
/// mid-load — traced and oracle-audited (config agreement included). A
/// violating run dumps its bounded trace window and ddmin-minimized
/// reproducer under `target/trace/` via the runner's artifact path, the
/// same globs CI's diagnostics artifact uploads.
fn reconfig_audit(coverage: &mut CoverageReport) -> Result<(), String> {
    print_header("reconfiguration (log-decided add/remove)");
    let scenario = Scenario::new()
        .add_node(ProcessId(3), VDur::millis(1300))
        .remove_node(ProcessId(1), VDur::millis(2100));
    for kind in [StackKind::Monolithic, StackKind::Modular] {
        let mut exp = Experiment::builder(kind, 3)
            .workload(Workload::constant_rate(500.0, 1024))
            .warmup_secs(1.0)
            .measure_secs(2.0)
            .seed(7)
            .scenario(scenario.clone())
            .trace(TraceConfig::on())
            .build();
        let r = exp.run();
        coverage.absorb(&r.counters);
        print_run_row("reconfig", &r);
        let reconfigs =
            r.counters.event("consensus.reconfigs") + r.counters.event("mono.reconfigs");
        if reconfigs == 0 {
            return Err(format!(
                "reconfig audit ({}): no process registered the decided changes",
                kind.label()
            ));
        }
        let violations = r.oracle.as_ref().map_or(0, |o| o.violations.len());
        if violations > 0 {
            return Err(format!(
                "reconfig audit ({}): {violations} oracle violation(s) — trace dump and \
                 minimized reproducer under target/trace/",
                kind.label()
            ));
        }
    }
    Ok(())
}

/// Where the tracing smoke writes its exports.
const TRACE_DIR: &str = "target/trace";

/// The `--trace` smoke: one traced run per stack at a moderate
/// operating point. Verifies the decomposition identity (queueing +
/// transmission + CPU = end-to-end, durability ⊆ CPU) and that the
/// JSONL / Chrome exports under [`TRACE_DIR`] re-read as well-formed.
fn trace_smoke() -> Result<(), String> {
    println!("probe --trace: tracing smoke (decomposition + exports)");
    println!(
        "{:>10} | {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7}",
        "stack", "total", "queue", "wire", "cpu", "durable", "p99", "samples"
    );
    std::fs::create_dir_all(TRACE_DIR).map_err(|e| format!("mkdir {TRACE_DIR}: {e}"))?;
    for kind in [StackKind::Monolithic, StackKind::Modular] {
        let mut exp = Experiment::builder(kind, 3)
            .workload(Workload::constant_rate(500.0, 1024))
            .warmup_secs(0.5)
            .measure_secs(1.0)
            .seed(7)
            .trace(TraceConfig::on())
            .build();
        let r = exp.run();
        let label = kind.label();
        let d = r
            .latency_decomposition
            .ok_or_else(|| format!("{label}: tracing on but no decomposition"))?;
        if d.samples == 0 {
            return Err(format!("{label}: no latency samples decomposed"));
        }
        let sum = d.queueing.mean_ms + d.transmission.mean_ms + d.cpu.mean_ms;
        if (sum - d.total.mean_ms).abs() > 1e-6 {
            return Err(format!(
                "{label}: decomposition components sum to {sum} ms, end-to-end is {} ms",
                d.total.mean_ms
            ));
        }
        println!(
            "{label:>10} | {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>7}",
            d.total.mean_ms,
            d.queueing.mean_ms,
            d.transmission.mean_ms,
            d.cpu.mean_ms,
            d.durability.mean_ms,
            d.total.p99_ms,
            d.samples
        );
        let trace = r.trace.ok_or_else(|| format!("{label}: no trace"))?;
        let jsonl_path = format!("{TRACE_DIR}/probe-{label}.jsonl");
        let chrome_path = format!("{TRACE_DIR}/probe-{label}.trace.json");
        std::fs::write(&jsonl_path, trace.to_jsonl())
            .map_err(|e| format!("write {jsonl_path}: {e}"))?;
        std::fs::write(&chrome_path, trace.to_chrome_json())
            .map_err(|e| format!("write {chrome_path}: {e}"))?;
        // Re-read and sanity-check both exports.
        let jsonl = std::fs::read_to_string(&jsonl_path)
            .map_err(|e| format!("re-read {jsonl_path}: {e}"))?;
        let meta = jsonl
            .lines()
            .last()
            .ok_or_else(|| format!("{jsonl_path}: empty"))?;
        if !meta.contains("\"meta\":true") {
            return Err(format!("{jsonl_path}: missing trailing meta line"));
        }
        let chrome = std::fs::read_to_string(&chrome_path)
            .map_err(|e| format!("re-read {chrome_path}: {e}"))?;
        let doc = json::parse(&chrome).map_err(|e| format!("{chrome_path}: {e}"))?;
        let events = doc
            .get("traceEvents")
            .and_then(json::Value::as_array)
            .ok_or_else(|| format!("{chrome_path}: no traceEvents array"))?;
        if events.is_empty() {
            return Err(format!("{chrome_path}: traceEvents is empty"));
        }
        println!(
            "wrote {jsonl_path}, {chrome_path} ({} events)",
            trace.events.len()
        );
    }
    Ok(())
}

/// Where `--fuzz-quick` archives its coverage matrices and reproducers.
const FUZZ_DIR: &str = "target/fuzz";

/// The `--fuzz-quick` smoke: one bounded steered campaign per stack.
/// Small enough for CI (≤ 32 runs per stack, plateau stop armed) yet
/// real: every run builds a cluster, injects the drawn scenario, drives
/// load and audits safety. The coverage matrix of each campaign lands
/// in [`FUZZ_DIR`] (CI uploads it); a violation ddmin-shrinks its
/// scenario, writes the minimized reproducer alongside, and fails the
/// stage.
fn fuzz_quick() -> Result<(), String> {
    println!("probe --fuzz-quick: bounded steered fuzz campaign per stack");
    std::fs::create_dir_all(FUZZ_DIR).map_err(|e| format!("mkdir {FUZZ_DIR}: {e}"))?;
    println!(
        "{:>10} | {:>5} {:>7} {:>7} {:>9}  stop",
        "stack", "runs", "batches", "cells", "families"
    );
    for kind in [StackKind::Monolithic, StackKind::Modular] {
        let label = kind.label();
        let cfg = FuzzConfig {
            batch_runs: 8,
            max_batches: 4,
            plateau_batches: 2,
            // The default fault families plus the dynamic-membership
            // family (campaigns draw log-decided adds/removes too; the
            // fuzz runner provisions the standby capacity) plus the
            // dissemination axis: about a third of the drawn scenarios
            // run the modular stack with Ring/Tree payload offload.
            profile: ChaosProfile {
                add_node_prob: 0.3,
                remove_node_prob: 0.25,
                dissemination_prob: 0.35,
                ..ChaosProfile::default()
            },
            ..FuzzConfig::new(3, 42)
        };
        let report = FuzzCampaign::new(cfg).run(fuzz_runner(kind, 3, StackConfig::default()));

        let matrix_path = format!("{FUZZ_DIR}/coverage-matrix-{label}.json");
        report
            .coverage
            .write_json(std::path::Path::new(&matrix_path))
            .map_err(|e| format!("write {matrix_path}: {e}"))?;
        // The archived artifact must re-read as well-formed JSON.
        let text = std::fs::read_to_string(&matrix_path)
            .map_err(|e| format!("re-read {matrix_path}: {e}"))?;
        let doc = json::parse(&text).map_err(|e| format!("{matrix_path}: {e}"))?;
        if doc.get("runs").and_then(json::Value::as_f64) != Some(report.coverage.runs() as f64) {
            return Err(format!("{matrix_path}: run count does not round-trip"));
        }
        let families = CoverageReport::family_names()
            .iter()
            .filter(|f| report.coverage.family_runs(f) > 0)
            .count();
        println!(
            "{label:>10} | {:>5} {:>7} {:>7} {:>9}  {:?}",
            report.runs,
            report.batches,
            report.coverage.reached_cells().len(),
            families,
            report.stop
        );
        println!("wrote {matrix_path}");

        if report.stop == StopReason::Violation {
            let failing = report
                .failure
                .expect("violation stop always carries the failing run");
            let kind_str = failing.violation.kind();
            let stack_cfg = StackConfig::default();
            let min = minimize(&failing.scenario, |candidate| {
                run_fuzz_scenario(kind, 3, &stack_cfg, candidate, failing.seed)
                    .violation
                    .as_ref()
                    .is_some_and(|v| v.kind() == kind_str)
            });
            let repro_path = format!("{FUZZ_DIR}/violation-{label}-seed{}.min.txt", failing.seed);
            let body = format!(
                "stack: {label}\nn: 3\nseed: {}\nviolation: {}\nevents: {} (of {})\n\
                 scenario: {:#?}\n",
                failing.seed,
                failing.violation,
                min.events(),
                min.original_events,
                min.scenario,
            );
            std::fs::write(&repro_path, body).map_err(|e| format!("write {repro_path}: {e}"))?;
            return Err(format!(
                "{label}: safety violation {kind_str} at seed {} — minimized reproducer \
                 ({} of {} events) written to {repro_path}",
                failing.seed,
                min.events(),
                min.original_events,
            ));
        }
    }
    Ok(())
}

/// One named sweep: takes `quick` and the campaign coverage tally,
/// runs, writes + verifies its file.
type Sweep = (
    &'static str,
    fn(bool, &mut CoverageReport) -> Result<(), String>,
);

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    if std::env::args().any(|a| a == "--trace") {
        if let Err(e) = trace_smoke() {
            eprintln!("probe: trace smoke failed: {e}");
            std::process::exit(1);
        }
        println!("\ntracing smoke passed (decomposition sums, exports well-formed)");
        return;
    }
    if std::env::args().any(|a| a == "--fuzz-quick") {
        if let Err(e) = fuzz_quick() {
            eprintln!("probe: fuzz smoke failed: {e}");
            std::process::exit(1);
        }
        println!("\nfuzz smoke passed (no safety violations, coverage matrices archived)");
        return;
    }
    if quick {
        println!("probe --quick: trimmed operating set under {QUICK_DIR}/ (CI smoke mode)");
    }
    let mut coverage = CoverageReport::new();
    let sweeps: [Sweep; 6] = [
        ("modularity", sweep_modularity),
        ("degraded", sweep_degraded),
        ("stable_write", sweep_stable_write),
        ("snapshot_cadence", sweep_snapshot_cadence),
        ("pipeline", sweep_pipeline),
        ("dissemination", sweep_dissemination),
    ];
    for (name, sweep) in sweeps {
        if let Err(e) = sweep(quick, &mut coverage) {
            eprintln!("probe: {name} sweep failed: {e}");
            std::process::exit(1);
        }
    }
    if quick {
        // The bounded dynamic-membership smoke: grow and shrink through
        // the log under audit, per stack.
        if let Err(e) = reconfig_audit(&mut coverage) {
            eprintln!("probe: reconfig audit failed: {e}");
            std::process::exit(1);
        }
        // Quick mode never touches the committed sweeps, so audit them
        // too: they must still parse, cover both stacks and hold the
        // full-resolution point floor — stale or hand-mangled committed
        // bench files fail CI here.
        for file in BENCH_FILES {
            if let Err(e) = verify_bench(file, MIN_COMMITTED_POINTS) {
                eprintln!("probe: committed bench file check failed: {e}");
                eprintln!("probe: regenerate with `cargo run --release -p fortika-bench --bin probe` and commit the result");
                std::process::exit(1);
            }
        }
        println!(
            "committed BENCH files verified ({} files)",
            BENCH_FILES.len()
        );
        // The per-branch coverage of everything this smoke run
        // exercised, archived by CI next to the violation dumps.
        let coverage_path = std::path::Path::new("target/coverage-report.json");
        if let Err(e) = coverage.write_json(coverage_path) {
            eprintln!("probe: writing {}: {e}", coverage_path.display());
            std::process::exit(1);
        }
        println!("wrote {}", coverage_path.display());
    }
    println!("\nall bench files verified (JSON parses, both stacks covered)");
}
