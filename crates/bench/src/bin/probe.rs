//! Calibration probe: prints latency/throughput at a few operating
//! points so the cost model can be tuned against the paper's shapes,
//! and writes the same numbers as machine-readable
//! `BENCH_modularity.json` so the bench trajectory accumulates across
//! commits (format documented in the top-level README).

use std::fmt::Write as _;

use fortika_core::workload::Workload;
use fortika_core::{Experiment, RunReport, StackKind};

/// The probed operating points: `(n, offered load msgs/s, payload bytes)`.
const POINTS: &[(usize, f64, usize)] = &[
    (3, 250.0, 16384),
    (3, 500.0, 16384),
    (3, 1000.0, 16384),
    (3, 2000.0, 16384),
    (3, 4000.0, 16384),
    (7, 500.0, 16384),
    (7, 2000.0, 16384),
    (3, 2000.0, 1024),
    (7, 2000.0, 1024),
    (3, 2000.0, 32768),
    (7, 2000.0, 32768),
];

/// One JSON record of the probe output.
fn json_point(out: &mut String, r: &RunReport) {
    let _ = write!(
        out,
        "    {{\"stack\": \"{}\", \"n\": {}, \"offered_load\": {}, \"msg_size\": {}, \
         \"latency_ms\": {{\"mean\": {:.4}, \"p50\": {:.4}, \"p90\": {:.4}, \"p99\": {:.4}}}, \
         \"throughput_msgs_per_sec\": {:.2}, \"batch_m\": {:.3}, \"max_cpu_utilization\": {:.4}, \
         \"msgs_per_instance\": {:.3}, \"bytes_per_instance\": {:.1}}}",
        r.kind.label(),
        r.n,
        r.offered_load,
        r.msg_size,
        r.early_latency_ms.mean,
        r.early_latency_ms.p50,
        r.early_latency_ms.p90,
        r.early_latency_ms.p99,
        r.throughput_msgs_per_sec,
        r.avg_batch_m,
        r.max_cpu_utilization,
        r.msgs_per_instance,
        r.bytes_per_instance,
    );
}

fn main() {
    println!(
        "{:>10} {:>3} {:>6} {:>7} | {:>9} {:>9} {:>7} {:>6} {:>8} {:>9}",
        "stack", "n", "load", "size", "lat(ms)", "thr", "M", "cpu", "msg/inst", "KB/inst"
    );
    let mut records = Vec::new();
    for &(n, load, size) in POINTS {
        for kind in [StackKind::Monolithic, StackKind::Modular] {
            let mut exp = Experiment::builder(kind, n)
                .workload(Workload::constant_rate(load, size))
                .warmup_secs(1.0)
                .measure_secs(2.0)
                .seed(7)
                .build();
            let r = exp.run();
            println!(
                "{:>10} {:>3} {:>6.0} {:>7} | {:>9.3} {:>9.1} {:>7.2} {:>6.2} {:>8.2} {:>9.1}",
                kind.label(),
                n,
                load,
                size,
                r.early_latency_ms.mean,
                r.throughput_msgs_per_sec,
                r.avg_batch_m,
                r.max_cpu_utilization,
                r.msgs_per_instance,
                r.bytes_per_instance / 1024.0
            );
            records.push(r);
        }
    }

    // Machine-readable trajectory point (see README "Bench trajectory").
    let mut json = String::new();
    json.push_str("{\n  \"benchmark\": \"modularity_cost\",\n  \"seed\": 7,\n");
    json.push_str("  \"units\": {\"latency\": \"ms\", \"throughput\": \"msgs/s\"},\n");
    json.push_str("  \"points\": [\n");
    for (i, r) in records.iter().enumerate() {
        json_point(&mut json, r);
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_modularity.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path} ({} operating points)", records.len()),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
