//! Calibration probe: prints latency/throughput at a few operating
//! points so the cost model can be tuned against the paper's shapes.

use fortika_core::workload::Workload;
use fortika_core::{Experiment, StackKind};

fn main() {
    println!(
        "{:>10} {:>3} {:>6} {:>7} | {:>9} {:>9} {:>7} {:>6} {:>8} {:>9}",
        "stack", "n", "load", "size", "lat(ms)", "thr", "M", "cpu", "msg/inst", "KB/inst"
    );
    for &(n, load, size) in &[
        (3usize, 250.0, 16384usize),
        (3, 500.0, 16384),
        (3, 1000.0, 16384),
        (3, 2000.0, 16384),
        (3, 4000.0, 16384),
        (7, 500.0, 16384),
        (7, 2000.0, 16384),
        (3, 2000.0, 1024),
        (7, 2000.0, 1024),
        (3, 2000.0, 32768),
        (7, 2000.0, 32768),
    ] {
        for kind in [StackKind::Monolithic, StackKind::Modular] {
            let mut exp = Experiment::builder(kind, n)
                .workload(Workload::constant_rate(load, size))
                .warmup_secs(1.0)
                .measure_secs(2.0)
                .seed(7)
                .build();
            let r = exp.run();
            println!(
                "{:>10} {:>3} {:>6.0} {:>7} | {:>9.3} {:>9.1} {:>7.2} {:>6.2} {:>8.2} {:>9.1}",
                kind.label(),
                n,
                load,
                size,
                r.early_latency_ms.mean,
                r.throughput_msgs_per_sec,
                r.avg_batch_m,
                r.max_cpu_utilization,
                r.msgs_per_instance,
                r.bytes_per_instance / 1024.0
            );
        }
    }
}
