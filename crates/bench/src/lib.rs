//! Shared plumbing for the benchmark harnesses.
//!
//! Each paper table/figure has its own `harness = false` bench target in
//! `benches/`; this crate holds the code they share: sweep helpers,
//! table printing and the `FORTIKA_FULL` switch between the quick
//! default sweep and the full paper-resolution sweep.

use fortika_core::workload::Workload;
use fortika_core::{Experiment, StackKind, Summary};

/// True when the full (paper-resolution) sweep was requested via the
/// `FORTIKA_FULL=1` environment variable.
pub fn full_sweep() -> bool {
    std::env::var("FORTIKA_FULL").is_ok_and(|v| v == "1")
}

/// Seeds used for replicated runs (fewer in quick mode).
pub fn seeds() -> Vec<u64> {
    if full_sweep() {
        vec![11, 22, 33, 44, 55]
    } else {
        vec![11, 22, 33]
    }
}

/// Runs one operating point of the paper's evaluation.
pub fn run_point(
    kind: StackKind,
    n: usize,
    offered_load: f64,
    msg_size: usize,
    measure_secs: f64,
) -> Summary {
    let mut exp = Experiment::builder(kind, n)
        .workload(Workload::constant_rate(offered_load, msg_size))
        .warmup_secs(1.0)
        .measure_secs(measure_secs)
        .build();
    exp.run_replicated(&seeds())
}

/// Prints a gnuplot-style table header.
pub fn print_header(title: &str, xlabel: &str, columns: &[String]) {
    println!();
    println!("# {title}");
    print!("# {xlabel:>12}");
    for c in columns {
        print!(" {c:>26}");
    }
    println!();
}

/// Prints one row: x value plus `mean ± ci` per series.
pub fn print_row(x: f64, cells: &[(f64, f64)]) {
    print!("  {x:>12.0}");
    for (mean, ci) in cells {
        print!(" {:>17.3} ±{:>7.3}", mean, ci);
    }
    println!();
}

/// The four stack/size series every figure plots.
pub fn figure_series() -> Vec<(StackKind, usize, String)> {
    vec![
        (StackKind::Monolithic, 3, "n=3 monolithic".to_string()),
        (StackKind::Modular, 3, "n=3 modular".to_string()),
        (StackKind::Monolithic, 7, "n=7 monolithic".to_string()),
        (StackKind::Modular, 7, "n=7 modular".to_string()),
    ]
}
