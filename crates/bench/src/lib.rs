//! # fortika-bench — the paper's evaluation as benchmark harnesses
//!
//! Each figure of the paper's evaluation (§5) has its own
//! `harness = false` bench target under `benches/`, reproducing one
//! plot over the simulated testbed:
//!
//! * `fig8_latency_vs_load` / `fig9_latency_vs_size` — early latency
//!   against offered load and message size;
//! * `fig10_throughput_vs_load` / `fig11_throughput_vs_size` — the
//!   throughput counterparts;
//! * `analysis_messages` / `analysis_data` — the §5.2 analytical
//!   message/byte counts cross-checked against simulation counters;
//! * `ablation_optimizations` / `ablation_flow_control` — the
//!   monolithic optimizations O1–O3 toggled one by one, and the flow
//!   window swept;
//! * `micro` — micro-benchmarks of the simulation substrate itself.
//!
//! Two binaries complement them: `probe` prints calibration tables and
//! writes the four machine-readable `BENCH_*.json` trajectory files —
//! the modularity sweep, the resource-fault (degraded links / slow
//! nodes) sweep, the stable-write cost sweep and the snapshot-cadence
//! sweep (formats in the top-level README, knobs in
//! `docs/COST_MODEL.md`) — then re-reads and verifies each through
//! [`json`]; `crashprobe` exercises the crash-recovery path under
//! load.
//!
//! This crate holds the code they share: sweep helpers, gnuplot-style
//! table printing, the dependency-free [`json`] validator, and the
//! `FORTIKA_FULL` switch between the quick default sweep and the full
//! paper-resolution sweep.
//!
//! # Example
//!
//! ```no_run
//! use fortika_bench::{figure_series, run_point};
//!
//! // One operating point of Fig. 8: n = 3, 1 000 msgs/s, 16 KiB.
//! for (kind, n, label) in figure_series() {
//!     let summary = run_point(kind, n, 1000.0, 16 * 1024, 2.0);
//!     println!("{label}: {:.2} ms", summary.early_latency_ms.mean);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use fortika_core::workload::Workload;
use fortika_core::{Experiment, StackKind, Summary};

/// True when the full (paper-resolution) sweep was requested via the
/// `FORTIKA_FULL=1` environment variable.
pub fn full_sweep() -> bool {
    std::env::var("FORTIKA_FULL").is_ok_and(|v| v == "1")
}

/// Seeds used for replicated runs (fewer in quick mode).
pub fn seeds() -> Vec<u64> {
    if full_sweep() {
        vec![11, 22, 33, 44, 55]
    } else {
        vec![11, 22, 33]
    }
}

/// Runs one operating point of the paper's evaluation.
pub fn run_point(
    kind: StackKind,
    n: usize,
    offered_load: f64,
    msg_size: usize,
    measure_secs: f64,
) -> Summary {
    let mut exp = Experiment::builder(kind, n)
        .workload(Workload::constant_rate(offered_load, msg_size))
        .warmup_secs(1.0)
        .measure_secs(measure_secs)
        .build();
    exp.run_replicated(&seeds())
}

/// Prints a gnuplot-style table header.
pub fn print_header(title: &str, xlabel: &str, columns: &[String]) {
    println!();
    println!("# {title}");
    print!("# {xlabel:>12}");
    for c in columns {
        print!(" {c:>26}");
    }
    println!();
}

/// Prints one row: x value plus `mean ± ci` per series.
pub fn print_row(x: f64, cells: &[(f64, f64)]) {
    print!("  {x:>12.0}");
    for (mean, ci) in cells {
        print!(" {:>17.3} ±{:>7.3}", mean, ci);
    }
    println!();
}

/// The four stack/size series every figure plots.
pub fn figure_series() -> Vec<(StackKind, usize, String)> {
    vec![
        (StackKind::Monolithic, 3, "n=3 monolithic".to_string()),
        (StackKind::Modular, 3, "n=3 modular".to_string()),
        (StackKind::Monolithic, 7, "n=7 monolithic".to_string()),
        (StackKind::Modular, 7, "n=7 modular".to_string()),
    ]
}
