//! A minimal JSON parser for validating the `BENCH_*.json` files the
//! `probe` binary emits.
//!
//! The bench files are written with hand-rolled formatting (the
//! workspace is dependency-free by design), so nothing would catch a
//! malformed emitter until a downstream consumer chokes. This module
//! closes the loop: `probe` re-reads every file it writes and fails
//! loudly if the JSON does not parse or does not cover both stacks —
//! which is what the CI `probe --quick` step asserts.
//!
//! Strings support the common escapes (`\"`, `\\`, `\/`, `\n`, `\t`,
//! `\r`, `\b`, `\f`, `\uXXXX` validated but kept escaped); numbers are
//! parsed through `f64`. This is a *validator with accessors*, not a
//! general-purpose serde replacement.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, via `f64`.
    Number(f64),
    /// A string (escapes resolved).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Keys are unique; a duplicate key is a parse error
    /// (the bench emitter must never produce one).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member `key` of an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string content, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }
}

/// A parse error: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

/// Parses `text` as a single JSON document (trailing whitespace only).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing content after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.i,
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal(b"true", Value::Bool(true)),
            Some(b'f') => self.literal(b"false", Value::Bool(false)),
            Some(b'n') => self.literal(b"null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &[u8], v: Value) -> Result<Value, ParseError> {
        if self.b[self.i..].starts_with(lit) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(self.err("malformed literal"))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if m.insert(key, val).is_some() {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            return Ok(Value::Object(m));
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Array(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(Value::Array(v));
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            if !hex.iter().all(u8::is_ascii_hexdigit) {
                                return Err(self.err("malformed \\u escape"));
                            }
                            // Validated but kept escaped: the bench
                            // emitter never writes non-ASCII.
                            out.push_str("\\u");
                            out.push_str(std::str::from_utf8(hex).expect("hex digits"));
                            self.i += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.i += 1;
                }
                Some(&c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(&c) => {
                    // Multi-byte UTF-8 sequences pass through bytewise;
                    // the input is a &str so they are well-formed.
                    out.push_str(
                        std::str::from_utf8(&self.b[self.i..self.i + utf8_len(c)])
                            .expect("input is valid UTF-8"),
                    );
                    self.i += utf8_len(c);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.i;
        self.eat(b'-');
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("malformed number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_shaped_documents() {
        let doc = r#"{
  "benchmark": "stable_write",
  "seed": 7,
  "points": [
    {"stack": "modular", "n": 3, "latency_ms": {"mean": 12.5}, "ok": true},
    {"stack": "monolithic", "n": 3, "latency_ms": {"mean": -8.25e-1}, "note": null}
  ]
}"#;
        let v = parse(doc).expect("parses");
        assert_eq!(
            v.get("benchmark").and_then(Value::as_str),
            Some("stable_write")
        );
        let pts = v.get("points").and_then(Value::as_array).expect("array");
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].get("stack").and_then(Value::as_str), Some("modular"));
        assert_eq!(
            pts[1]
                .get("latency_ms")
                .and_then(|l| l.get("mean"))
                .and_then(Value::as_f64),
            Some(-0.825)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, 2,]",
            "{\"a\": 1,}",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "{\"dup\": 1, \"dup\": 2}",
            "nul",
            "01a",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input: {bad:?}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\nd""#).expect("escape parse");
        assert_eq!(v.as_str(), Some("a\"b\\c\nd"));
        assert!(parse(r#""bad \u12g4 escape""#).is_err());
    }
}
