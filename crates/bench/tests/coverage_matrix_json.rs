//! The coverage matrix JSON round-trips through `fortika_bench::json`.
//!
//! CI archives `CoverageReport::to_json` artifacts; this locks the
//! serialization to something the workspace's own parser (the one
//! `probe` uses to self-verify committed bench JSON) actually accepts,
//! and that every branch, family and matrix cell survives the trip.

use fortika_bench::json;
use fortika_chaos::{ChaosProfile, CoverageReport, Scenario};
use fortika_net::Counters;

fn campaign_report() -> CoverageReport {
    let mut report = CoverageReport::new();
    for seed in 0..10u64 {
        let scenario = Scenario::random(4, seed, &ChaosProfile::default());
        let mut counters = Counters::new();
        if scenario.families().contains(&"crash") {
            counters.bump("mono.round_changes", 1 + seed);
            counters.bump("consensus.state_transfers", 1);
        }
        if scenario.pipeline_depth() > 1 {
            counters.bump("abcast.pipelined_proposals", seed);
        }
        report.absorb_with_scenario(&counters, &scenario);
    }
    report
}

#[test]
fn coverage_json_parses_and_preserves_every_field() {
    let report = campaign_report();
    let parsed = json::parse(&report.to_json()).expect("coverage JSON must parse");

    assert_eq!(
        parsed.get("runs").and_then(|v| v.as_f64()),
        Some(report.runs() as f64)
    );

    // Every tracked branch appears with its exact totals.
    let branches = parsed.get("branches").expect("branches object");
    for name in CoverageReport::branch_names() {
        let b = branches
            .get(name)
            .unwrap_or_else(|| panic!("branch {name}"));
        assert_eq!(
            b.get("events").and_then(|v| v.as_f64()),
            Some(report.total(name) as f64),
            "branch {name} events"
        );
    }

    // Every family appears with its run count and exactly the non-zero
    // cells the in-memory matrix holds.
    let families = parsed.get("families").expect("families object");
    for family in CoverageReport::family_names() {
        let f = families
            .get(family)
            .unwrap_or_else(|| panic!("family {family}"));
        assert_eq!(
            f.get("runs").and_then(|v| v.as_f64()),
            Some(report.family_runs(family) as f64),
            "family {family} runs"
        );
        let cells = f.get("cells").expect("cells object");
        for branch in CoverageReport::branch_names() {
            let expected = report.cell(family, branch);
            let got = cells.get(branch).and_then(|v| v.as_f64());
            if expected > 0 {
                assert_eq!(got, Some(expected as f64), "cell {family}/{branch}");
            } else {
                assert_eq!(got, None, "zero cell {family}/{branch} serialized");
            }
        }
    }

    // The missed list round-trips as strings.
    let missed: Vec<&str> = parsed
        .get("missed")
        .and_then(|v| v.as_array())
        .expect("missed array")
        .iter()
        .filter_map(|v| v.as_str())
        .collect();
    assert_eq!(missed, report.missed());

    // Determinism: same report, same bytes.
    assert_eq!(report.to_json(), campaign_report().to_json());
}

#[test]
fn empty_report_round_trips_too() {
    let empty = CoverageReport::new();
    let parsed = json::parse(&empty.to_json()).expect("empty coverage JSON must parse");
    assert_eq!(parsed.get("runs").and_then(|v| v.as_f64()), Some(0.0));
    let missed = parsed
        .get("missed")
        .and_then(|v| v.as_array())
        .expect("missed array");
    assert_eq!(missed.len(), CoverageReport::branch_names().len());
}
