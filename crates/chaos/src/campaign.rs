//! Feedback-directed fuzz campaigns: generate, run, fold coverage,
//! re-steer.
//!
//! [`FuzzCampaign`] closes the loop that [`CoverageReport`] opened:
//! instead of drawing every scenario from a fixed [`ChaosProfile`], it
//! runs scenarios in batches, folds each run's counters *and scenario*
//! into the co-occurrence matrix, and re-steers the profile between
//! batches ([`ChaosProfile::steered`]) so later batches lean toward
//! the family × branch cells no earlier run witnessed. It stops on the
//! first oracle violation, on a coverage plateau (no new cells for a
//! configurable number of batches), or when the run budget is spent.
//!
//! The campaign is generic over *how* a scenario is executed: it hands
//! each generated scenario plus a per-run seed to a caller-supplied
//! runner closure and gets back counters and an optional
//! [`Violation`]. `fortika-core` provides the standard cluster-backed
//! runner (`fuzz_runner`); tests can substitute anything deterministic.
//!
//! Reproducibility: per-run seeds come from one derived RNG stream of
//! the campaign seed, drawn identically whether steering is on or off
//! — so a steered and an unsteered campaign with the same seed and
//! budget differ *only* in the scenarios those seeds expand to, which
//! is exactly what an equal-budget coverage comparison wants. Every
//! failure is reported with its per-run seed: `Scenario::random(n,
//! seed, profile)` at that batch's profile regenerates it, and the
//! seed doubles as the cluster seed for a bit-for-bit replay.

use fortika_net::Counters;
use fortika_sim::DetRng;

use crate::coverage::CoverageReport;
use crate::oracle::Violation;
use crate::scenario::{ChaosProfile, Scenario};

/// Budget and steering knobs of a [`FuzzCampaign`].
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Group size every generated scenario targets.
    pub n: usize,
    /// Campaign seed: the single root of every per-run seed.
    pub seed: u64,
    /// Scenarios per batch (steering is recomputed between batches).
    pub batch_runs: usize,
    /// Upper bound on batches (total budget = `batch_runs ×
    /// max_batches` runs).
    pub max_batches: usize,
    /// Stop after this many consecutive batches that reach no new
    /// matrix cell.
    pub plateau_batches: usize,
    /// The base generation profile (also the fixed profile when
    /// steering is off).
    pub profile: ChaosProfile,
    /// Re-steer the profile from accumulated coverage between batches;
    /// `false` runs the whole budget at the base profile.
    pub steer: bool,
}

impl FuzzConfig {
    /// A small default campaign over a group of `n`: 6 batches of 8
    /// runs, plateau after 2 flat batches, steering on, default
    /// profile.
    pub fn new(n: usize, seed: u64) -> Self {
        FuzzConfig {
            n,
            seed,
            batch_runs: 8,
            max_batches: 6,
            plateau_batches: 2,
            profile: ChaosProfile::default(),
            steer: true,
        }
    }
}

/// What one scenario execution reports back to the campaign.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The run's final cluster counters (folded into the coverage
    /// matrix).
    pub counters: Counters,
    /// The first oracle violation, if the run failed.
    pub violation: Option<Violation>,
}

/// Why a campaign stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// A run tripped the oracle ([`CampaignReport::failure`] is set).
    Violation,
    /// No new matrix cell for [`FuzzConfig::plateau_batches`] batches.
    Plateau,
    /// The full `batch_runs × max_batches` budget ran clean.
    BudgetExhausted,
}

/// A failing run: everything needed to replay and shrink it.
#[derive(Debug, Clone)]
pub struct FailingRun {
    /// The generated scenario that tripped the oracle.
    pub scenario: Scenario,
    /// Its per-run seed (scenario generation *and* cluster seed).
    pub seed: u64,
    /// The violation the oracle reported.
    pub violation: Violation,
}

/// The outcome of [`FuzzCampaign::run`].
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Accumulated event-level coverage of every executed run.
    pub coverage: CoverageReport,
    /// Scenarios executed.
    pub runs: usize,
    /// Batches completed (a batch interrupted by a violation counts).
    pub batches: usize,
    /// Why the campaign stopped.
    pub stop: StopReason,
    /// The failing run, when [`StopReason::Violation`].
    pub failure: Option<FailingRun>,
}

/// The batch loop: draw a batch of scenarios, execute them through the
/// runner closure, fold coverage, re-steer the profile, repeat until a
/// violation, a coverage plateau, or the batch budget ends.
///
/// # Example (synthetic runner)
///
/// ```
/// use fortika_chaos::{FuzzCampaign, FuzzConfig, RunOutcome, StopReason};
/// use fortika_net::Counters;
///
/// let report = FuzzCampaign::new(FuzzConfig::new(4, 7)).run(|scenario, _seed| {
///     let mut counters = Counters::new();
///     // A fake "protocol" that only round-changes under crashes.
///     if scenario.families().contains(&"crash") {
///         counters.bump("mono.round_changes", 1);
///     }
///     RunOutcome { counters, violation: None }
/// });
/// assert!(report.runs > 0);
/// assert_ne!(report.stop, StopReason::Violation);
/// ```
#[derive(Debug, Clone)]
pub struct FuzzCampaign {
    cfg: FuzzConfig,
}

impl FuzzCampaign {
    /// Builds a campaign over `cfg`.
    pub fn new(cfg: FuzzConfig) -> Self {
        assert!(cfg.n >= 2, "chaos needs at least two processes");
        assert!(cfg.batch_runs > 0, "batches must contain runs");
        FuzzCampaign { cfg }
    }

    /// Runs the campaign: `runner` executes one `(scenario, seed)`
    /// pair — deterministically, so failures replay — and the campaign
    /// folds, steers and stops as configured.
    pub fn run(self, mut runner: impl FnMut(&Scenario, u64) -> RunOutcome) -> CampaignReport {
        let cfg = self.cfg;
        // One derived stream yields every per-run seed, independent of
        // steering decisions: equal budgets consume equal seeds.
        let mut seeds = DetRng::derive(cfg.seed, 0xFC27);
        let mut coverage = CoverageReport::new();
        let mut runs = 0usize;
        let mut batches = 0usize;
        let mut best_cells = 0usize;
        let mut flat_batches = 0usize;

        for _ in 0..cfg.max_batches {
            let profile = if cfg.steer {
                cfg.profile.steered(&coverage)
            } else {
                cfg.profile.clone()
            };
            batches += 1;
            for _ in 0..cfg.batch_runs {
                let seed = seeds.next_u64();
                let scenario = Scenario::random(cfg.n, seed, &profile);
                let outcome = runner(&scenario, seed);
                coverage.absorb_with_scenario(&outcome.counters, &scenario);
                runs += 1;
                if let Some(violation) = outcome.violation {
                    return CampaignReport {
                        coverage,
                        runs,
                        batches,
                        stop: StopReason::Violation,
                        failure: Some(FailingRun {
                            scenario,
                            seed,
                            violation,
                        }),
                    };
                }
            }
            let cells = coverage.reached_cells().len();
            if cells > best_cells {
                best_cells = cells;
                flat_batches = 0;
            } else {
                flat_batches += 1;
                if flat_batches >= cfg.plateau_batches {
                    return CampaignReport {
                        coverage,
                        runs,
                        batches,
                        stop: StopReason::Plateau,
                        failure: None,
                    };
                }
            }
        }
        CampaignReport {
            coverage,
            runs,
            batches,
            stop: StopReason::BudgetExhausted,
            failure: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioEvent;
    use fortika_net::{MsgId, ProcessId};

    /// A synthetic protocol: which branches "fire" is a pure function
    /// of the scenario's families, so campaigns are fully
    /// deterministic without a cluster.
    fn synthetic(scenario: &Scenario) -> Counters {
        let mut counters = Counters::new();
        for family in scenario.families() {
            match family {
                "crash" => counters.bump("mono.round_changes", 1),
                "restart" => counters.bump("consensus.join_requests", 1),
                "partition" => counters.bump("consensus.gap_requests", 1),
                "lossy" => counters.bump("abcast.retransmits", 1),
                "duplicate" => counters.bump("consensus.tag_misses", 1),
                "pipelined" => counters.bump("abcast.pipelined_proposals", 1),
                _ => {}
            }
        }
        counters
    }

    #[test]
    fn campaigns_replay_bit_for_bit() {
        let run = || {
            FuzzCampaign::new(FuzzConfig::new(4, 42)).run(|s, _| RunOutcome {
                counters: synthetic(s),
                violation: None,
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.stop, b.stop);
        assert_eq!(a.coverage.to_json(), b.coverage.to_json());
    }

    #[test]
    fn steering_consumes_the_same_seed_sequence() {
        // Steered and unsteered campaigns over the same seed must hand
        // the runner the same per-run seeds in the same order — only
        // the scenarios those seeds expand to may differ.
        let seeds_of = |steer: bool| {
            let mut seen = Vec::new();
            let cfg = FuzzConfig {
                steer,
                plateau_batches: usize::MAX, // run the full budget
                ..FuzzConfig::new(4, 9)
            };
            FuzzCampaign::new(cfg).run(|s, seed| {
                seen.push(seed);
                RunOutcome {
                    counters: synthetic(s),
                    violation: None,
                }
            });
            seen
        };
        assert_eq!(seeds_of(true), seeds_of(false));
    }

    #[test]
    fn violation_stops_the_campaign_and_reports_the_run() {
        let mut executed = 0usize;
        let report = FuzzCampaign::new(FuzzConfig::new(4, 3)).run(|s, _| {
            executed += 1;
            let violation = s
                .events()
                .iter()
                .any(|ev| matches!(ev, ScenarioEvent::Crash { .. }))
                .then(|| Violation::DuplicateDelivery {
                    process: ProcessId(0),
                    id: MsgId::new(ProcessId(0), 1),
                });
            RunOutcome {
                counters: synthetic(s),
                violation,
            }
        });
        assert_eq!(report.stop, StopReason::Violation);
        let failure = report.failure.expect("failing run recorded");
        assert_eq!(failure.violation.kind(), "DuplicateDelivery");
        assert!(!failure.scenario.crashed().is_empty() || !failure.scenario.restarted().is_empty());
        assert_eq!(report.runs, executed, "stops at the failing run");
        assert!(report.runs < 48, "did not run the whole budget");
    }

    #[test]
    fn flat_coverage_plateaus_early() {
        // A runner that never reaches anything: after plateau_batches
        // flat batches the campaign stops without spending the budget.
        let cfg = FuzzConfig {
            plateau_batches: 2,
            max_batches: 10,
            ..FuzzConfig::new(4, 1)
        };
        let report = FuzzCampaign::new(cfg).run(|_, _| RunOutcome {
            counters: Counters::new(),
            violation: None,
        });
        assert_eq!(report.stop, StopReason::Plateau);
        assert_eq!(report.batches, 2);
        assert_eq!(report.runs, 16);
    }

    #[test]
    fn steering_boosts_profiles_between_batches() {
        // After one batch the synthetic protocol has covered a few
        // cells for the families that appeared; the steered profile
        // must boost-only relative to the base and stay within caps.
        let mut coverage = CoverageReport::new();
        let base = ChaosProfile::default();
        for seed in 0..8u64 {
            let s = Scenario::random(4, seed, &base);
            coverage.absorb_with_scenario(&synthetic(&s), &s);
        }
        let steered = base.steered(&coverage);
        for (steered_p, base_p) in [
            (steered.crash_prob, base.crash_prob),
            (steered.partition_prob, base.partition_prob),
            (steered.loss_prob, base.loss_prob),
            (steered.dup_prob, base.dup_prob),
            (steered.delay_prob, base.delay_prob),
            (steered.degrade_prob, base.degrade_prob),
            (steered.slow_prob, base.slow_prob),
            (steered.false_suspicion_prob, base.false_suspicion_prob),
        ] {
            assert!(steered_p >= base_p, "steering must not lower a knob");
            assert!(steered_p <= 0.9 + 1e-12, "steering cap exceeded");
        }
        // Disabled families stay disabled.
        let quiet = ChaosProfile {
            crash_prob: 0.0,
            ..base.clone()
        };
        assert_eq!(quiet.steered(&coverage).crash_prob, 0.0);
        // Empty report: identity.
        let empty = CoverageReport::new();
        assert_eq!(format!("{:?}", base.steered(&empty)), format!("{base:?}"));
    }
}
