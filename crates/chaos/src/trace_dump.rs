//! Violation trace dumps: when the oracle reports a safety violation
//! during a traced run, write the bounded event window around the
//! offending process to disk so the failure is inspectable without a
//! re-run.
//!
//! Two artifacts per dump, both deterministic for a given `(scenario,
//! seed)` pair:
//!
//! * `<stem>.jsonl` — one JSON object per event plus a trailing meta
//!   line (`Trace::to_jsonl`), greppable and diffable;
//! * `<stem>.trace.json` — Chrome trace-event format
//!   (`Trace::to_chrome_json`), loadable in Perfetto / `chrome://tracing`
//!   to see the violating instance's lifecycle spans on a timeline.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use fortika_trace::Trace;

use crate::oracle::OracleReport;

/// How many events involving the offending process a dump keeps. Bounds
/// the artifact size regardless of the run length or buffer capacity.
pub const DUMP_WINDOW: usize = 512;

/// Writes the bounded trace window around the first violation's
/// offending process into `dir` (created if missing) and returns the
/// paths written, `[jsonl, chrome]`.
///
/// The window anchors on [`Violation::process`]; a violation that
/// implicates no single process ([`Violation::MissingDelivery`]) falls
/// back to the full (already ring-bounded) trace. Returns `Ok(vec![])`
/// without touching the filesystem when the report has no violations.
///
/// The file stem is `violation-<label>` — pass something that
/// identifies the run (e.g. `"modular-seed42"`); dumps of the same run
/// are byte-identical, so overwriting is harmless.
///
/// [`Violation::process`]: crate::Violation::process
/// [`Violation::MissingDelivery`]: crate::Violation::MissingDelivery
pub fn dump_violation_trace(
    trace: &Trace,
    report: &OracleReport,
    dir: &Path,
    label: &str,
) -> io::Result<Vec<PathBuf>> {
    let Some(violation) = report.violations.first() else {
        return Ok(Vec::new());
    };
    let window = match violation.process() {
        Some(pid) => trace.around_pid(pid.0, DUMP_WINDOW),
        None => trace.clone(),
    };
    fs::create_dir_all(dir)?;
    let jsonl_path = dir.join(format!("violation-{label}.jsonl"));
    let chrome_path = dir.join(format!("violation-{label}.trace.json"));
    fs::write(&jsonl_path, window.to_jsonl())?;
    fs::write(&chrome_path, window.to_chrome_json())?;
    Ok(vec![jsonl_path, chrome_path])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Violation;
    use fortika_net::{MsgId, ProcessId};
    use fortika_trace::{TraceBuffer, TraceData};

    fn sample_trace() -> Trace {
        let mut b = TraceBuffer::new(64);
        for i in 0..6u64 {
            b.push(
                i * 1000,
                TraceData::Span {
                    pid: (i % 3) as u16,
                    stack: "consensus",
                    instance: i,
                    phase: "decided",
                    detail: 0,
                },
            );
        }
        b.finish()
    }

    #[test]
    fn clean_report_writes_nothing() {
        let report = OracleReport {
            violations: vec![],
            deliveries: 10,
            common_order: vec![],
        };
        let dir = std::env::temp_dir().join("fortika-dump-clean");
        let written = dump_violation_trace(&sample_trace(), &report, &dir, "x").unwrap();
        assert!(written.is_empty());
        assert!(!dir.join("violation-x.jsonl").exists());
    }

    #[test]
    fn violation_dump_windows_on_offender() {
        let report = OracleReport {
            violations: vec![Violation::DuplicateDelivery {
                process: ProcessId(1),
                id: MsgId::new(ProcessId(0), 7),
            }],
            deliveries: 10,
            common_order: vec![],
        };
        let dir = std::env::temp_dir().join("fortika-dump-test");
        let written = dump_violation_trace(&sample_trace(), &report, &dir, "unit").unwrap();
        assert_eq!(written.len(), 2);
        let jsonl = fs::read_to_string(&written[0]).unwrap();
        // Only pid 1's events (instances 1 and 4) plus the meta line.
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"instance\":1"));
        assert!(lines[1].contains("\"instance\":4"));
        assert!(lines[2].contains("\"meta\":true"));
        let chrome = fs::read_to_string(&written[1]).unwrap();
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("consensus #1"));
    }
}
