//! Violation trace dumps: when the oracle reports a safety violation
//! during a traced run, write the bounded event window around the
//! offending process to disk so the failure is inspectable without a
//! re-run.
//!
//! Two artifacts per dump, both deterministic for a given `(scenario,
//! seed)` pair:
//!
//! * `<stem>.jsonl` — one JSON object per event plus a trailing meta
//!   line (`Trace::to_jsonl`), greppable and diffable;
//! * `<stem>.trace.json` — Chrome trace-event format
//!   (`Trace::to_chrome_json`), loadable in Perfetto / `chrome://tracing`
//!   to see the violating instance's lifecycle spans on a timeline.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use fortika_trace::Trace;

use crate::oracle::OracleReport;

/// How many events involving the offending process a dump keeps. Bounds
/// the artifact size regardless of the run length or buffer capacity.
pub const DUMP_WINDOW: usize = 512;

/// Writes the bounded trace window around the first violation's
/// offending process into `dir` (created if missing) and returns the
/// paths written, `[jsonl, chrome]`.
///
/// The window anchors on [`Violation::process`]; a violation that
/// implicates no single process ([`Violation::MissingDelivery`]) falls
/// back to the full (already ring-bounded) trace. Returns `Ok(vec![])`
/// without touching the filesystem when the report has no violations.
///
/// The file stem is `violation-<label>` — pass something that
/// identifies the run; campaign callers include the campaign seed and
/// per-run seed (e.g. `"modular-campaign7-seed42"`) so every violation
/// of a multi-violation campaign keeps its own dump. Collisions are
/// detected, not clobbered: re-dumping the same run overwrites its
/// byte-identical files in place, but a label whose existing dump holds
/// *different* bytes gets a `-2`, `-3`, … suffix instead — a prior
/// counterexample is never silently destroyed.
///
/// [`Violation::process`]: crate::Violation::process
/// [`Violation::MissingDelivery`]: crate::Violation::MissingDelivery
pub fn dump_violation_trace(
    trace: &Trace,
    report: &OracleReport,
    dir: &Path,
    label: &str,
) -> io::Result<Vec<PathBuf>> {
    let Some(violation) = report.violations.first() else {
        return Ok(Vec::new());
    };
    let window = match violation.process() {
        Some(pid) => trace.around_pid(pid.0, DUMP_WINDOW),
        None => trace.clone(),
    };
    fs::create_dir_all(dir)?;
    let jsonl = window.to_jsonl();
    let chrome = window.to_chrome_json();
    let (jsonl_path, chrome_path) = unclobbered_paths(dir, label, &jsonl, &chrome);
    fs::write(&jsonl_path, jsonl)?;
    fs::write(&chrome_path, chrome)?;
    Ok(vec![jsonl_path, chrome_path])
}

/// Picks the first `violation-<label>[-k]` stem whose files are either
/// absent or already byte-identical to the dump about to be written.
fn unclobbered_paths(dir: &Path, label: &str, jsonl: &str, chrome: &str) -> (PathBuf, PathBuf) {
    for k in 1usize.. {
        let stem = if k == 1 {
            format!("violation-{label}")
        } else {
            format!("violation-{label}-{k}")
        };
        let jsonl_path = dir.join(format!("{stem}.jsonl"));
        let chrome_path = dir.join(format!("{stem}.trace.json"));
        let same = |path: &Path, content: &str| match fs::read_to_string(path) {
            Ok(existing) => existing == content,
            Err(_) => true, // absent (or unreadable): free to write
        };
        if same(&jsonl_path, jsonl) && same(&chrome_path, chrome) {
            return (jsonl_path, chrome_path);
        }
    }
    unreachable!("suffix search is unbounded")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Violation;
    use fortika_net::{MsgId, ProcessId};
    use fortika_trace::{TraceBuffer, TraceData};

    fn sample_trace() -> Trace {
        let mut b = TraceBuffer::new(64);
        for i in 0..6u64 {
            b.push(
                i * 1000,
                TraceData::Span {
                    pid: (i % 3) as u16,
                    stack: "consensus",
                    instance: i,
                    phase: "decided",
                    detail: 0,
                },
            );
        }
        b.finish()
    }

    #[test]
    fn clean_report_writes_nothing() {
        let report = OracleReport {
            violations: vec![],
            deliveries: 10,
            common_order: vec![],
        };
        let dir = std::env::temp_dir().join("fortika-dump-clean");
        let written = dump_violation_trace(&sample_trace(), &report, &dir, "x").unwrap();
        assert!(written.is_empty());
        assert!(!dir.join("violation-x.jsonl").exists());
    }

    #[test]
    fn violation_dump_windows_on_offender() {
        let report = OracleReport {
            violations: vec![Violation::DuplicateDelivery {
                process: ProcessId(1),
                id: MsgId::new(ProcessId(0), 7),
            }],
            deliveries: 10,
            common_order: vec![],
        };
        let dir = std::env::temp_dir().join("fortika-dump-test");
        let written = dump_violation_trace(&sample_trace(), &report, &dir, "unit").unwrap();
        assert_eq!(written.len(), 2);
        let jsonl = fs::read_to_string(&written[0]).unwrap();
        // Only pid 1's events (instances 1 and 4) plus the meta line.
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"instance\":1"));
        assert!(lines[1].contains("\"instance\":4"));
        assert!(lines[2].contains("\"meta\":true"));
        let chrome = fs::read_to_string(&written[1]).unwrap();
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("consensus #1"));
    }

    #[test]
    fn colliding_labels_never_clobber_a_different_dump() {
        let dir = std::env::temp_dir().join("fortika-dump-collide");
        let _ = fs::remove_dir_all(&dir);
        let report_for = |pid: u16| OracleReport {
            violations: vec![Violation::DuplicateDelivery {
                process: ProcessId(pid),
                id: MsgId::new(ProcessId(0), 7),
            }],
            deliveries: 10,
            common_order: vec![],
        };
        let trace = sample_trace();
        // First dump claims the bare stem.
        let first = dump_violation_trace(&trace, &report_for(1), &dir, "same").unwrap();
        assert!(first[0].ends_with("violation-same.jsonl"));
        let original = fs::read_to_string(&first[0]).unwrap();
        // A different violation under the same label windows on pid 2,
        // so its bytes differ: it must land on a suffixed stem.
        let second = dump_violation_trace(&trace, &report_for(2), &dir, "same").unwrap();
        assert!(second[0].ends_with("violation-same-2.jsonl"), "{second:?}");
        assert!(second[1].ends_with("violation-same-2.trace.json"));
        // And the original dump is untouched.
        assert_eq!(fs::read_to_string(&first[0]).unwrap(), original);
        // Re-dumping the *same* run is idempotent: byte-identical files
        // are overwritten in place, no new suffix.
        let again = dump_violation_trace(&trace, &report_for(1), &dir, "same").unwrap();
        assert_eq!(again[0], first[0]);
        let third = dump_violation_trace(&trace, &report_for(2), &dir, "same").unwrap();
        assert_eq!(third[0], second[0]);
        assert!(!dir.join("violation-same-3.jsonl").exists());
    }
}
