//! Scenario timelines: declarative fault schedules over a cluster run.
//!
//! A [`Scenario`] is an ordered list of typed fault events — crashes,
//! partitions with healing, lossy windows, delay spikes, duplication
//! windows, scripted false suspicions — expressed as offsets from the
//! start of the run. Build one with the chainable constructors, or draw
//! one from the seeded [`Scenario::random`] generator for fuzzing; then
//! plug it into a cluster directly ([`Scenario::apply`]) or into the
//! experiment runner (`Experiment::builder(..).scenario(..)` in
//! `fortika-core`).
//!
//! Scenarios are plain data: cloning, printing and replaying them is
//! cheap, and the same scenario + the same cluster seed reproduces the
//! same run bit for bit.

use fortika_fd::SuspicionWindow;
use fortika_net::{Cluster, ConfigChange, Dissemination, LinkFault, LinkSelector, ProcessId};
use fortika_sim::{DetRng, VDur, VTime};

use crate::coverage::CoverageReport;

/// Every event family a scenario can contain, in canonical order: the
/// eleven [`ScenarioEvent`] variants plus two *configuration* axes —
/// `pipelined` ([`Scenario::pipeline_depth`] > 1) and `dissemination`
/// ([`Scenario::dissemination`] offloading payloads onto a ring or
/// tree). This is the row vocabulary of the coverage co-occurrence
/// matrix ([`CoverageReport`]); keep it in sync with
/// [`ScenarioEvent::family`].
pub(crate) const FAMILIES: &[&str] = &[
    "crash",
    "restart",
    "partition",
    "lossy",
    "duplicate",
    "delay_spike",
    "degrade_link",
    "slow_node",
    "false_suspicion",
    "add_node",
    "remove_node",
    "pipelined",
    "dissemination",
];

/// Probability knobs never steer above this: a residual of unsteered
/// draws keeps campaigns exploring shapes outside the boosted family.
const MAX_STEERED_PROB: f64 = 0.9;

/// One typed event on a scenario timeline. All instants are offsets
/// from the start of the run.
#[derive(Debug, Clone)]
pub enum ScenarioEvent {
    /// Crash `pid` at `at`. Without a matching [`Restart`] afterwards
    /// this is a crash-stop (the process never recovers).
    ///
    /// [`Restart`]: ScenarioEvent::Restart
    Crash {
        /// The victim.
        pid: ProcessId,
        /// Crash instant.
        at: VDur,
    },
    /// Revive a crashed `pid` at `at` with fresh volatile state and a
    /// new incarnation (crash-recovery). Requires the cluster to have a
    /// node factory registered; see `Cluster::schedule_restart`.
    Restart {
        /// The revived process.
        pid: ProcessId,
        /// Restart instant (must follow the crash).
        at: VDur,
    },
    /// Partition the cluster into `groups` during `[from, until)`;
    /// `None` never heals. Processes in no group are isolated.
    Partition {
        /// Connected components.
        groups: Vec<Vec<ProcessId>>,
        /// Partition start.
        from: VDur,
        /// Healing instant (`None` = permanent).
        until: Option<VDur>,
    },
    /// Drop each message on the selected links with probability `p`
    /// during `[from, until)`.
    Lossy {
        /// Affected links.
        link: LinkSelector,
        /// Drop probability in `[0, 1]`.
        p: f64,
        /// Window start.
        from: VDur,
        /// Window end (`None` = rest of the run).
        until: Option<VDur>,
    },
    /// Deliver each message on the selected links twice with
    /// probability `p` during `[from, until)`.
    Duplicate {
        /// Affected links.
        link: LinkSelector,
        /// Duplication probability in `[0, 1]`.
        p: f64,
        /// Window start.
        from: VDur,
        /// Window end (`None` = rest of the run).
        until: Option<VDur>,
    },
    /// Multiply latency (propagation + jitter) of the selected links by
    /// `factor_milli / 1000` during `[from, until)`.
    DelaySpike {
        /// Affected links.
        link: LinkSelector,
        /// Delay multiplier in thousandths (5000 = 5×).
        factor_milli: u64,
        /// Window start.
        from: VDur,
        /// Window end (`None` = rest of the run).
        until: Option<VDur>,
    },
    /// Shrink the bandwidth of the selected links to
    /// `rate_milli / 1000` of nominal during `[from, until)` — a
    /// *degraded* link serializes traffic at the reduced rate (messages
    /// queue behind each other), unlike [`DelaySpike`] which only
    /// stretches propagation.
    ///
    /// [`DelaySpike`]: ScenarioEvent::DelaySpike
    DegradeLink {
        /// Affected links.
        link: LinkSelector,
        /// Bandwidth multiplier in thousandths, `1..=1000` (100 = 10 %
        /// of nominal).
        rate_milli: u64,
        /// Window start.
        from: VDur,
        /// Window end (`None` = rest of the run).
        until: Option<VDur>,
    },
    /// Multiply every CPU cost `pid` charges by `factor_milli / 1000`
    /// during `[from, until)` — a *slow node* (thermal throttling, a
    /// noisy neighbour, GC pressure). The process stays correct and
    /// keeps all its state; it just burns more CPU per event, which
    /// saturates it at a lower offered load.
    SlowNode {
        /// The throttled process.
        pid: ProcessId,
        /// CPU cost multiplier in thousandths (4000 = 4× slower).
        factor_milli: u64,
        /// Window start.
        from: VDur,
        /// Window end (`None` = rest of the run).
        until: Option<VDur>,
    },
    /// Force `observer`'s failure detector to (wrongly) suspect
    /// `suspect` during `[from, until)` — scripted ◇P inaccuracy.
    ///
    /// This event acts at stack-construction time, not on the cluster:
    /// builders that wire nodes themselves consume it via
    /// [`Scenario::suspicion_windows`]; the experiment runner does so
    /// automatically.
    FalseSuspicion {
        /// The process whose detector lies.
        observer: ProcessId,
        /// The slandered process.
        suspect: ProcessId,
        /// Window start.
        from: VDur,
        /// Window end.
        until: VDur,
    },
    /// Submit a log-decided reconfiguration adding `pid` to the group
    /// at `at`, and boot `pid` at the same instant if it is a crashed
    /// standby (a no-op when it is already running). The change takes
    /// effect a fixed instance offset after it is decided
    /// (`StackConfig::reconfig_offset` in `fortika-core`), so the
    /// membership switch lands somewhat later than `at`.
    ///
    /// [`Scenario::apply`] schedules a reserved driver tick
    /// ([`reconfig_tick`]) carrying the change; the harness submits the
    /// actual reconfiguration command (the experiment runner and
    /// `ScriptedDriver` do this via [`ReconfigInjector`]). Because the
    /// boot uses `Cluster::schedule_restart`, applying a scenario with
    /// this event requires a registered node factory.
    ///
    /// [`ReconfigInjector`]: crate::ReconfigInjector
    AddNode {
        /// The joining process.
        pid: ProcessId,
        /// Submission (and standby boot) instant.
        at: VDur,
    },
    /// Submit a log-decided reconfiguration removing `pid` from the
    /// group at `at`. The removed process is **not** crashed: it stays
    /// up as a learner (it keeps delivering the total order and serves
    /// reads) but stops voting once the change activates. Pair with a
    /// [`Crash`] to take it down entirely.
    ///
    /// Delivered to the harness exactly like [`AddNode`].
    ///
    /// [`Crash`]: ScenarioEvent::Crash
    /// [`AddNode`]: ScenarioEvent::AddNode
    RemoveNode {
        /// The leaving process.
        pid: ProcessId,
        /// Submission instant.
        at: VDur,
    },
}

impl ScenarioEvent {
    /// The event's family name — the row vocabulary of the coverage
    /// co-occurrence matrix ([`CoverageReport`]). Stable strings, one
    /// per variant, matching [`CoverageReport::family_names`].
    pub fn family(&self) -> &'static str {
        match self {
            ScenarioEvent::Crash { .. } => "crash",
            ScenarioEvent::Restart { .. } => "restart",
            ScenarioEvent::Partition { .. } => "partition",
            ScenarioEvent::Lossy { .. } => "lossy",
            ScenarioEvent::Duplicate { .. } => "duplicate",
            ScenarioEvent::DelaySpike { .. } => "delay_spike",
            ScenarioEvent::DegradeLink { .. } => "degrade_link",
            ScenarioEvent::SlowNode { .. } => "slow_node",
            ScenarioEvent::FalseSuspicion { .. } => "false_suspicion",
            ScenarioEvent::AddNode { .. } => "add_node",
            ScenarioEvent::RemoveNode { .. } => "remove_node",
        }
    }
}

/// Reserved driver-tick namespace for reconfiguration submissions.
/// Tick ids below this belong to workload drivers (they use small,
/// dense ids); ids at or above it encode a [`ConfigChange`] — see
/// [`reconfig_tick`] / [`parse_reconfig_tick`].
pub const RECONFIG_TICK_BASE: u64 = 1 << 32;

const RECONFIG_TICK_REMOVE: u64 = 1 << 16;

/// Encodes a reconfiguration as a reserved driver-tick id.
/// [`Scenario::apply`] schedules these; harnesses decode them with
/// [`parse_reconfig_tick`] and submit the command to the cluster (see
/// [`ReconfigInjector`](crate::ReconfigInjector)).
pub fn reconfig_tick(change: ConfigChange) -> u64 {
    match change {
        ConfigChange::Add(pid) => RECONFIG_TICK_BASE | pid.index() as u64,
        ConfigChange::Remove(pid) => RECONFIG_TICK_BASE | RECONFIG_TICK_REMOVE | pid.index() as u64,
    }
}

/// Decodes a reserved reconfiguration tick id; `None` for ordinary
/// workload ticks.
pub fn parse_reconfig_tick(tick: u64) -> Option<ConfigChange> {
    if tick & RECONFIG_TICK_BASE == 0 {
        return None;
    }
    let pid = ProcessId((tick & 0xFFFF) as u16);
    if tick & RECONFIG_TICK_REMOVE == 0 {
        Some(ConfigChange::Add(pid))
    } else {
        Some(ConfigChange::Remove(pid))
    }
}

/// A declarative fault schedule (see the [crate docs](crate)).
///
/// # Example: the timeline DSL, end to end
///
/// ```
/// use fortika_chaos::{check_orders, Scenario, Violation};
/// use fortika_net::{MsgId, ProcessId};
/// use fortika_sim::VDur;
///
/// // A timeline: {p1, p2} partitioned from {p3} for half a second,
/// // p2 crash-restarts inside the window, and p1's detector falsely
/// // suspects p2 for 100 ms after the heal.
/// let scenario = Scenario::new()
///     .partition(
///         vec![vec![ProcessId(0), ProcessId(1)], vec![ProcessId(2)]],
///         VDur::millis(100),
///         VDur::millis(600),
///     )
///     .crash(ProcessId(1), VDur::millis(200))
///     .restart(ProcessId(1), VDur::millis(400))
///     .false_suspicion(ProcessId(0), ProcessId(1), VDur::millis(700), VDur::millis(800));
/// assert!(scenario.heals(), "every window closes");
/// assert!(scenario.quorum_safe(3), "the revived p2 is correct again");
/// assert_eq!(scenario.restarted(), vec![ProcessId(1)]);
/// assert_eq!(scenario.horizon(), VDur::millis(800));
///
/// // The oracle that audits such runs flags any violation of the
/// // atomic broadcast contract — here, two "replicas" disagreeing on
/// // the delivery order:
/// let a = MsgId::new(ProcessId(0), 0);
/// let b = MsgId::new(ProcessId(1), 0);
/// let report = check_orders(&[vec![a, b], vec![b, a]], &[ProcessId(0), ProcessId(1)], &[]);
/// assert!(matches!(report.violations[0], Violation::Disagreement { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    events: Vec<ScenarioEvent>,
    /// Windowed-sequencer depth the run under this scenario should use
    /// (`StackConfig::pipeline_depth` in `fortika-core`). Not a fault:
    /// a *configuration* axis the fuzzer varies so every fault family
    /// is also exercised against pipelined runs.
    pipeline_depth: usize,
    /// Payload dissemination strategy the run under this scenario
    /// should use (`StackConfig::dissemination` in `fortika-core`).
    /// Like `pipeline_depth`, a *configuration* axis: `Ring`/`Tree`
    /// route batch payloads around the membership while consensus
    /// orders value ids, so every fault family is also exercised
    /// against the offloaded delivery path.
    dissemination: Dissemination,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            events: Vec::new(),
            pipeline_depth: 1,
            dissemination: Dissemination::Direct,
        }
    }
}

impl Scenario {
    /// An empty (fault-free) scenario.
    pub fn new() -> Self {
        Scenario::default()
    }

    /// Sets the windowed-sequencer depth α runs under this scenario
    /// should configure (see [`Scenario::pipeline_depth`]).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "pipeline depth must be at least 1");
        self.pipeline_depth = depth;
        self
    }

    /// The windowed-sequencer depth α this scenario asks the stacks to
    /// run with (default 1, the seed-faithful sequential regime). The
    /// random generator draws it from its own stream
    /// ([`ChaosProfile::max_pipeline_depth`]), so every generated fault
    /// timeline is also fuzzed against pipelined instance execution;
    /// harnesses apply it via `StackConfig::pipeline_depth`.
    pub fn pipeline_depth(&self) -> usize {
        self.pipeline_depth
    }

    /// Sets the payload dissemination strategy runs under this
    /// scenario should configure (see [`Scenario::dissemination`]).
    pub fn with_dissemination(mut self, strategy: Dissemination) -> Self {
        self.dissemination = strategy;
        self
    }

    /// The payload dissemination strategy this scenario asks the
    /// stacks to run with (default [`Dissemination::Direct`], the
    /// seed-faithful diffusion regime). The random generator draws it
    /// from its own stream ([`ChaosProfile::dissemination_prob`]), so
    /// generated fault timelines also fuzz the ring/tree payload
    /// offload; harnesses apply it via `StackConfig::dissemination`.
    pub fn dissemination(&self) -> Dissemination {
        self.dissemination
    }

    /// The timeline events, in insertion order.
    pub fn events(&self) -> &[ScenarioEvent] {
        &self.events
    }

    /// The distinct event families this scenario exercises, in the
    /// canonical order of [`CoverageReport::family_names`]. Includes
    /// the `pipelined` configuration family when
    /// [`pipeline_depth`](Self::pipeline_depth) exceeds 1. This is what
    /// [`CoverageReport::absorb_with_scenario`] co-occurs against the
    /// protocol branches a run reached.
    pub fn families(&self) -> Vec<&'static str> {
        FAMILIES
            .iter()
            .copied()
            .filter(|family| {
                if *family == "pipelined" {
                    self.pipeline_depth > 1
                } else if *family == "dissemination" {
                    self.dissemination.offloads()
                } else {
                    self.events.iter().any(|ev| ev.family() == *family)
                }
            })
            .collect()
    }

    /// Appends an arbitrary event.
    pub fn event(mut self, ev: ScenarioEvent) -> Self {
        self.events.push(ev);
        self
    }

    /// Crash-stops `pid` at offset `at`.
    pub fn crash(self, pid: ProcessId, at: VDur) -> Self {
        self.event(ScenarioEvent::Crash { pid, at })
    }

    /// Revives `pid` at offset `at` (crash-recovery; pair with an
    /// earlier [`crash`](Self::crash) of the same process).
    pub fn restart(self, pid: ProcessId, at: VDur) -> Self {
        self.event(ScenarioEvent::Restart { pid, at })
    }

    /// Partitions the cluster into `groups` from `from` until `until`
    /// (healing included).
    pub fn partition(self, groups: Vec<Vec<ProcessId>>, from: VDur, until: VDur) -> Self {
        self.event(ScenarioEvent::Partition {
            groups,
            from,
            until: Some(until),
        })
    }

    /// Partitions the cluster permanently (no healing).
    pub fn partition_forever(self, groups: Vec<Vec<ProcessId>>, from: VDur) -> Self {
        self.event(ScenarioEvent::Partition {
            groups,
            from,
            until: None,
        })
    }

    /// Makes the selected links lossy with probability `p` during the
    /// window.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1]`.
    pub fn lossy(self, link: LinkSelector, p: f64, from: VDur, until: VDur) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability {p} out of range"
        );
        self.event(ScenarioEvent::Lossy {
            link,
            p,
            from,
            until: Some(until),
        })
    }

    /// Duplicates messages on the selected links with probability `p`
    /// during the window.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1]`.
    pub fn duplicate(self, link: LinkSelector, p: f64, from: VDur, until: VDur) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplication probability {p} out of range"
        );
        self.event(ScenarioEvent::Duplicate {
            link,
            p,
            from,
            until: Some(until),
        })
    }

    /// Inflates latency on the selected links by `factor_milli / 1000`
    /// during the window.
    pub fn delay_spike(
        self,
        link: LinkSelector,
        factor_milli: u64,
        from: VDur,
        until: VDur,
    ) -> Self {
        self.event(ScenarioEvent::DelaySpike {
            link,
            factor_milli,
            from,
            until: Some(until),
        })
    }

    /// Degrades the selected links to `rate_milli / 1000` of nominal
    /// bandwidth during the window (resource fault: the link becomes a
    /// serial bottleneck, so large messages and bursts queue).
    ///
    /// # Example
    ///
    /// ```
    /// use fortika_chaos::Scenario;
    /// use fortika_net::{LinkSelector, ProcessId};
    /// use fortika_sim::VDur;
    ///
    /// // p0's outbound links run at 10 % of nominal bandwidth for
    /// // 400 ms, then recover.
    /// let s = Scenario::new().degrade_link(
    ///     LinkSelector::From(ProcessId(0)),
    ///     100,
    ///     VDur::millis(100),
    ///     VDur::millis(500),
    /// );
    /// assert!(s.heals(), "the degradation window closes");
    /// assert_eq!(s.horizon(), VDur::millis(500));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics unless `rate_milli` is in `1..=1000`.
    pub fn degrade_link(
        self,
        link: LinkSelector,
        rate_milli: u64,
        from: VDur,
        until: VDur,
    ) -> Self {
        assert!(
            (1..=1000).contains(&rate_milli),
            "degraded rate {rate_milli}‰ out of range (1..=1000)"
        );
        self.event(ScenarioEvent::DegradeLink {
            link,
            rate_milli,
            from,
            until: Some(until),
        })
    }

    /// Throttles `pid`'s CPU by `factor_milli / 1000` during the window
    /// (resource fault: every handler cost is multiplied, so the
    /// process saturates at a lower load but stays correct).
    ///
    /// # Example
    ///
    /// ```
    /// use fortika_chaos::Scenario;
    /// use fortika_net::ProcessId;
    /// use fortika_sim::VDur;
    ///
    /// // p1 runs 4× slower between 200 ms and 800 ms.
    /// let s = Scenario::new().slow_node(
    ///     ProcessId(1),
    ///     4000,
    ///     VDur::millis(200),
    ///     VDur::millis(800),
    /// );
    /// assert!(s.heals());
    /// assert_eq!(s.correct(3).len(), 3, "a slow node is still correct");
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `factor_milli` is zero.
    pub fn slow_node(self, pid: ProcessId, factor_milli: u64, from: VDur, until: VDur) -> Self {
        assert!(factor_milli > 0, "slowdown factor must be positive");
        self.event(ScenarioEvent::SlowNode {
            pid,
            factor_milli,
            from,
            until: Some(until),
        })
    }

    /// Scripts a false suspicion: `observer` wrongly suspects `suspect`
    /// during the window.
    pub fn false_suspicion(
        self,
        observer: ProcessId,
        suspect: ProcessId,
        from: VDur,
        until: VDur,
    ) -> Self {
        self.event(ScenarioEvent::FalseSuspicion {
            observer,
            suspect,
            from,
            until,
        })
    }

    /// Grows the group: submits `Add(pid)` through the log at offset
    /// `at` (and boots `pid` at the same instant when it is a crashed
    /// standby). See [`ScenarioEvent::AddNode`].
    ///
    /// # Example
    ///
    /// ```
    /// use fortika_chaos::Scenario;
    /// use fortika_net::ProcessId;
    /// use fortika_sim::VDur;
    ///
    /// // A 3-process group grows to 4: the standby p4 boots and joins
    /// // at 300 ms. Quorum math follows the config — one crash is
    /// // tolerable before and after the grow.
    /// let s = Scenario::new()
    ///     .add_node(ProcessId(3), VDur::millis(300))
    ///     .crash(ProcessId(0), VDur::millis(900));
    /// assert!(s.quorum_safe(3));
    /// assert!(s.heals(), "reconfigurations are instantaneous events");
    /// assert_eq!(s.horizon(), VDur::millis(900));
    /// // The added process counts as correct: it must deliver the
    /// // common total order once it has joined.
    /// assert_eq!(s.correct(s.capacity(3)).len(), 3);
    /// ```
    pub fn add_node(self, pid: ProcessId, at: VDur) -> Self {
        self.event(ScenarioEvent::AddNode { pid, at })
    }

    /// Shrinks the group: submits `Remove(pid)` through the log at
    /// offset `at`. The removed process stays up as a learner. See
    /// [`ScenarioEvent::RemoveNode`].
    ///
    /// # Example
    ///
    /// ```
    /// use fortika_chaos::Scenario;
    /// use fortika_net::ProcessId;
    /// use fortika_sim::VDur;
    ///
    /// // A 3-process group shrinks to {p1, p2}; the removed p3 then
    /// // crashes. The remaining pair still has its majority: removal
    /// // freed the quorum slot the crash would otherwise erode.
    /// let s = Scenario::new()
    ///     .remove_node(ProcessId(2), VDur::millis(200))
    ///     .crash(ProcessId(2), VDur::millis(800));
    /// assert!(s.quorum_safe(3));
    /// // Crashing a *member* of the shrunken pair instead would lose
    /// // its majority.
    /// let bad = Scenario::new()
    ///     .remove_node(ProcessId(2), VDur::millis(200))
    ///     .crash(ProcessId(1), VDur::millis(800));
    /// assert!(!bad.quorum_safe(3));
    /// ```
    pub fn remove_node(self, pid: ProcessId, at: VDur) -> Self {
        self.event(ScenarioEvent::RemoveNode { pid, at })
    }

    /// Schedules every cluster-level event of this scenario onto
    /// `cluster` (crashes and link faults; [`FalseSuspicion`] events act
    /// at stack-construction time and are skipped here — see
    /// [`Scenario::suspicion_windows`]).
    ///
    /// Call before the first `run_until`, with the cluster clock still
    /// at the start of the run — [`Scenario::suspicion_windows`] anchors
    /// its windows at `VTime::ZERO`, and both halves of a scenario must
    /// share the same origin.
    ///
    /// # Window overlap
    ///
    /// Window boundaries write link state absolutely — a closing window
    /// restores the fault-free default on its links even if another
    /// window of the same family still covers them (its opening value
    /// is not re-applied). Declare overlapping same-family windows as
    /// disjoint intervals instead; the random generator emits at most
    /// one window per family, so generated scenarios are unaffected.
    ///
    /// # Panics
    ///
    /// Panics when the cluster clock has already advanced — applying
    /// late would silently desynchronize cluster-level faults from the
    /// scripted suspicion windows. Also panics when the scenario
    /// contains [`Restart`] or [`AddNode`] events and no node factory
    /// is registered (`Cluster::set_node_factory`).
    ///
    /// [`FalseSuspicion`]: ScenarioEvent::FalseSuspicion
    /// [`Restart`]: ScenarioEvent::Restart
    /// [`AddNode`]: ScenarioEvent::AddNode
    pub fn apply(&self, cluster: &mut Cluster) {
        let t0 = cluster.now();
        assert_eq!(
            t0,
            VTime::ZERO,
            "apply the scenario before running the cluster (clock already at {t0})"
        );
        for ev in &self.events {
            match ev {
                ScenarioEvent::Crash { pid, at } => cluster.schedule_crash(*pid, t0 + *at),
                ScenarioEvent::Restart { pid, at } => cluster.schedule_restart(*pid, t0 + *at),
                ScenarioEvent::Partition {
                    groups,
                    from,
                    until,
                } => {
                    cluster.schedule_fault(t0 + *from, LinkFault::Partition(groups.clone()));
                    if let Some(until) = until {
                        cluster.schedule_fault(t0 + *until, LinkFault::Heal);
                    }
                }
                ScenarioEvent::Lossy {
                    link,
                    p,
                    from,
                    until,
                } => {
                    cluster.schedule_fault(t0 + *from, LinkFault::Loss { link: *link, p: *p });
                    if let Some(until) = until {
                        cluster.schedule_fault(
                            t0 + *until,
                            LinkFault::Loss {
                                link: *link,
                                p: 0.0,
                            },
                        );
                    }
                }
                ScenarioEvent::Duplicate {
                    link,
                    p,
                    from,
                    until,
                } => {
                    cluster.schedule_fault(t0 + *from, LinkFault::Duplicate { link: *link, p: *p });
                    if let Some(until) = until {
                        cluster.schedule_fault(
                            t0 + *until,
                            LinkFault::Duplicate {
                                link: *link,
                                p: 0.0,
                            },
                        );
                    }
                }
                ScenarioEvent::DelaySpike {
                    link,
                    factor_milli,
                    from,
                    until,
                } => {
                    cluster.schedule_fault(
                        t0 + *from,
                        LinkFault::DelaySpike {
                            link: *link,
                            factor_milli: *factor_milli,
                        },
                    );
                    if let Some(until) = until {
                        cluster.schedule_fault(
                            t0 + *until,
                            LinkFault::DelaySpike {
                                link: *link,
                                factor_milli: 1000,
                            },
                        );
                    }
                }
                ScenarioEvent::DegradeLink {
                    link,
                    rate_milli,
                    from,
                    until,
                } => {
                    cluster.schedule_fault(
                        t0 + *from,
                        LinkFault::Degrade {
                            link: *link,
                            rate_milli: *rate_milli,
                        },
                    );
                    if let Some(until) = until {
                        cluster.schedule_fault(
                            t0 + *until,
                            LinkFault::Degrade {
                                link: *link,
                                rate_milli: 1000,
                            },
                        );
                    }
                }
                ScenarioEvent::SlowNode {
                    pid,
                    factor_milli,
                    from,
                    until,
                } => {
                    cluster.schedule_slowdown(t0 + *from, *pid, *factor_milli);
                    if let Some(until) = until {
                        cluster.schedule_slowdown(t0 + *until, *pid, 1000);
                    }
                }
                ScenarioEvent::FalseSuspicion { .. } => {}
                ScenarioEvent::AddNode { pid, at } => {
                    // Boot the standby first (a no-op when `pid` is
                    // already running), then hand the change to the
                    // harness via a reserved tick — the submission
                    // itself must go through a live stack.
                    cluster.schedule_restart(*pid, t0 + *at);
                    cluster.schedule_tick(t0 + *at, reconfig_tick(ConfigChange::Add(*pid)));
                }
                ScenarioEvent::RemoveNode { pid, at } => {
                    cluster.schedule_tick(t0 + *at, reconfig_tick(ConfigChange::Remove(*pid)));
                }
            }
        }
    }

    /// The scripted false-suspicion windows, as absolute instants from
    /// the start of the run — feed these to
    /// [`fortika_fd::OverlayFd`] when building nodes.
    pub fn suspicion_windows(&self) -> Vec<SuspicionWindow> {
        self.events
            .iter()
            .filter_map(|ev| match ev {
                ScenarioEvent::FalseSuspicion {
                    observer,
                    suspect,
                    from,
                    until,
                } => Some(SuspicionWindow {
                    observer: *observer,
                    suspect: *suspect,
                    from: VTime::ZERO + *from,
                    until: VTime::ZERO + *until,
                }),
                _ => None,
            })
            .collect()
    }

    /// Processes this scenario crash-stops **permanently** (they are
    /// *not correct* in the atomic-broadcast sense). A process whose
    /// last crash is followed by a [`Restart`] — or by an [`AddNode`]
    /// that boots it — is correct again: it does not appear here and
    /// does not count against the minority crash budget.
    ///
    /// [`Restart`]: ScenarioEvent::Restart
    /// [`AddNode`]: ScenarioEvent::AddNode
    pub fn crashed(&self) -> Vec<ProcessId> {
        let mut last_crash: std::collections::BTreeMap<ProcessId, VDur> = Default::default();
        let mut last_restart: std::collections::BTreeMap<ProcessId, VDur> = Default::default();
        for ev in &self.events {
            match ev {
                ScenarioEvent::Crash { pid, at } => {
                    let e = last_crash.entry(*pid).or_insert(*at);
                    *e = (*e).max(*at);
                }
                ScenarioEvent::Restart { pid, at } | ScenarioEvent::AddNode { pid, at } => {
                    let e = last_restart.entry(*pid).or_insert(*at);
                    *e = (*e).max(*at);
                }
                _ => {}
            }
        }
        last_crash
            .into_iter()
            .filter(|(pid, down)| match last_restart.get(pid) {
                Some(up) => up <= down, // revival must strictly follow the crash
                None => true,
            })
            .map(|(pid, _)| pid)
            .collect()
    }

    /// Processes that crash and come back at least once.
    pub fn restarted(&self) -> Vec<ProcessId> {
        let mut out: Vec<ProcessId> = self
            .events
            .iter()
            .filter_map(|ev| match ev {
                ScenarioEvent::Restart { pid, .. } => Some(*pid),
                _ => None,
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// True when the *permanent* crashes stay within the minority the
    /// correct-majority assumption tolerates **of the configuration
    /// active at the time of each crash**. Crashed-then-restarted
    /// processes do not count: with votes on stable storage a revived
    /// process re-enters consensus with its locks intact, so only
    /// processes that stay down erode the quorum.
    ///
    /// With [`AddNode`]/[`RemoveNode`] events on the timeline the check
    /// walks it in time order, tracking the member set: a grow raises
    /// the tolerable minority, a shrink lowers it, and a removed
    /// process's later crash costs nothing (a learner going down does
    /// not erode any quorum). The walk approximates activation by the
    /// submission instant — the real switch lands an instance offset
    /// later — so keep a comfortable gap between a reconfiguration and
    /// any crash whose budget depends on it.
    ///
    /// [`AddNode`]: ScenarioEvent::AddNode
    /// [`RemoveNode`]: ScenarioEvent::RemoveNode
    pub fn quorum_safe(&self, n: usize) -> bool {
        let has_reconfig = self.events.iter().any(|ev| {
            matches!(
                ev,
                ScenarioEvent::AddNode { .. } | ScenarioEvent::RemoveNode { .. }
            )
        });
        let crashed = self.crashed();
        if !has_reconfig {
            return crashed.len() <= (n - 1) / 2;
        }
        // Timeline points: membership changes plus the *final* crash of
        // each permanently-crashed process. Stable-sorted by instant
        // (insertion order breaks ties), then walked while checking the
        // down-members count against the then-current minority.
        enum Point {
            Down(ProcessId),
            Add(ProcessId),
            Remove(ProcessId),
        }
        let mut points: Vec<(VDur, Point)> = Vec::new();
        for pid in &crashed {
            let last = self
                .events
                .iter()
                .filter_map(|ev| match ev {
                    ScenarioEvent::Crash { pid: p, at } if p == pid => Some(*at),
                    _ => None,
                })
                .max()
                .expect("crashed() implies a crash event");
            points.push((last, Point::Down(*pid)));
        }
        for ev in &self.events {
            match ev {
                ScenarioEvent::AddNode { pid, at } => points.push((*at, Point::Add(*pid))),
                ScenarioEvent::RemoveNode { pid, at } => points.push((*at, Point::Remove(*pid))),
                _ => {}
            }
        }
        points.sort_by_key(|(at, _)| *at);
        let mut members: Vec<ProcessId> = ProcessId::all(n).collect();
        let mut down: Vec<ProcessId> = Vec::new();
        for (_, point) in points {
            match point {
                Point::Down(pid) => down.push(pid),
                Point::Add(pid) => {
                    if !members.contains(&pid) {
                        members.push(pid);
                    }
                    down.retain(|p| *p != pid); // AddNode boots the standby
                }
                Point::Remove(pid) => {
                    if members.len() > 1 {
                        members.retain(|p| *p != pid);
                    }
                }
            }
            let eroded = down.iter().filter(|p| members.contains(p)).count();
            if eroded > (members.len() - 1) / 2 {
                return false;
            }
        }
        true
    }

    /// The process-slot capacity a cluster running this scenario needs:
    /// `n` plus room for every standby an [`AddNode`] event boots.
    /// Harnesses build `capacity(n)` nodes and crash the standbys at
    /// the start of the run (the experiment runner does this when a
    /// scenario carries reconfigurations).
    ///
    /// [`AddNode`]: ScenarioEvent::AddNode
    pub fn capacity(&self, n: usize) -> usize {
        self.events
            .iter()
            .filter_map(|ev| match ev {
                ScenarioEvent::AddNode { pid, .. } | ScenarioEvent::RemoveNode { pid, .. } => {
                    Some(pid.index() + 1)
                }
                _ => None,
            })
            .fold(n, usize::max)
    }

    /// The reconfigurations this scenario submits, as
    /// `(offset, change)` pairs in timeline order.
    pub fn reconfigs(&self) -> Vec<(VDur, ConfigChange)> {
        let mut out: Vec<(VDur, ConfigChange)> = self
            .events
            .iter()
            .filter_map(|ev| match ev {
                ScenarioEvent::AddNode { pid, at } => Some((*at, ConfigChange::Add(*pid))),
                ScenarioEvent::RemoveNode { pid, at } => Some((*at, ConfigChange::Remove(*pid))),
                _ => None,
            })
            .collect();
        out.sort_by_key(|(at, _)| *at);
        out
    }

    /// Processes of a group of `n` that stay correct under this
    /// scenario.
    pub fn correct(&self, n: usize) -> Vec<ProcessId> {
        let crashed = self.crashed();
        ProcessId::all(n).filter(|p| !crashed.contains(p)).collect()
    }

    /// True when every non-crash fault window ends (partitions heal,
    /// loss/dup/delay windows close): after [`Scenario::horizon`] the
    /// network is quasi-reliable again, so validity (liveness) can be
    /// asserted on top of safety.
    pub fn heals(&self) -> bool {
        self.events.iter().all(|ev| match ev {
            ScenarioEvent::Partition { until, .. }
            | ScenarioEvent::Lossy { until, .. }
            | ScenarioEvent::Duplicate { until, .. }
            | ScenarioEvent::DelaySpike { until, .. }
            | ScenarioEvent::DegradeLink { until, .. }
            | ScenarioEvent::SlowNode { until, .. } => until.is_some(),
            ScenarioEvent::Crash { .. }
            | ScenarioEvent::Restart { .. }
            | ScenarioEvent::FalseSuspicion { .. }
            | ScenarioEvent::AddNode { .. }
            | ScenarioEvent::RemoveNode { .. } => true,
        })
    }

    /// The last instant at which this scenario touches the run (crash
    /// instants, window ends). Size run drains relative to this.
    pub fn horizon(&self) -> VDur {
        self.events
            .iter()
            .map(|ev| match ev {
                ScenarioEvent::Crash { at, .. }
                | ScenarioEvent::Restart { at, .. }
                | ScenarioEvent::AddNode { at, .. }
                | ScenarioEvent::RemoveNode { at, .. } => *at,
                ScenarioEvent::Partition { from, until, .. }
                | ScenarioEvent::Lossy { from, until, .. }
                | ScenarioEvent::Duplicate { from, until, .. }
                | ScenarioEvent::DelaySpike { from, until, .. }
                | ScenarioEvent::DegradeLink { from, until, .. }
                | ScenarioEvent::SlowNode { from, until, .. } => until.unwrap_or(*from),
                ScenarioEvent::FalseSuspicion { until, .. } => *until,
            })
            .fold(VDur::ZERO, |a, b| if a > b { a } else { b })
    }

    /// Draws a random scenario for a group of `n` from `seed`.
    ///
    /// The generator respects the model's assumptions so that safety
    /// *and* (after healing) liveness are fair to assert: at most a
    /// minority of processes crash **permanently** (crash-restart
    /// victims hand their budget slot back — a revived process is
    /// correct again), at least one process never crashes at all (the
    /// decided prefix lives in volatile caches, so somebody must
    /// remember it for rejoining processes; stable storage covers votes,
    /// not values), every partition heals, every loss/duplication/delay
    /// window closes, and all fault activity finishes by
    /// `profile.horizon`.
    pub fn random(n: usize, seed: u64, profile: &ChaosProfile) -> Scenario {
        assert!(n >= 2, "chaos needs at least two processes");
        let mut rng = DetRng::derive(seed, 0xC4A05);
        let mut s = Scenario::new();
        let horizon_ns = profile.horizon.as_nanos();
        let at = |rng: &mut DetRng, lo_frac: f64, hi_frac: f64| {
            let lo = (horizon_ns as f64 * lo_frac) as u64;
            let hi = (horizon_ns as f64 * hi_frac) as u64;
            VDur::nanos(lo + rng.below(hi.saturating_sub(lo).max(1)))
        };

        // Crashes: permanent ones clamp to a minority; crash-restart
        // cycles only consume the "leave one untouched" budget.
        let permanent_budget = profile.max_crashes.min((n - 1) / 2);
        let max_events = profile.max_crashes.min(n - 1);
        let mut victims: Vec<u16> = (0..n as u16).collect();
        let mut used = 0usize;
        let mut permanent = 0usize;
        let mut revived: Vec<(ProcessId, VDur)> = Vec::new();
        for _ in 0..max_events {
            if rng.unit_f64() >= profile.crash_prob {
                continue;
            }
            let revive = profile.restart_prob > 0.0 && rng.unit_f64() < profile.restart_prob;
            if !revive && permanent >= permanent_budget {
                continue; // out of permanent budget, and no revival drawn
            }
            // Pick a not-yet-crashed victim.
            let k = used + rng.below((victims.len() - used) as u64) as usize;
            victims.swap(used, k);
            let pid = ProcessId(victims[used]);
            used += 1;
            if revive {
                let down = at(&mut rng, 0.1, 0.7);
                let up = down + at(&mut rng, 0.05, 0.25);
                s = s.crash(pid, down).restart(pid, up);
                revived.push((pid, up));
            } else {
                permanent += 1;
                s = s.crash(pid, at(&mut rng, 0.1, 0.9));
            }
        }

        // Crash-restart-crash: a revived victim may later go down for
        // good. It then counts against the permanent minority budget
        // exactly like a never-revived crash ([`Scenario::crashed`]
        // treats a process whose last crash follows its last restart as
        // permanently crashed). Drawn from a derived stream so the
        // fault windows below keep their shapes across this feature.
        if profile.recrash_prob > 0.0 {
            let mut recrash_rng = DetRng::derive(seed, 0x2ECA);
            for (pid, up) in revived {
                if permanent >= permanent_budget {
                    break;
                }
                if recrash_rng.unit_f64() < profile.recrash_prob {
                    permanent += 1;
                    // Clamped to the horizon: all fault activity must
                    // finish by `profile.horizon` (revivals land at
                    // 0.95 × horizon at the latest, so the clamp keeps
                    // the recrash strictly after the restart).
                    let down_again = (up + at(&mut recrash_rng, 0.02, 0.2)).min(profile.horizon);
                    s = s.crash(pid, down_again);
                }
            }
        }

        // One partition window: random proper split into two groups.
        if n >= 3 && rng.unit_f64() < profile.partition_prob {
            let mut left = Vec::new();
            let mut right = Vec::new();
            for p in ProcessId::all(n) {
                if rng.below(2) == 0 {
                    left.push(p);
                } else {
                    right.push(p);
                }
            }
            if left.is_empty() {
                left.push(right.pop().expect("n >= 3"));
            } else if right.is_empty() {
                right.push(left.pop().expect("n >= 3"));
            }
            let from = at(&mut rng, 0.1, 0.5);
            let until = from + at(&mut rng, 0.1, 0.4);
            s = s.partition(vec![left, right], from, until);
        }

        // One lossy window on a random selector.
        if rng.unit_f64() < profile.loss_prob {
            let link = random_selector(&mut rng, n);
            let p = 0.05 + rng.unit_f64() * (profile.max_loss - 0.05).max(0.0);
            let from = at(&mut rng, 0.0, 0.6);
            let until = from + at(&mut rng, 0.1, 0.35);
            s = s.lossy(link, p, from, until);
        }

        // One duplication window.
        if rng.unit_f64() < profile.dup_prob {
            let link = random_selector(&mut rng, n);
            let p = 0.1 + rng.unit_f64() * 0.4;
            let from = at(&mut rng, 0.0, 0.6);
            let until = from + at(&mut rng, 0.1, 0.35);
            s = s.duplicate(link, p, from, until);
        }

        // One delay spike (2×–20×).
        if rng.unit_f64() < profile.delay_prob {
            let link = random_selector(&mut rng, n);
            let factor = 2000 + rng.below(18_000);
            let from = at(&mut rng, 0.0, 0.6);
            let until = from + at(&mut rng, 0.1, 0.35);
            s = s.delay_spike(link, factor, from, until);
        }

        // Resource-fault windows (degraded link, slow node), drawn from
        // a derived stream so the omission-fault families above keep
        // their shapes across this feature (same pattern as recrash).
        if profile.degrade_prob > 0.0 || profile.slow_prob > 0.0 {
            let mut res_rng = DetRng::derive(seed, 0x2E50);
            if res_rng.unit_f64() < profile.degrade_prob {
                let link = random_selector(&mut res_rng, n);
                // 5 %–50 % of nominal bandwidth.
                let rate = 50 + res_rng.below(451);
                let from = at(&mut res_rng, 0.0, 0.6);
                let until = from + at(&mut res_rng, 0.1, 0.35);
                s = s.degrade_link(link, rate, from, until);
            }
            if res_rng.unit_f64() < profile.slow_prob {
                let pid = ProcessId(res_rng.below(n as u64) as u16);
                // 2×–6× slower.
                let factor = 2000 + res_rng.below(4001);
                let from = at(&mut res_rng, 0.0, 0.6);
                let until = from + at(&mut res_rng, 0.1, 0.35);
                s = s.slow_node(pid, factor, from, until);
            }
        }

        // One scripted false suspicion of a (possibly healthy) process.
        if rng.unit_f64() < profile.false_suspicion_prob {
            let observer = ProcessId(rng.below(n as u64) as u16);
            let mut suspect = ProcessId(rng.below(n as u64) as u16);
            if suspect == observer {
                suspect = ProcessId((suspect.0 + 1) % n as u16);
            }
            let from = at(&mut rng, 0.1, 0.6);
            let until = from + at(&mut rng, 0.05, 0.3);
            s = s.false_suspicion(observer, suspect, from, until);
        }

        // Reconfigurations: at most one grow (booting the first
        // standby, pid = n) and one shrink per scenario, drawn from a
        // derived stream so every fault-window shape above is preserved
        // across this feature. Both land early (10–40 % of the
        // horizon) so the submission has time to decide and activate
        // before the run drains. A shrink consumes a slot of the
        // permanent crash budget: removing a voter erodes the original
        // configuration's quorum margin exactly like a crash until the
        // shrunken group's smaller majority takes over, so charging the
        // budget keeps every generated timeline `quorum_safe`.
        if profile.add_node_prob > 0.0 || profile.remove_node_prob > 0.0 {
            let mut cfg_rng = DetRng::derive(seed, 0xADD0);
            if cfg_rng.unit_f64() < profile.add_node_prob {
                s = s.add_node(ProcessId(n as u16), at(&mut cfg_rng, 0.1, 0.4));
            }
            if cfg_rng.unit_f64() < profile.remove_node_prob && permanent < permanent_budget {
                let pid = ProcessId(cfg_rng.below(n as u64) as u16);
                s = s.remove_node(pid, at(&mut cfg_rng, 0.1, 0.4));
            }
        }

        // Pipeline depth: a configuration axis, not a fault — drawn
        // uniformly from 1..=max so every fault family above is also
        // fuzzed against pipelined instance execution. A derived stream
        // keeps the fault-window shapes identical across this feature.
        if profile.max_pipeline_depth > 1 {
            let mut depth_rng = DetRng::derive(seed, 0xA1FA);
            s.pipeline_depth = 1 + depth_rng.below(profile.max_pipeline_depth as u64) as usize;
        }

        // Dissemination strategy: the second configuration axis —
        // Ring and Tree drawn evenly when the knob fires, from a
        // derived stream so enabling the payload offload never
        // perturbs the fault-window shapes above.
        if profile.dissemination_prob > 0.0 {
            let mut dis_rng = DetRng::derive(seed, 0xD155);
            if dis_rng.unit_f64() < profile.dissemination_prob {
                s.dissemination = if dis_rng.below(2) == 0 {
                    Dissemination::Ring
                } else {
                    Dissemination::Tree
                };
            }
        }

        s
    }
}

fn random_selector(rng: &mut DetRng, n: usize) -> LinkSelector {
    let a = ProcessId(rng.below(n as u64) as u16);
    let b = ProcessId(((a.0 as u64 + 1 + rng.below(n as u64 - 1)) % n as u64) as u16);
    match rng.below(5) {
        0 => LinkSelector::All,
        1 => LinkSelector::Between(a, b),
        2 => LinkSelector::Directed { src: a, dst: b },
        3 => LinkSelector::From(a),
        _ => LinkSelector::To(a),
    }
}

/// Tunables of the random scenario generator (probabilities per fault
/// family, horizon, crash budget).
#[derive(Debug, Clone)]
pub struct ChaosProfile {
    /// All fault activity finishes by this offset.
    pub horizon: VDur,
    /// Upper bound on crash count. Permanent crashes are additionally
    /// clamped to a minority, `(n-1)/2`; crash-restart cycles are only
    /// clamped so that one process stays untouched.
    pub max_crashes: usize,
    /// Probability that each allowed crash slot is used.
    pub crash_prob: f64,
    /// Probability that a drawn crash is followed by a restart
    /// (crash-recovery) instead of being permanent. Requires the run to
    /// register a node factory (`Cluster::set_node_factory` — the
    /// experiment runner and `fortika-core::node_factory` do this).
    pub restart_prob: f64,
    /// Probability that a crash-restart victim later crashes **again,
    /// permanently** (crash-restart-crash). The second crash consumes a
    /// slot of the permanent minority budget, since a process that
    /// stays down after its revival erodes the quorum like any other
    /// permanent crash.
    pub recrash_prob: f64,
    /// Probability of a (healing) partition window.
    pub partition_prob: f64,
    /// Probability of a lossy window.
    pub loss_prob: f64,
    /// Cap on the drop probability of lossy windows.
    pub max_loss: f64,
    /// Probability of a duplication window.
    pub dup_prob: f64,
    /// Probability of a delay-spike window.
    pub delay_prob: f64,
    /// Probability of a degraded-link window (bandwidth shrunk to
    /// 5–50 % of nominal; the link serializes at the reduced rate).
    pub degrade_prob: f64,
    /// Probability of a slow-node window (one process's CPU costs
    /// multiplied 2–6×; the victim stays correct, just slower).
    pub slow_prob: f64,
    /// Probability of a scripted false-suspicion window.
    pub false_suspicion_prob: f64,
    /// Probability of a log-decided grow ([`ScenarioEvent::AddNode`]):
    /// the standby `pid = n` boots and joins mid-run. Defaults to 0 —
    /// reconfiguration runs need the experiment runner's standby
    /// provisioning, so profiles opt in explicitly (see
    /// [`ChaosProfile::with_reconfig`]).
    pub add_node_prob: f64,
    /// Probability of a log-decided shrink
    /// ([`ScenarioEvent::RemoveNode`]) of a random initial member. The
    /// shrink consumes a slot of the permanent crash budget (removing a
    /// voter erodes the original quorum margin until the smaller
    /// majority takes over). Defaults to 0; see
    /// [`ChaosProfile::with_reconfig`].
    pub remove_node_prob: f64,
    /// Upper bound of the windowed-sequencer depth drawn per scenario
    /// (uniform in `1..=max_pipeline_depth`, from a derived RNG stream
    /// so fault-window shapes are preserved). `1` pins every run to the
    /// seed-faithful sequential regime.
    pub max_pipeline_depth: usize,
    /// Probability that a scenario runs under an offloaded payload
    /// dissemination strategy ([`Scenario::dissemination`]; Ring and
    /// Tree drawn evenly when the knob fires, from a derived RNG
    /// stream so fault-window shapes are preserved). `0` pins every
    /// run to the seed-faithful direct-diffusion regime. Offloaded
    /// runs are incompatible with `StackConfig::app_state`, so
    /// profiles for app-state harnesses must leave this at 0.
    pub dissemination_prob: f64,
}

impl Default for ChaosProfile {
    fn default() -> Self {
        ChaosProfile {
            horizon: VDur::secs(2),
            max_crashes: usize::MAX,
            crash_prob: 0.5,
            restart_prob: 0.4,
            recrash_prob: 0.25,
            partition_prob: 0.5,
            loss_prob: 0.5,
            max_loss: 0.3,
            dup_prob: 0.35,
            delay_prob: 0.35,
            degrade_prob: 0.25,
            slow_prob: 0.25,
            false_suspicion_prob: 0.35,
            add_node_prob: 0.0,
            remove_node_prob: 0.0,
            max_pipeline_depth: 4,
            dissemination_prob: 0.0,
        }
    }
}

impl ChaosProfile {
    /// A profile without crashes or permanent effects — only transient
    /// network mischief (loss, duplication, delay, partitions).
    pub fn network_only() -> Self {
        ChaosProfile {
            crash_prob: 0.0,
            ..ChaosProfile::default()
        }
    }

    /// A profile of **resource faults only** (degraded links, slow
    /// nodes): no process crashes, no message is ever dropped — the
    /// cluster merely runs short of bandwidth and CPU. Latency and
    /// throughput suffer, but every safety *and* liveness obligation
    /// still holds, which is exactly what the resource-fault regression
    /// suite asserts.
    pub fn resource_only() -> Self {
        ChaosProfile {
            crash_prob: 0.0,
            partition_prob: 0.0,
            loss_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            false_suspicion_prob: 0.0,
            degrade_prob: 0.9,
            slow_prob: 0.9,
            ..ChaosProfile::default()
        }
    }

    /// The default profile with the dynamic-membership family switched
    /// on: each scenario may grow the group by one standby and/or
    /// shrink it by one member, on top of the usual fault mix. Use with
    /// the experiment runner — generated [`AddNode`] events need its
    /// standby provisioning (capacity, boot-at-join, snapshot
    /// catch-up).
    ///
    /// [`AddNode`]: ScenarioEvent::AddNode
    pub fn with_reconfig() -> Self {
        ChaosProfile {
            add_node_prob: 0.6,
            remove_node_prob: 0.5,
            ..ChaosProfile::default()
        }
    }

    /// Coverage-steered reweighting: boosts the probability of every
    /// fault family in proportion to its **coverage deficit** — the
    /// fraction of protocol branches no absorbed run containing that
    /// family has reached ([`CoverageReport::family_deficit`]) — so the
    /// next batch of [`Scenario::random`] draws leans toward the
    /// family × branch cells the campaign has not witnessed yet.
    ///
    /// Three invariants keep steering safe and reproducible:
    ///
    /// * **Empty report ⇒ identity.** With zero absorbed runs the
    ///   profile is returned unchanged, so an unsteered campaign's
    ///   draws are byte-identical to today's.
    /// * **Disabled families stay disabled.** A knob at 0.0 is never
    ///   raised: steering explores within the profile author's fault
    ///   envelope, it does not widen it (a validity-preserving profile
    ///   stays validity-preserving).
    /// * **Same streams.** Steering only changes knob *values*; the
    ///   generator consumes its RNG streams identically, so the same
    ///   `(seed, CoverageReport)` pair always yields the same scenario.
    ///
    /// Boosts are capped at 0.9 so a residual of unsteered draws keeps
    /// exploring combinations outside the deficit-ranked families.
    pub fn steered(&self, report: &CoverageReport) -> ChaosProfile {
        if report.runs() == 0 {
            return self.clone();
        }
        let boost = |prob: f64, deficit: f64| -> f64 {
            if prob <= 0.0 || deficit <= 0.0 {
                prob
            } else {
                let target = prob + (MAX_STEERED_PROB - prob).max(0.0) * deficit;
                target.min(MAX_STEERED_PROB)
            }
        };
        let d = |family: &str| report.family_deficit(family);
        ChaosProfile {
            // Restarts (and recrashes) only happen on crashed
            // processes, so the crash knob carries their deficit too.
            crash_prob: boost(self.crash_prob, d("crash").max(d("restart"))),
            restart_prob: boost(self.restart_prob, d("restart")),
            recrash_prob: boost(self.recrash_prob, d("restart")),
            partition_prob: boost(self.partition_prob, d("partition")),
            loss_prob: boost(self.loss_prob, d("lossy")),
            dup_prob: boost(self.dup_prob, d("duplicate")),
            delay_prob: boost(self.delay_prob, d("delay_spike")),
            degrade_prob: boost(self.degrade_prob, d("degrade_link")),
            slow_prob: boost(self.slow_prob, d("slow_node")),
            false_suspicion_prob: boost(self.false_suspicion_prob, d("false_suspicion")),
            add_node_prob: boost(self.add_node_prob, d("add_node")),
            remove_node_prob: boost(self.remove_node_prob, d("remove_node")),
            dissemination_prob: boost(self.dissemination_prob, d("dissemination")),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_events() {
        let s = Scenario::new()
            .crash(ProcessId(0), VDur::millis(10))
            .partition(
                vec![vec![ProcessId(0), ProcessId(1)], vec![ProcessId(2)]],
                VDur::millis(5),
                VDur::millis(50),
            )
            .lossy(LinkSelector::All, 0.2, VDur::ZERO, VDur::millis(100));
        assert_eq!(s.events().len(), 3);
        assert_eq!(s.crashed(), vec![ProcessId(0)]);
        assert_eq!(s.correct(3), vec![ProcessId(1), ProcessId(2)]);
        assert!(s.heals());
        assert_eq!(s.horizon(), VDur::millis(100));
    }

    #[test]
    fn permanent_partition_does_not_heal() {
        let s = Scenario::new().partition_forever(
            vec![vec![ProcessId(0)], vec![ProcessId(1)]],
            VDur::millis(1),
        );
        assert!(!s.heals());
    }

    #[test]
    fn random_scenarios_replay_and_respect_minority() {
        for n in [3usize, 5, 7] {
            for seed in 0..40u64 {
                let a = Scenario::random(n, seed, &ChaosProfile::default());
                let b = Scenario::random(n, seed, &ChaosProfile::default());
                assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "seed {seed} not reproducible"
                );
                assert!(
                    a.crashed().len() <= (n - 1) / 2,
                    "seed {seed}: {} crashes of n={n}",
                    a.crashed().len()
                );
                assert!(a.heals(), "seed {seed}: generated a non-healing fault");
                assert!(a.horizon() <= VDur::secs(2) + VDur::secs(1));
            }
        }
    }

    #[test]
    fn restart_makes_a_crashed_process_correct_again() {
        let s = Scenario::new()
            .crash(ProcessId(0), VDur::millis(10))
            .restart(ProcessId(0), VDur::millis(50))
            .crash(ProcessId(1), VDur::millis(20));
        // p1 came back: only p2 is permanently crashed.
        assert_eq!(s.crashed(), vec![ProcessId(1)]);
        assert_eq!(s.restarted(), vec![ProcessId(0)]);
        assert!(s.quorum_safe(3));
        assert_eq!(s.correct(3), vec![ProcessId(0), ProcessId(2)]);
        assert_eq!(s.horizon(), VDur::millis(50));
        assert!(s.heals());
    }

    #[test]
    fn generator_emits_restarts_within_budgets() {
        let mut any_restart = false;
        for n in [3usize, 5] {
            for seed in 0..60u64 {
                let s = Scenario::random(n, seed, &ChaosProfile::default());
                assert!(
                    s.quorum_safe(n),
                    "seed {seed} n={n}: permanent crashes exceed the minority"
                );
                // Every restart pairs with an earlier crash of the same
                // process, and one process never crashes at all.
                let mut crash_at: std::collections::HashMap<ProcessId, VDur> = Default::default();
                for ev in s.events() {
                    match ev {
                        ScenarioEvent::Crash { pid, at } => {
                            crash_at.insert(*pid, *at);
                        }
                        ScenarioEvent::Restart { pid, at } => {
                            let down = crash_at.get(pid).expect("restart without crash");
                            assert!(at > down, "seed {seed}: restart not after crash");
                        }
                        _ => {}
                    }
                }
                assert!(
                    crash_at.len() < n,
                    "seed {seed} n={n}: no process left untouched"
                );
                any_restart |= !s.restarted().is_empty();
            }
        }
        assert!(any_restart, "default profile never generated a restart");
    }

    #[test]
    fn crash_restart_crash_is_a_permanent_crash() {
        // Audit of the quorum accounting: a process that crashes, comes
        // back, and then crashes *again* without a later restart stays
        // down — it must count against the permanent minority, exactly
        // like a never-revived crash.
        let s = Scenario::new()
            .crash(ProcessId(0), VDur::millis(10))
            .restart(ProcessId(0), VDur::millis(20))
            .crash(ProcessId(0), VDur::millis(30))
            .crash(ProcessId(1), VDur::millis(15));
        assert_eq!(s.crashed(), vec![ProcessId(0), ProcessId(1)]);
        assert_eq!(s.restarted(), vec![ProcessId(0)]);
        assert_eq!(s.correct(3), vec![ProcessId(2)]);
        // Two permanent crashes exceed the minority of n = 3 but not 5.
        assert!(!s.quorum_safe(3));
        assert!(s.quorum_safe(5));
    }

    #[test]
    fn generator_recrashes_consume_the_permanent_budget() {
        let profile = ChaosProfile {
            crash_prob: 1.0,
            restart_prob: 0.8,
            recrash_prob: 1.0,
            ..ChaosProfile::default()
        };
        let mut any_recrash = false;
        for n in [3usize, 5, 7] {
            for seed in 0..60u64 {
                let s = Scenario::random(n, seed, &profile);
                assert!(
                    s.quorum_safe(n),
                    "seed {seed} n={n}: {} permanent crashes exceed the minority",
                    s.crashed().len()
                );
                // A crash-restart-crash victim appears in both sets, and
                // its final crash must strictly follow its restart.
                let crashed = s.crashed();
                for pid in s.restarted() {
                    if !crashed.contains(&pid) {
                        continue;
                    }
                    any_recrash = true;
                    let last_restart = s
                        .events()
                        .iter()
                        .filter_map(|ev| match ev {
                            ScenarioEvent::Restart { pid: p, at } if *p == pid => Some(*at),
                            _ => None,
                        })
                        .max()
                        .expect("restarted");
                    let last_crash = s
                        .events()
                        .iter()
                        .filter_map(|ev| match ev {
                            ScenarioEvent::Crash { pid: p, at } if *p == pid => Some(*at),
                            _ => None,
                        })
                        .max()
                        .expect("crashed");
                    assert!(
                        last_crash > last_restart,
                        "seed {seed}: recrash not after restart"
                    );
                }
            }
        }
        assert!(any_recrash, "recrash_prob 1.0 never produced a recrash");
    }

    #[test]
    fn generator_draws_bounded_pipeline_depths() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..60u64 {
            let a = Scenario::random(4, seed, &ChaosProfile::default());
            let b = Scenario::random(4, seed, &ChaosProfile::default());
            assert_eq!(
                a.pipeline_depth(),
                b.pipeline_depth(),
                "seed {seed}: depth draw not reproducible"
            );
            assert!(
                (1..=4).contains(&a.pipeline_depth()),
                "seed {seed}: depth {} out of 1..=4",
                a.pipeline_depth()
            );
            seen.insert(a.pipeline_depth());
        }
        assert!(seen.len() > 2, "depth barely varies: {seen:?}");
        // Depth 1 pins the sequential regime.
        let pinned = ChaosProfile {
            max_pipeline_depth: 1,
            ..ChaosProfile::default()
        };
        for seed in 0..10u64 {
            assert_eq!(Scenario::random(4, seed, &pinned).pipeline_depth(), 1);
        }
        // Hand-built scenarios default to 1 and are overridable.
        assert_eq!(Scenario::new().pipeline_depth(), 1);
        assert_eq!(Scenario::new().with_pipeline_depth(6).pipeline_depth(), 6);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_pipeline_depth_rejected() {
        let _ = Scenario::new().with_pipeline_depth(0);
    }

    #[test]
    fn random_scenarios_vary_with_seed() {
        let distinct: std::collections::HashSet<String> = (0..20)
            .map(|seed| format!("{:?}", Scenario::random(5, seed, &ChaosProfile::default())))
            .collect();
        assert!(
            distinct.len() > 10,
            "generator barely varies: {}",
            distinct.len()
        );
    }

    #[test]
    fn resource_fault_windows_heal_and_extend_horizon() {
        let s = Scenario::new()
            .degrade_link(LinkSelector::All, 100, VDur::millis(50), VDur::millis(150))
            .slow_node(ProcessId(2), 4000, VDur::millis(100), VDur::millis(400));
        assert!(s.heals());
        assert_eq!(s.horizon(), VDur::millis(400));
        // Resource faults crash nobody: everyone stays correct.
        assert_eq!(s.crashed(), vec![]);
        assert_eq!(s.correct(3).len(), 3);
        assert!(s.quorum_safe(3));
    }

    #[test]
    fn resource_only_profile_generates_only_resource_faults() {
        let mut any_degrade = false;
        let mut any_slow = false;
        for seed in 0..40u64 {
            let s = Scenario::random(4, seed, &ChaosProfile::resource_only());
            for ev in s.events() {
                match ev {
                    ScenarioEvent::DegradeLink { rate_milli, .. } => {
                        assert!((1..=1000).contains(rate_milli));
                        any_degrade = true;
                    }
                    ScenarioEvent::SlowNode {
                        pid, factor_milli, ..
                    } => {
                        assert!(pid.index() < 4);
                        assert!(*factor_milli >= 1000, "generator must not speed nodes up");
                        any_slow = true;
                    }
                    other => panic!("resource_only generated {other:?}"),
                }
            }
            assert!(s.heals(), "seed {seed}: resource window never closes");
        }
        assert!(any_degrade, "profile never degraded a link");
        assert!(any_slow, "profile never slowed a node");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn degrade_rate_zero_rejected() {
        let _ = Scenario::new().degrade_link(LinkSelector::All, 0, VDur::ZERO, VDur::millis(1));
    }

    #[test]
    fn families_are_deduped_ordered_and_track_pipelining() {
        let s = Scenario::new()
            .lossy(LinkSelector::All, 0.2, VDur::ZERO, VDur::millis(10))
            .crash(ProcessId(0), VDur::millis(5))
            .crash(ProcessId(1), VDur::millis(6))
            .restart(ProcessId(0), VDur::millis(9));
        // Canonical order, duplicates collapsed, depth 1 => no
        // "pipelined" family.
        assert_eq!(s.families(), vec!["crash", "restart", "lossy"]);
        let piped = s.with_pipeline_depth(3);
        assert_eq!(
            piped.families(),
            vec!["crash", "restart", "lossy", "pipelined"]
        );
        let offloaded = piped.clone().with_dissemination(Dissemination::Ring);
        assert_eq!(
            offloaded.families(),
            vec!["crash", "restart", "lossy", "pipelined", "dissemination"]
        );
        assert_eq!(Scenario::new().families(), Vec::<&str>::new());
        assert_eq!(
            Scenario::new()
                .with_dissemination(Dissemination::Direct)
                .families(),
            Vec::<&str>::new()
        );
        // Every family string the events can produce is in the
        // canonical vocabulary.
        for ev in piped.events() {
            assert!(FAMILIES.contains(&ev.family()), "{:?}", ev.family());
        }
    }

    #[test]
    fn reconfig_tick_ids_roundtrip_and_stay_reserved() {
        for change in [
            ConfigChange::Add(ProcessId(0)),
            ConfigChange::Add(ProcessId(7)),
            ConfigChange::Remove(ProcessId(0)),
            ConfigChange::Remove(ProcessId(513)),
        ] {
            let tick = reconfig_tick(change);
            assert!(tick >= RECONFIG_TICK_BASE, "{change:?} not reserved");
            assert_eq!(parse_reconfig_tick(tick), Some(change));
        }
        // Ordinary workload tick ids never decode as reconfigurations.
        for tick in [0u64, 1, 17, u32::MAX as u64] {
            assert_eq!(parse_reconfig_tick(tick), None);
        }
    }

    #[test]
    fn quorum_safe_walks_the_config_timeline() {
        // Grow first, crash later: the 4-member group tolerates the
        // single crash (and so would the original trio).
        let grown = Scenario::new()
            .add_node(ProcessId(3), VDur::millis(100))
            .crash(ProcessId(0), VDur::millis(500));
        assert!(grown.quorum_safe(3));
        assert_eq!(grown.capacity(3), 4);
        // Two crashes after growing 3 -> 5 are fine; without the grows
        // they exceed the trio's minority.
        let five = Scenario::new()
            .add_node(ProcessId(3), VDur::millis(50))
            .add_node(ProcessId(4), VDur::millis(100))
            .crash(ProcessId(0), VDur::millis(500))
            .crash(ProcessId(1), VDur::millis(600));
        assert!(five.quorum_safe(3));
        assert_eq!(five.capacity(3), 5);
        assert!(!Scenario::new()
            .crash(ProcessId(0), VDur::millis(500))
            .crash(ProcessId(1), VDur::millis(600))
            .quorum_safe(3));
        // Crashing *before* the grow activates is charged against the
        // small config: two early crashes of a trio are unsafe even
        // with a later grow.
        let early = Scenario::new()
            .crash(ProcessId(0), VDur::millis(10))
            .crash(ProcessId(1), VDur::millis(20))
            .add_node(ProcessId(3), VDur::millis(500))
            .add_node(ProcessId(4), VDur::millis(600));
        assert!(!early.quorum_safe(3));
        // Shrink then crash the *removed* process: free. Crash a
        // remaining member instead: the pair loses its majority.
        assert!(Scenario::new()
            .remove_node(ProcessId(2), VDur::millis(100))
            .crash(ProcessId(2), VDur::millis(500))
            .quorum_safe(3));
        assert!(!Scenario::new()
            .remove_node(ProcessId(2), VDur::millis(100))
            .crash(ProcessId(0), VDur::millis(500))
            .quorum_safe(3));
        // reconfigs() lists submissions in timeline order.
        assert_eq!(
            five.reconfigs(),
            vec![
                (VDur::millis(50), ConfigChange::Add(ProcessId(3))),
                (VDur::millis(100), ConfigChange::Add(ProcessId(4))),
            ]
        );
    }

    #[test]
    fn generator_reconfigs_are_deterministic_and_quorum_safe() {
        let profile = ChaosProfile::with_reconfig();
        let mut any_add = false;
        let mut any_remove = false;
        for n in [3usize, 5] {
            for seed in 0..60u64 {
                let a = Scenario::random(n, seed, &profile);
                let b = Scenario::random(n, seed, &profile);
                assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "seed {seed}: reconfig stream not reproducible"
                );
                assert!(a.quorum_safe(n), "seed {seed} n={n}: not quorum safe");
                assert!(a.heals(), "seed {seed}: non-healing fault");
                let mut adds = 0;
                let mut removes = 0;
                for ev in a.events() {
                    match ev {
                        ScenarioEvent::AddNode { pid, at } => {
                            adds += 1;
                            assert_eq!(pid.index(), n, "grows boot the first standby");
                            assert!(*at <= profile.horizon);
                        }
                        ScenarioEvent::RemoveNode { pid, at } => {
                            removes += 1;
                            assert!(pid.index() < n, "shrinks target initial members");
                            assert!(*at <= profile.horizon);
                        }
                        _ => {}
                    }
                }
                assert!(adds <= 1 && removes <= 1, "seed {seed}: too many reconfigs");
                any_add |= adds > 0;
                any_remove |= removes > 0;
            }
        }
        assert!(any_add, "with_reconfig never grew the group");
        assert!(any_remove, "with_reconfig never shrank the group");
    }

    #[test]
    fn reconfig_stream_leaves_existing_fault_shapes_untouched() {
        // The reconfig draws come from their own derived stream: for
        // every seed, stripping the add/remove events from a
        // reconfig-enabled scenario must yield byte-for-byte the
        // scenario the default profile generates.
        let plain = ChaosProfile::default();
        let reconfig = ChaosProfile::with_reconfig();
        for seed in 0..40u64 {
            let a = Scenario::random(5, seed, &plain);
            let b = Scenario::random(5, seed, &reconfig);
            let stripped: Vec<String> = b
                .events()
                .iter()
                .filter(|ev| {
                    !matches!(
                        ev,
                        ScenarioEvent::AddNode { .. } | ScenarioEvent::RemoveNode { .. }
                    )
                })
                .map(|ev| format!("{ev:?}"))
                .collect();
            let base: Vec<String> = a.events().iter().map(|ev| format!("{ev:?}")).collect();
            assert_eq!(base, stripped, "seed {seed}: fault shapes perturbed");
            assert_eq!(a.pipeline_depth(), b.pipeline_depth());
        }
    }

    #[test]
    fn dissemination_stream_leaves_existing_fault_shapes_untouched() {
        // Same contract as the reconfig stream: enabling the
        // dissemination axis must not perturb a single fault window or
        // the pipeline-depth draw — only the strategy field may differ.
        let plain = ChaosProfile::default();
        let offload = ChaosProfile {
            dissemination_prob: 0.7,
            ..ChaosProfile::default()
        };
        let mut saw_ring = false;
        let mut saw_tree = false;
        let mut saw_direct = false;
        for seed in 0..40u64 {
            let a = Scenario::random(5, seed, &plain);
            let b = Scenario::random(5, seed, &offload);
            let base: Vec<String> = a.events().iter().map(|ev| format!("{ev:?}")).collect();
            let with_knob: Vec<String> = b.events().iter().map(|ev| format!("{ev:?}")).collect();
            assert_eq!(base, with_knob, "seed {seed}: fault shapes perturbed");
            assert_eq!(a.pipeline_depth(), b.pipeline_depth());
            assert_eq!(a.dissemination(), Dissemination::Direct);
            match b.dissemination() {
                Dissemination::Direct => saw_direct = true,
                Dissemination::Ring => saw_ring = true,
                Dissemination::Tree => saw_tree = true,
            }
        }
        assert!(saw_ring, "knob at 0.7 never drew Ring");
        assert!(saw_tree, "knob at 0.7 never drew Tree");
        assert!(saw_direct, "knob at 0.7 never left a run Direct");
    }

    #[test]
    fn suspicion_windows_extracted() {
        let s = Scenario::new().false_suspicion(
            ProcessId(1),
            ProcessId(0),
            VDur::millis(10),
            VDur::millis(20),
        );
        let w = s.suspicion_windows();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].observer, ProcessId(1));
        assert_eq!(w[0].suspect, ProcessId(0));
        assert_eq!(w[0].from, VTime::ZERO + VDur::millis(10));
    }
}
