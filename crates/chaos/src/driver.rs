//! Scripted workload driver for scenario runs.
//!
//! Correctness-oriented chaos runs need a driver that (a) submits a
//! known plan of `abcast` calls, (b) honors flow control the way a real
//! blocking caller would, (c) skips senders that have crashed, and
//! (d) feeds everything it learns into the [`DeliveryOracle`]. This
//! module provides that driver so tests and examples do not each
//! reimplement it.

use std::collections::VecDeque;

use bytes::Bytes;
use fortika_net::{
    reconfig_payload, Admission, AppMsg, AppRequest, Cluster, ClusterApi, ConfigStamp, Delivery,
    Harness, MsgId, ProcessId, SnapshotStamp, RECONFIG_SEQ_BASE,
};
use fortika_sim::{DetRng, VDur, VTime};

use crate::oracle::DeliveryOracle;
use crate::scenario::parse_reconfig_tick;

/// Retry spacing for a reconfiguration submission that could not be
/// placed yet (flow control blocked it, or no process was alive).
const RECONFIG_RETRY: VDur = VDur::millis(10);

/// Turns the reserved reconfiguration ticks a [`Scenario`] schedules
/// ([`reconfig_tick`]) into actual `abcast` submissions of the encoded
/// [`ConfigChange`] payload. Both [`ScriptedDriver`] and the experiment
/// runner's tap embed one, so reconfigurations ride the same submission
/// path as application traffic — decided through the log, like the
/// paper's group-membership service would.
///
/// [`Scenario`]: crate::Scenario
/// [`reconfig_tick`]: crate::reconfig_tick
/// [`ConfigChange`]: fortika_net::ConfigChange
#[derive(Debug, Default)]
pub struct ReconfigInjector {
    seq: u64,
}

impl ReconfigInjector {
    /// A fresh injector (sequence numbers start at
    /// [`RECONFIG_SEQ_BASE`]).
    pub fn new() -> Self {
        ReconfigInjector::default()
    }

    /// Handles `tick` if it is a reserved reconfiguration tick: submits
    /// the encoded change through the first alive process, rescheduling
    /// the tick `RECONFIG_RETRY` later while flow control
    /// blocks it (or nobody is alive yet). Returns `None` for ordinary
    /// workload ticks, `Some(Some(id))` when the submission was
    /// accepted under `id` (feed it to the oracle), and `Some(None)`
    /// when the tick was consumed but the submission is still pending.
    pub fn on_tick(
        &mut self,
        api: &mut ClusterApi<'_>,
        tick: u64,
        at: VTime,
    ) -> Option<Option<MsgId>> {
        let change = parse_reconfig_tick(tick)?;
        let sender = (0..api.n())
            .map(|i| ProcessId(i as u16))
            .find(|p| api.alive(*p));
        let Some(sender) = sender else {
            api.schedule_tick(at + RECONFIG_RETRY, tick);
            return Some(None);
        };
        let id = MsgId::new(sender, RECONFIG_SEQ_BASE + self.seq);
        let msg = AppMsg::new(id, reconfig_payload(change));
        let (adm, _) = api.submit(sender, AppRequest::Abcast(msg));
        match adm {
            Admission::Accepted => {
                self.seq += 1;
                Some(Some(id))
            }
            Admission::Blocked => {
                api.schedule_tick(at + RECONFIG_RETRY, tick);
                Some(None)
            }
        }
    }
}

/// One planned `abcast` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Submission {
    /// The submitting process.
    pub sender: ProcessId,
    /// Offset from the start of the run.
    pub at: VDur,
    /// Payload size in bytes.
    pub size: usize,
}

/// A plan of scripted submissions.
#[derive(Debug, Clone, Default)]
pub struct LoadPlan {
    /// The planned calls (any order; the driver sorts by time).
    pub submissions: Vec<Submission>,
}

impl LoadPlan {
    /// A round-robin plan: `count` messages of `size` bytes, one every
    /// `spacing`, senders rotating through the group.
    pub fn round_robin(n: usize, count: usize, spacing: VDur, size: usize) -> LoadPlan {
        LoadPlan {
            submissions: (0..count)
                .map(|i| Submission {
                    sender: ProcessId((i % n) as u16),
                    at: spacing * (i as u64 + 1),
                    size,
                })
                .collect(),
        }
    }

    /// A seeded random plan: `count` messages at uniform random instants
    /// in `[0, horizon)` from uniform random senders, sized in
    /// `[min(16, max_size), max_size]`.
    ///
    /// # Panics
    ///
    /// Panics if `max_size` is zero (a plan of unsendable messages is a
    /// test bug, not a workload).
    pub fn random(n: usize, seed: u64, count: usize, horizon: VDur, max_size: usize) -> LoadPlan {
        assert!(max_size >= 1, "max_size must admit at least one byte");
        let mut rng = DetRng::derive(seed, 0x10AD);
        // Prefer payloads of at least 16 bytes, but never exceed the
        // configured cap: the old arithmetic generated sizes *above*
        // `max_size` whenever `max_size < 16`.
        let lo = max_size.min(16);
        LoadPlan {
            submissions: (0..count)
                .map(|_| Submission {
                    sender: ProcessId(rng.below(n as u64) as u16),
                    at: VDur::nanos(rng.below(horizon.as_nanos().max(1))),
                    size: lo + rng.below((max_size - lo + 1) as u64) as usize,
                })
                .collect(),
        }
    }
}

/// Drives a [`LoadPlan`] through a cluster while recording every
/// delivery into a [`DeliveryOracle`].
///
/// Submission semantics mirror a real blocking `abcast` caller: a
/// blocked submission parks at its sender and is retried when flow
/// control reopens; meanwhile, later planned submissions from that
/// sender queue behind it. Submissions from crashed senders are skipped.
pub struct ScriptedDriver {
    plan: Vec<Submission>,
    oracle: DeliveryOracle,
    next_seq: Vec<u64>,
    /// Parked message + queued plan sizes, per sender.
    parked: Vec<Option<AppMsg>>,
    backlog: Vec<VecDeque<usize>>,
    accepted: Vec<MsgId>,
    /// Incarnation of the sender at acceptance time, parallel to
    /// [`accepted`](Self::accepted).
    accepted_inc: Vec<u32>,
    /// Restarts observed so far, per process.
    incarnation: Vec<u32>,
    /// Submits the scenario's reserved reconfiguration ticks.
    injector: ReconfigInjector,
    /// Accepted reconfiguration submissions so far — the version floor
    /// fed to [`DeliveryOracle::expect_configs`].
    reconfigs_accepted: u64,
}

impl ScriptedDriver {
    /// Creates a driver for a cluster of `n` processes.
    pub fn new(n: usize, mut plan: LoadPlan) -> Self {
        plan.submissions.sort_by_key(|s| s.at);
        ScriptedDriver {
            plan: plan.submissions,
            oracle: DeliveryOracle::new(n),
            next_seq: vec![0; n],
            parked: vec![None; n],
            backlog: vec![VecDeque::new(); n],
            accepted: Vec::new(),
            accepted_inc: Vec::new(),
            incarnation: vec![0; n],
            injector: ReconfigInjector::new(),
            reconfigs_accepted: 0,
        }
    }

    /// Schedules the plan's ticks; call once before running the cluster.
    pub fn start(&mut self, cluster: &mut Cluster) {
        let t0 = cluster.now();
        for (i, sub) in self.plan.iter().enumerate() {
            cluster.schedule_tick(t0 + sub.at, i as u64);
        }
    }

    /// The oracle with everything recorded so far.
    pub fn oracle(&self) -> &DeliveryOracle {
        &self.oracle
    }

    /// Ids of all accepted (admitted) submissions, in acceptance order.
    pub fn accepted(&self) -> &[MsgId] {
        &self.accepted
    }

    /// Ids accepted at processes in `senders` (e.g. the scenario's
    /// correct set) **during the sender's latest incarnation** — the
    /// must-deliver set for validity checks. A message accepted just
    /// before its sender crashed may legitimately die with the crash
    /// even if the sender later restarts (the restarted process has
    /// fresh volatile state and does not re-diffuse it), so pre-crash
    /// acceptances carry no delivery obligation.
    pub fn accepted_at(&self, senders: &[ProcessId]) -> Vec<MsgId> {
        self.accepted
            .iter()
            .zip(self.accepted_inc.iter())
            .filter(|(id, &inc)| {
                senders.contains(&id.sender) && inc == self.incarnation[id.sender.index()]
            })
            .map(|(id, _)| *id)
            .collect()
    }

    fn try_submit(&mut self, api: &mut ClusterApi<'_>, sender: ProcessId, size: usize) {
        if !api.alive(sender) {
            return;
        }
        if self.parked[sender.index()].is_some() {
            // Still blocked inside the previous abcast: queue behind it.
            self.backlog[sender.index()].push_back(size);
            return;
        }
        let id = MsgId::new(sender, self.next_seq[sender.index()]);
        let msg = AppMsg::new(id, Bytes::from(vec![sender.0 as u8; size]));
        self.submit(api, sender, msg);
    }

    fn submit(&mut self, api: &mut ClusterApi<'_>, sender: ProcessId, msg: AppMsg) {
        let (adm, _t0) = api.submit(sender, AppRequest::Abcast(msg.clone()));
        match adm {
            Admission::Accepted => {
                self.next_seq[sender.index()] += 1;
                self.oracle.note_submission(msg.id);
                self.accepted.push(msg.id);
                self.accepted_inc.push(self.incarnation[sender.index()]);
            }
            Admission::Blocked => {
                self.parked[sender.index()] = Some(msg);
            }
        }
    }

    /// Retries the parked message and drains the backlog of `pid` (flow
    /// control reopened, or the process restarted with a fresh window).
    fn resume_sender(&mut self, api: &mut ClusterApi<'_>, pid: ProcessId) {
        if let Some(msg) = self.parked[pid.index()].take() {
            self.submit(api, pid, msg);
        }
        while self.parked[pid.index()].is_none() {
            let Some(size) = self.backlog[pid.index()].pop_front() else {
                break;
            };
            self.try_submit(api, pid, size);
        }
    }
}

impl Harness for ScriptedDriver {
    fn on_tick(&mut self, api: &mut ClusterApi<'_>, tick: u64, at: VTime) {
        if let Some(outcome) = self.injector.on_tick(api, tick, at) {
            if let Some(id) = outcome {
                self.oracle.note_submission(id);
                self.reconfigs_accepted += 1;
                self.oracle.expect_configs(self.reconfigs_accepted);
            }
            return;
        }
        let sub = self.plan[tick as usize];
        self.try_submit(api, sub.sender, sub.size);
    }

    fn on_app_ready(&mut self, api: &mut ClusterApi<'_>, pid: ProcessId, _at: VTime) {
        self.resume_sender(api, pid);
    }

    fn on_delivery(&mut self, _api: &mut ClusterApi<'_>, pid: ProcessId, d: Delivery, at: VTime) {
        self.oracle.record(pid, d.msg, at);
    }

    fn on_restart(&mut self, api: &mut ClusterApi<'_>, pid: ProcessId, _at: VTime) {
        self.incarnation[pid.index()] += 1;
        self.oracle.note_restart(pid);
        // A blocking caller that died inside abcast() retries against
        // the revived stack (whose flow window is empty again).
        self.resume_sender(api, pid);
    }

    fn on_snapshot(
        &mut self,
        _api: &mut ClusterApi<'_>,
        pid: ProcessId,
        stamp: SnapshotStamp,
        _at: VTime,
    ) {
        self.oracle.note_snapshot(pid, &stamp);
    }

    fn on_config(
        &mut self,
        _api: &mut ClusterApi<'_>,
        pid: ProcessId,
        stamp: ConfigStamp,
        _at: VTime,
    ) {
        self.oracle.note_config(pid, stamp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_plan_rotates_senders() {
        let plan = LoadPlan::round_robin(3, 6, VDur::millis(2), 64);
        let senders: Vec<u16> = plan.submissions.iter().map(|s| s.sender.0).collect();
        assert_eq!(senders, [0, 1, 2, 0, 1, 2]);
        assert_eq!(plan.submissions[5].at, VDur::millis(12));
    }

    #[test]
    fn random_plan_respects_small_max_size() {
        // Regression: `16 + below(..)` used to generate payloads larger
        // than the configured cap whenever `max_size < 16`.
        for max_size in [1usize, 2, 8, 15, 16] {
            let plan = LoadPlan::random(3, 7, 64, VDur::secs(1), max_size);
            for s in &plan.submissions {
                assert!(
                    s.size <= max_size,
                    "max_size {max_size}: generated {} bytes",
                    s.size
                );
                assert!(s.size >= 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn degenerate_plan_size_rejected() {
        let _ = LoadPlan::random(3, 7, 4, VDur::secs(1), 0);
    }

    #[test]
    fn random_plan_is_seeded_and_bounded() {
        let a = LoadPlan::random(4, 9, 32, VDur::secs(1), 1024);
        let b = LoadPlan::random(4, 9, 32, VDur::secs(1), 1024);
        assert_eq!(a.submissions, b.submissions);
        for s in &a.submissions {
            assert!(s.sender.index() < 4);
            assert!(s.at <= VDur::secs(1));
            assert!((16..=1024).contains(&s.size));
        }
        let c = LoadPlan::random(4, 10, 32, VDur::secs(1), 1024);
        assert_ne!(a.submissions, c.submissions);
    }
}
