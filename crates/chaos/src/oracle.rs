//! The delivery-invariant oracle.
//!
//! Atomic broadcast promises four properties (paper §2.2). The oracle
//! records every `adeliver` across the cluster and, at end of run,
//! checks them mechanically:
//!
//! * **Uniform total order + uniform agreement** — every pair of correct
//!   processes delivered the *same sequence*; a crashed (or still
//!   lagging) process delivered a *prefix* of it.
//! * **Uniform integrity** — no process delivered the same message
//!   twice, and (when submissions are tracked) nothing was delivered
//!   that was never abcast.
//! * **Validity** — every message the caller marks as *must-deliver*
//!   (abcast by a process that remained correct, under faults that heal)
//!   appears in the common order.
//!
//! Safety checks apply to **every** run, including runs with message
//! loss; validity is a liveness property and only holds when the
//! scenario's faults heal and the drain is long enough, so it is checked
//! only on request ([`DeliveryOracle::check_with_validity`]).
//!
//! The oracle is deliberately stack-agnostic: it sees only `adeliver`
//! events, so the same checker audits the modular stack, the monolithic
//! stack, or any future implementation.

use std::collections::HashSet;
use std::fmt;

use fortika_net::{ClusterApi, Delivery, Harness, MsgId, ProcessId};
use fortika_sim::VTime;

/// One detected violation of the atomic broadcast contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two correct processes disagree on the delivery sequence.
    Disagreement {
        /// Reference process (first correct process).
        reference: ProcessId,
        /// The diverging process.
        process: ProcessId,
        /// First index at which the sequences differ.
        index: usize,
        /// What `reference` delivered there (`None` = nothing).
        expected: Option<MsgId>,
        /// What `process` delivered there.
        got: Option<MsgId>,
    },
    /// A process delivered the same message twice.
    DuplicateDelivery {
        /// The offending process.
        process: ProcessId,
        /// The doubly delivered message.
        id: MsgId,
    },
    /// A process delivered a message that was never submitted.
    UnknownDelivery {
        /// The offending process.
        process: ProcessId,
        /// The fabricated message id.
        id: MsgId,
    },
    /// A crashed/lagging process's log is not a prefix of the common
    /// order.
    NonPrefixLog {
        /// The offending process.
        process: ProcessId,
        /// First index at which its log leaves the common order.
        index: usize,
    },
    /// A restarted process's re-delivery diverges from what its earlier
    /// incarnation delivered: recovery must replay the decided prefix
    /// byte-identically, so incarnation `segment + 1`'s log must agree
    /// position by position with incarnation `segment`'s.
    ReplayDivergence {
        /// The offending process.
        process: ProcessId,
        /// Zero-based incarnation whose log the next one contradicts.
        segment: usize,
        /// First index at which the two incarnations disagree.
        index: usize,
    },
    /// A must-deliver message never appeared in the common order.
    MissingDelivery {
        /// The lost message.
        id: MsgId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Disagreement {
                reference,
                process,
                index,
                expected,
                got,
            } => write!(
                f,
                "total order violated: {process} diverges from {reference} at index {index} \
                 (expected {expected:?}, got {got:?})"
            ),
            Violation::DuplicateDelivery { process, id } => {
                write!(f, "integrity violated: {process} delivered {id} twice")
            }
            Violation::UnknownDelivery { process, id } => {
                write!(f, "integrity violated: {process} delivered unsubmitted {id}")
            }
            Violation::NonPrefixLog { process, index } => write!(
                f,
                "uniform agreement violated: {process}'s log leaves the common order at index {index}"
            ),
            Violation::ReplayDivergence {
                process,
                segment,
                index,
            } => write!(
                f,
                "recovery replay violated: {process}'s incarnation {} contradicts incarnation \
                 {segment} at index {index}",
                segment + 1
            ),
            Violation::MissingDelivery { id } => {
                write!(f, "validity violated: {id} was abcast by a correct process but never delivered")
            }
        }
    }
}

/// Result of an oracle check.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Detected violations, in check order (empty = contract holds).
    pub violations: Vec<Violation>,
    /// Total `adeliver` events observed across all processes.
    pub deliveries: u64,
    /// The common delivery order of the correct processes (the longest
    /// log among them when they disagree).
    pub common_order: Vec<MsgId>,
}

impl OracleReport {
    /// True when no violation was detected.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with a readable list of violations, if any.
    ///
    /// # Panics
    ///
    /// Panics when the report contains violations.
    pub fn assert_ok(&self, context: &str) {
        if !self.is_ok() {
            let mut msg = format!(
                "atomic broadcast contract violated ({context}): {} violation(s)\n",
                self.violations.len()
            );
            for v in &self.violations {
                msg.push_str("  - ");
                msg.push_str(&v.to_string());
                msg.push('\n');
            }
            panic!("{msg}");
        }
    }
}

/// Records every `adeliver` and checks the atomic broadcast contract.
///
/// Use it directly as a cluster [`Harness`] for logic-only runs, wire it
/// behind a driving harness (as the experiment runner does), or feed it
/// pre-collected logs via [`DeliveryOracle::record`].
///
/// # Example
///
/// ```
/// use fortika_chaos::DeliveryOracle;
/// use fortika_net::{MsgId, ProcessId};
/// use fortika_sim::VTime;
///
/// let mut oracle = DeliveryOracle::new(2);
/// let m = MsgId::new(ProcessId(0), 0);
/// oracle.note_submission(m);
/// oracle.record(ProcessId(0), m, VTime::ZERO);
/// oracle.record(ProcessId(1), m, VTime::ZERO);
/// let report = oracle.check_with_validity(
///     &[ProcessId(0), ProcessId(1)],
///     &[m],
/// );
/// report.assert_ok("doc example");
/// ```
#[derive(Debug, Clone)]
pub struct DeliveryOracle {
    logs: Vec<Vec<(MsgId, VTime)>>,
    submitted: HashSet<MsgId>,
    track_submissions: bool,
    /// Per process: indices into its log where a new incarnation begins
    /// (crash-recovery restarts). Empty for never-restarted processes.
    restarts: Vec<Vec<usize>>,
}

impl DeliveryOracle {
    /// An oracle for a cluster of `n` processes.
    pub fn new(n: usize) -> Self {
        DeliveryOracle {
            logs: vec![Vec::new(); n],
            submitted: HashSet::new(),
            track_submissions: false,
            restarts: vec![Vec::new(); n],
        }
    }

    /// Notes that `process` was revived (crash-recovery): subsequent
    /// deliveries belong to a new incarnation. The recovery-aware
    /// checks treat each incarnation's log separately — re-delivering
    /// the decided prefix is *required*, not a duplicate.
    pub fn note_restart(&mut self, process: ProcessId) {
        let cut = self.logs[process.index()].len();
        self.restarts[process.index()].push(cut);
    }

    /// The incarnation segments of `process`'s log, oldest first; a
    /// never-restarted process has exactly one segment.
    fn segments(&self, process: usize) -> Vec<&[(MsgId, VTime)]> {
        let log = &self.logs[process];
        let mut out = Vec::with_capacity(self.restarts[process].len() + 1);
        let mut start = 0;
        for &cut in &self.restarts[process] {
            out.push(&log[start..cut]);
            start = cut;
        }
        out.push(&log[start..]);
        out
    }

    /// The delivery order of `process`'s **final** incarnation — what
    /// agreement checks compare (earlier incarnations are audited
    /// separately, like crashed processes' logs).
    fn final_order(&self, process: usize) -> Vec<MsgId> {
        self.segments(process)
            .last()
            .expect("at least one segment")
            .iter()
            .map(|(m, _)| *m)
            .collect()
    }

    /// Group size.
    pub fn n(&self) -> usize {
        self.logs.len()
    }

    /// Records an `adeliver` of `id` at `process`.
    pub fn record(&mut self, process: ProcessId, id: MsgId, at: VTime) {
        self.logs[process.index()].push((id, at));
    }

    /// Notes an accepted `abcast`; once any submission is noted, the
    /// integrity check also rejects deliveries of unknown ids.
    pub fn note_submission(&mut self, id: MsgId) {
        self.track_submissions = true;
        self.submitted.insert(id);
    }

    /// The delivery order (ids only) observed at `process`.
    pub fn order(&self, process: ProcessId) -> Vec<MsgId> {
        self.logs[process.index()].iter().map(|(m, _)| *m).collect()
    }

    /// Per-process logs with delivery timestamps.
    pub fn logs(&self) -> &[Vec<(MsgId, VTime)>] {
        &self.logs
    }

    /// Checks the safety half of the contract: total order and agreement
    /// among `correct` processes, prefix-consistency of everyone else,
    /// and integrity everywhere.
    ///
    /// # Panics
    ///
    /// Panics when `correct` is empty — the contract is about what the
    /// correct processes observe, so checking without any is a test bug.
    pub fn check(&self, correct: &[ProcessId]) -> OracleReport {
        self.run_checks(correct, None, false)
    }

    /// Safety checks plus validity: every id in `must_deliver` has to
    /// appear in the common order. Only meaningful when the scenario's
    /// faults heal and the run drained long enough for liveness.
    ///
    /// # Panics
    ///
    /// Panics when `correct` is empty.
    pub fn check_with_validity(
        &self,
        correct: &[ProcessId],
        must_deliver: &[MsgId],
    ) -> OracleReport {
        self.run_checks(correct, Some(must_deliver), false)
    }

    /// The strict check for fully drained runs: on top of
    /// [`check_with_validity`](Self::check_with_validity), every correct
    /// process must have delivered the *identical sequence* — a correct
    /// log that stops short of the common order (a stalled process that
    /// a mid-run snapshot would tolerate as "lagging") is flagged as a
    /// [`Violation::Disagreement`]. Use this when the run drained long
    /// past the last fault; use [`check`](Self::check) for snapshots
    /// taken while deliveries are still in flight.
    ///
    /// # Panics
    ///
    /// Panics when `correct` is empty.
    pub fn check_drained(&self, correct: &[ProcessId], must_deliver: &[MsgId]) -> OracleReport {
        self.run_checks(correct, Some(must_deliver), true)
    }

    fn run_checks(
        &self,
        correct: &[ProcessId],
        must_deliver: Option<&[MsgId]>,
        drained: bool,
    ) -> OracleReport {
        assert!(
            !correct.is_empty(),
            "oracle needs at least one correct process"
        );
        let mut violations = Vec::new();

        // Total order + uniform agreement: correct processes may lag one
        // another only at the tail (deliveries are not synchronized
        // barriers), so the common order is the longest correct log, and
        // every correct log must be a prefix of it. In `drained` mode
        // the prefix tolerance is revoked: all correct logs must be the
        // identical sequence. Restarted processes are judged by their
        // **final** incarnation's log — it replays from instance 0, so
        // it is comparable from index 0; earlier incarnations are
        // audited separately below.
        let reference = *correct
            .iter()
            .max_by_key(|p| self.final_order(p.index()).len())
            .expect("nonempty");
        let common_order = self.final_order(reference.index());
        for &p in correct {
            let order = self.final_order(p.index());
            if let Some(i) = first_divergence(&order, &common_order) {
                violations.push(Violation::Disagreement {
                    reference,
                    process: p,
                    index: i,
                    expected: common_order.get(i).copied(),
                    got: order.get(i).copied(),
                });
            } else if drained && order.len() < common_order.len() {
                // A drained run tolerates no lag: a short-but-consistent
                // correct log means a correct process stopped delivering.
                violations.push(Violation::Disagreement {
                    reference,
                    process: p,
                    index: order.len(),
                    expected: common_order.get(order.len()).copied(),
                    got: None,
                });
            }
        }

        // Consistency of the non-correct (crashed) processes. In a
        // drained run their logs must be prefixes of the common order;
        // in a mid-run snapshot a crashed log may also consistently
        // *extend* it (the victim delivered just before crashing, the
        // correct processes have not caught up yet) — symmetric with
        // the lag tolerance granted to correct logs above.
        let correct_set: HashSet<ProcessId> = correct.iter().copied().collect();
        for p in 0..self.logs.len() {
            let pid = ProcessId(p as u16);
            if correct_set.contains(&pid) {
                continue;
            }
            let order = self.final_order(p);
            if let Some(index) = overlap_mismatch(&order, &common_order, drained) {
                violations.push(Violation::NonPrefixLog {
                    process: pid,
                    index,
                });
            }
        }

        // Recovery-aware checks on every non-final incarnation (of any
        // process): (a) uniform agreement — deliveries made before a
        // crash must be consistent with the common order, exactly like
        // a crashed process's log; (b) byte-identical replay — the next
        // incarnation must re-deliver the same sequence, so the two
        // logs must agree on their overlap.
        for p in 0..self.logs.len() {
            let pid = ProcessId(p as u16);
            let segments = self.segments(p);
            for s in 0..segments.len() - 1 {
                let order: Vec<MsgId> = segments[s].iter().map(|(m, _)| *m).collect();
                if let Some(index) = overlap_mismatch(&order, &common_order, drained) {
                    violations.push(Violation::NonPrefixLog {
                        process: pid,
                        index,
                    });
                }
                let next: Vec<MsgId> = segments[s + 1].iter().map(|(m, _)| *m).collect();
                // The completeness half of the replay requirement only
                // binds the *final* incarnation of a *correct* process:
                // an intermediate incarnation may itself be truncated
                // by the next crash, and a permanently crashed process
                // owes no full replay. (Earlier segments are still
                // covered transitively: drained equality pins the
                // final segment to the common order, and every earlier
                // segment is overlap-checked against that order above.)
                let require_full = drained && s + 2 == segments.len() && correct_set.contains(&pid);
                if let Some(index) = order
                    .iter()
                    .zip(next.iter())
                    .position(|(a, b)| a != b)
                    .or_else(|| (require_full && next.len() < order.len()).then_some(next.len()))
                {
                    violations.push(Violation::ReplayDivergence {
                        process: pid,
                        segment: s,
                        index,
                    });
                }
            }
        }

        // Integrity: no duplicates within any incarnation; known ids
        // only (if tracked). Re-deliveries across incarnations are the
        // *required* recovery replay, not duplicates.
        for p in 0..self.logs.len() {
            let pid = ProcessId(p as u16);
            for segment in self.segments(p) {
                let mut seen = HashSet::new();
                for (id, _) in segment {
                    if !seen.insert(*id) {
                        violations.push(Violation::DuplicateDelivery {
                            process: pid,
                            id: *id,
                        });
                    }
                    if self.track_submissions && !self.submitted.contains(id) {
                        violations.push(Violation::UnknownDelivery {
                            process: pid,
                            id: *id,
                        });
                    }
                }
            }
        }

        // Validity.
        if let Some(must) = must_deliver {
            let delivered: HashSet<MsgId> = common_order.iter().copied().collect();
            for id in must {
                if !delivered.contains(id) {
                    violations.push(Violation::MissingDelivery { id: *id });
                }
            }
        }

        OracleReport {
            violations,
            deliveries: self.logs.iter().map(|l| l.len() as u64).sum(),
            common_order,
        }
    }
}

impl Harness for DeliveryOracle {
    fn on_delivery(&mut self, _api: &mut ClusterApi<'_>, pid: ProcessId, d: Delivery, at: VTime) {
        self.record(pid, d.msg, at);
    }

    fn on_restart(&mut self, _api: &mut ClusterApi<'_>, pid: ProcessId, _at: VTime) {
        self.note_restart(pid);
    }
}

/// First index at which `order` contradicts `reference` on their
/// overlap; in `drained` mode an `order` that extends beyond the
/// reference is also flagged (at the reference's length). The
/// consistency rule applied to crashed processes' logs and to pre-crash
/// incarnations of restarted processes.
fn overlap_mismatch(order: &[MsgId], reference: &[MsgId], drained: bool) -> Option<usize> {
    match order.iter().zip(reference.iter()).position(|(a, b)| a != b) {
        Some(i) => Some(i),
        None if drained && order.len() > reference.len() => Some(reference.len()),
        None => None,
    }
}

/// Index of the first position where `log` stops being a prefix of
/// `reference` (`None` when it is a prefix).
fn first_divergence(log: &[MsgId], reference: &[MsgId]) -> Option<usize> {
    if log.len() > reference.len() {
        // Longer than the reference: diverges where the reference ends
        // at the latest.
        return Some(
            log.iter()
                .zip(reference.iter())
                .position(|(a, b)| a != b)
                .unwrap_or(reference.len()),
        );
    }
    log.iter().zip(reference.iter()).position(|(a, b)| a != b)
}

/// Checks pre-collected per-process delivery orders (e.g. from a
/// [`fortika_net::CollectingHarness`]) of a **fully drained** run in
/// one call: strict identical-sequence agreement among `correct`
/// (see [`DeliveryOracle::check_drained`]), prefix consistency and
/// integrity everywhere, validity over `must_deliver`.
///
/// # Panics
///
/// Panics when `correct` is empty.
pub fn check_orders(
    orders: &[Vec<MsgId>],
    correct: &[ProcessId],
    must_deliver: &[MsgId],
) -> OracleReport {
    let mut oracle = DeliveryOracle::new(orders.len());
    for (p, order) in orders.iter().enumerate() {
        for &id in order {
            oracle.record(ProcessId(p as u16), id, VTime::ZERO);
        }
    }
    oracle.check_drained(correct, must_deliver)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(sender: u16, seq: u64) -> MsgId {
        MsgId::new(ProcessId(sender), seq)
    }

    #[test]
    fn clean_logs_pass() {
        let orders = vec![
            vec![id(0, 0), id(1, 0), id(0, 1)],
            vec![id(0, 0), id(1, 0), id(0, 1)],
            vec![id(0, 0), id(1, 0)], // crashed mid-run: prefix is fine
        ];
        let report = check_orders(
            &orders,
            &[ProcessId(0), ProcessId(1)],
            &[id(0, 0), id(1, 0), id(0, 1)],
        );
        report.assert_ok("clean");
        assert_eq!(report.deliveries, 8);
        assert_eq!(report.common_order.len(), 3);
    }

    #[test]
    fn disagreement_detected() {
        let orders = vec![vec![id(0, 0), id(1, 0)], vec![id(1, 0), id(0, 0)]];
        let report = check_orders(&orders, &[ProcessId(0), ProcessId(1)], &[]);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::Disagreement { index: 0, .. }]
        ));
    }

    #[test]
    fn lagging_correct_process_tolerated_mid_run_but_not_drained() {
        // A shorter-but-consistent correct log is a legal mid-run
        // snapshot (deliveries are not synchronized barriers) — but in
        // a drained run it means a correct process stopped delivering.
        let mut oracle = DeliveryOracle::new(2);
        oracle.record(ProcessId(0), id(0, 0), VTime::ZERO);
        oracle.record(ProcessId(0), id(1, 0), VTime::ZERO);
        oracle.record(ProcessId(1), id(0, 0), VTime::ZERO);
        let snapshot = oracle.check(&[ProcessId(0), ProcessId(1)]);
        snapshot.assert_ok("mid-run snapshot");
        assert_eq!(snapshot.common_order.len(), 2);
        let drained = oracle.check_drained(&[ProcessId(0), ProcessId(1)], &[]);
        assert!(matches!(
            drained.violations.as_slice(),
            [Violation::Disagreement {
                process: ProcessId(1),
                index: 1,
                got: None,
                ..
            }]
        ));
    }

    #[test]
    fn duplicate_detected() {
        let orders = vec![vec![id(0, 0), id(0, 0)], vec![id(0, 0)]];
        let report = check_orders(&orders, &[ProcessId(1)], &[]);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DuplicateDelivery { .. })));
    }

    #[test]
    fn unknown_delivery_detected_when_tracking() {
        let mut oracle = DeliveryOracle::new(1);
        oracle.note_submission(id(0, 0));
        oracle.record(ProcessId(0), id(0, 0), VTime::ZERO);
        oracle.record(ProcessId(0), id(5, 5), VTime::ZERO);
        let report = oracle.check(&[ProcessId(0)]);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::UnknownDelivery { .. }]
        ));
    }

    #[test]
    fn non_prefix_crashed_log_detected() {
        let orders = vec![
            vec![id(0, 0), id(1, 0)],
            vec![id(0, 0), id(1, 0)],
            vec![id(1, 0)], // crashed process delivered out of order
        ];
        let report = check_orders(&orders, &[ProcessId(0), ProcessId(1)], &[]);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::NonPrefixLog {
                process: ProcessId(2),
                index: 0
            }]
        ));
    }

    #[test]
    fn recovery_replay_is_not_a_duplicate() {
        // p1 delivers two messages, restarts, re-delivers the prefix
        // byte-identically and catches up past it: a clean recovery.
        let mut oracle = DeliveryOracle::new(2);
        for m in [id(0, 0), id(1, 0), id(0, 1)] {
            oracle.record(ProcessId(0), m, VTime::ZERO);
        }
        oracle.record(ProcessId(1), id(0, 0), VTime::ZERO);
        oracle.record(ProcessId(1), id(1, 0), VTime::ZERO);
        oracle.note_restart(ProcessId(1));
        for m in [id(0, 0), id(1, 0), id(0, 1)] {
            oracle.record(ProcessId(1), m, VTime::ZERO);
        }
        let report = oracle.check_drained(&[ProcessId(0), ProcessId(1)], &[]);
        report.assert_ok("clean crash-recovery replay");
        assert_eq!(report.common_order.len(), 3);
    }

    #[test]
    fn replay_divergence_detected() {
        // The restarted incarnation re-delivers in a different order.
        let mut oracle = DeliveryOracle::new(2);
        for m in [id(0, 0), id(1, 0)] {
            oracle.record(ProcessId(0), m, VTime::ZERO);
            oracle.record(ProcessId(1), m, VTime::ZERO);
        }
        oracle.note_restart(ProcessId(1));
        oracle.record(ProcessId(1), id(1, 0), VTime::ZERO);
        oracle.record(ProcessId(1), id(0, 0), VTime::ZERO);
        let report = oracle.check(&[ProcessId(0)]);
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::ReplayDivergence {
                    process: ProcessId(1),
                    segment: 0,
                    index: 0,
                }
            )),
            "got {:?}",
            report.violations
        );
    }

    #[test]
    fn pre_crash_segment_must_agree_with_common_order() {
        // The pre-crash incarnation delivered something the cluster
        // never ordered there: uniform agreement violated even though
        // the final incarnation looks clean.
        let mut oracle = DeliveryOracle::new(2);
        for m in [id(0, 0), id(1, 0)] {
            oracle.record(ProcessId(0), m, VTime::ZERO);
        }
        oracle.record(ProcessId(1), id(1, 7), VTime::ZERO); // rogue pre-crash delivery
        oracle.note_restart(ProcessId(1));
        oracle.record(ProcessId(1), id(0, 0), VTime::ZERO);
        let report = oracle.check(&[ProcessId(0), ProcessId(1)]);
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::NonPrefixLog {
                    process: ProcessId(1),
                    index: 0,
                }
            )),
            "got {:?}",
            report.violations
        );
    }

    #[test]
    fn incomplete_replay_flagged_only_when_drained() {
        // Restarted p2 re-delivered only part of its pre-crash log.
        let mut oracle = DeliveryOracle::new(2);
        for m in [id(0, 0), id(1, 0)] {
            oracle.record(ProcessId(0), m, VTime::ZERO);
            oracle.record(ProcessId(1), m, VTime::ZERO);
        }
        oracle.note_restart(ProcessId(1));
        oracle.record(ProcessId(1), id(0, 0), VTime::ZERO);
        // Mid-run: catch-up still in flight, fine.
        oracle.check(&[ProcessId(0)]).assert_ok("mid-run");
        // Drained: the replay (and the lagging final log) are failures.
        let drained = oracle.check_drained(&[ProcessId(0), ProcessId(1)], &[]);
        assert!(drained
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ReplayDivergence { index: 1, .. })));
    }

    #[test]
    fn replay_truncated_by_second_crash_is_not_flagged() {
        // p2 restarts, its replay is cut short by a *second* crash,
        // then a final incarnation replays everything: drained must
        // pass — only the final incarnation owes a complete replay.
        let mut oracle = DeliveryOracle::new(2);
        for m in [id(0, 0), id(1, 0)] {
            oracle.record(ProcessId(0), m, VTime::ZERO);
            oracle.record(ProcessId(1), m, VTime::ZERO);
        }
        oracle.note_restart(ProcessId(1));
        oracle.record(ProcessId(1), id(0, 0), VTime::ZERO); // truncated replay
        oracle.note_restart(ProcessId(1));
        for m in [id(0, 0), id(1, 0)] {
            oracle.record(ProcessId(1), m, VTime::ZERO);
        }
        let report = oracle.check_drained(&[ProcessId(0), ProcessId(1)], &[]);
        report.assert_ok("double crash-recovery");
    }

    #[test]
    fn missing_delivery_detected() {
        let orders = vec![vec![id(0, 0)], vec![id(0, 0)]];
        let report = check_orders(
            &orders,
            &[ProcessId(0), ProcessId(1)],
            &[id(0, 0), id(1, 7)],
        );
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::MissingDelivery { id }] if *id == MsgId::new(ProcessId(1), 7)
        ));
    }

    #[test]
    #[should_panic(expected = "atomic broadcast contract violated")]
    fn assert_ok_panics_with_context() {
        let orders = vec![vec![id(0, 0)], vec![id(1, 1)]];
        check_orders(&orders, &[ProcessId(0), ProcessId(1)], &[]).assert_ok("test");
    }

    #[test]
    fn violations_display_readably() {
        let v = Violation::MissingDelivery { id: id(1, 7) };
        assert!(v.to_string().contains("p2#7"));
        let d = Violation::DuplicateDelivery {
            process: ProcessId(0),
            id: id(0, 3),
        };
        assert!(d.to_string().contains("twice"));
    }
}
