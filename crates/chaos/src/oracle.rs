//! The delivery-invariant oracle.
//!
//! Atomic broadcast promises four properties (paper §2.2). The oracle
//! records every `adeliver` across the cluster and, at end of run,
//! checks them mechanically:
//!
//! * **Uniform total order + uniform agreement** — every pair of correct
//!   processes delivered the *same sequence*; a crashed (or still
//!   lagging) process delivered a *prefix* of it.
//! * **Uniform integrity** — no process delivered the same message
//!   twice, and (when submissions are tracked) nothing was delivered
//!   that was never abcast.
//! * **Validity** — every message the caller marks as *must-deliver*
//!   (abcast by a process that remained correct, under faults that heal)
//!   appears in the common order.
//!
//! Safety checks apply to **every** run, including runs with message
//! loss; validity is a liveness property and only holds when the
//! scenario's faults heal and the drain is long enough, so it is checked
//! only on request ([`DeliveryOracle::check_with_validity`]).
//!
//! The oracle is deliberately stack-agnostic: it sees only `adeliver`
//! events, so the same checker audits the modular stack, the monolithic
//! stack, or any future implementation.

use std::collections::{BTreeMap, HashSet};
use std::fmt;

use fortika_net::{ClusterApi, ConfigStamp, Delivery, Harness, MsgId, ProcessId, SnapshotStamp};
use fortika_sim::VTime;

/// One detected violation of the atomic broadcast contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two correct processes disagree on the delivery sequence.
    Disagreement {
        /// Reference process (first correct process).
        reference: ProcessId,
        /// The diverging process.
        process: ProcessId,
        /// First index at which the sequences differ.
        index: usize,
        /// What `reference` delivered there (`None` = nothing).
        expected: Option<MsgId>,
        /// What `process` delivered there.
        got: Option<MsgId>,
    },
    /// A process delivered the same message twice.
    DuplicateDelivery {
        /// The offending process.
        process: ProcessId,
        /// The doubly delivered message.
        id: MsgId,
    },
    /// A process delivered a message that was never submitted.
    UnknownDelivery {
        /// The offending process.
        process: ProcessId,
        /// The fabricated message id.
        id: MsgId,
    },
    /// A crashed/lagging process's log is not a prefix of the common
    /// order.
    NonPrefixLog {
        /// The offending process.
        process: ProcessId,
        /// First index at which its log leaves the common order.
        index: usize,
    },
    /// A restarted process's re-delivery diverges from what its earlier
    /// incarnation delivered: recovery must replay the decided prefix
    /// byte-identically, so incarnation `segment + 1`'s log must agree
    /// position by position with incarnation `segment`'s.
    ReplayDivergence {
        /// The offending process.
        process: ProcessId,
        /// Zero-based incarnation whose log the next one contradicts.
        segment: usize,
        /// First index at which the two incarnations disagree.
        index: usize,
    },
    /// A must-deliver message never appeared in the common order.
    MissingDelivery {
        /// The lost message.
        id: MsgId,
    },
    /// Two processes' snapshots of the same decided prefix disagree: a
    /// snapshot is a pure function of the decided batch sequence, so
    /// every snapshot covering instances `0..=last_included` must carry
    /// the identical digest and delivered count.
    SnapshotDivergence {
        /// The process whose snapshot contradicts the first one seen.
        process: ProcessId,
        /// The compacted prefix both snapshots claim to cover.
        last_included: u64,
    },
    /// A process's configuration history contradicts the group's: the
    /// active configuration is a pure function of the decided prefix
    /// (every reconfiguration is ordered through the log), so every
    /// process must derive the identical `(decided_at, activation,
    /// members)` for each version. Also raised in drained checks when a
    /// correct process never activated a version its peers activated —
    /// a node voting with stale-config quorum math reports exactly this
    /// silence.
    ConfigDivergence {
        /// The process whose history contradicts (or misses) the
        /// version.
        process: ProcessId,
        /// The configuration version concerned.
        version: u64,
    },
}

impl Violation {
    /// The offending process, when the violation implicates one
    /// ([`MissingDelivery`](Violation::MissingDelivery) implicates the
    /// whole group). Trace dumps anchor their bounded window here.
    pub fn process(&self) -> Option<ProcessId> {
        match *self {
            Violation::Disagreement { process, .. }
            | Violation::DuplicateDelivery { process, .. }
            | Violation::UnknownDelivery { process, .. }
            | Violation::NonPrefixLog { process, .. }
            | Violation::ReplayDivergence { process, .. }
            | Violation::SnapshotDivergence { process, .. }
            | Violation::ConfigDivergence { process, .. } => Some(process),
            Violation::MissingDelivery { .. } => None,
        }
    }

    /// The violation's variant name, as a stable string — the identity
    /// the counterexample minimizer ([`crate::minimize`]) preserves
    /// while shrinking: a candidate scenario only counts as a
    /// reproducer when it trips a violation of the same kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Disagreement { .. } => "Disagreement",
            Violation::DuplicateDelivery { .. } => "DuplicateDelivery",
            Violation::UnknownDelivery { .. } => "UnknownDelivery",
            Violation::NonPrefixLog { .. } => "NonPrefixLog",
            Violation::ReplayDivergence { .. } => "ReplayDivergence",
            Violation::MissingDelivery { .. } => "MissingDelivery",
            Violation::SnapshotDivergence { .. } => "SnapshotDivergence",
            Violation::ConfigDivergence { .. } => "ConfigDivergence",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Disagreement {
                reference,
                process,
                index,
                expected,
                got,
            } => write!(
                f,
                "total order violated: {process} diverges from {reference} at index {index} \
                 (expected {expected:?}, got {got:?})"
            ),
            Violation::DuplicateDelivery { process, id } => {
                write!(f, "integrity violated: {process} delivered {id} twice")
            }
            Violation::UnknownDelivery { process, id } => {
                write!(f, "integrity violated: {process} delivered unsubmitted {id}")
            }
            Violation::NonPrefixLog { process, index } => write!(
                f,
                "uniform agreement violated: {process}'s log leaves the common order at index {index}"
            ),
            Violation::ReplayDivergence {
                process,
                segment,
                index,
            } => write!(
                f,
                "recovery replay violated: {process}'s incarnation {} contradicts incarnation \
                 {segment} at index {index}",
                segment + 1
            ),
            Violation::MissingDelivery { id } => {
                write!(f, "validity violated: {id} was abcast by a correct process but never delivered")
            }
            Violation::SnapshotDivergence {
                process,
                last_included,
            } => write!(
                f,
                "snapshot agreement violated: {process}'s snapshot of instances 0..={last_included} \
                 contradicts another process's snapshot of the same prefix"
            ),
            Violation::ConfigDivergence { process, version } => write!(
                f,
                "config agreement violated: {process}'s configuration history contradicts or \
                 misses version {version} activated by the group"
            ),
        }
    }
}

/// Result of an oracle check.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Detected violations, in check order (empty = contract holds).
    pub violations: Vec<Violation>,
    /// Total `adeliver` events observed across all processes.
    pub deliveries: u64,
    /// The common delivery order of the correct processes (the longest
    /// log among them when they disagree).
    pub common_order: Vec<MsgId>,
}

impl OracleReport {
    /// True when no violation was detected.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with a readable list of violations, if any.
    ///
    /// # Panics
    ///
    /// Panics when the report contains violations.
    pub fn assert_ok(&self, context: &str) {
        if !self.is_ok() {
            let mut msg = format!(
                "atomic broadcast contract violated ({context}): {} violation(s)\n",
                self.violations.len()
            );
            for v in &self.violations {
                msg.push_str("  - ");
                msg.push_str(&v.to_string());
                msg.push('\n');
            }
            panic!("{msg}");
        }
    }
}

/// Records every `adeliver` and checks the atomic broadcast contract.
///
/// Use it directly as a cluster [`Harness`] for logic-only runs, wire it
/// behind a driving harness (as the experiment runner does), or feed it
/// pre-collected logs via [`DeliveryOracle::record`].
///
/// # Example
///
/// ```
/// use fortika_chaos::DeliveryOracle;
/// use fortika_net::{MsgId, ProcessId};
/// use fortika_sim::VTime;
///
/// let mut oracle = DeliveryOracle::new(2);
/// let m = MsgId::new(ProcessId(0), 0);
/// oracle.note_submission(m);
/// oracle.record(ProcessId(0), m, VTime::ZERO);
/// oracle.record(ProcessId(1), m, VTime::ZERO);
/// let report = oracle.check_with_validity(
///     &[ProcessId(0), ProcessId(1)],
///     &[m],
/// );
/// report.assert_ok("doc example");
/// ```
#[derive(Debug, Clone)]
pub struct DeliveryOracle {
    logs: Vec<Vec<(MsgId, VTime)>>,
    submitted: HashSet<MsgId>,
    track_submissions: bool,
    /// Per process: indices into its log where a new incarnation begins
    /// (crash-recovery restarts). Empty for never-restarted processes.
    restarts: Vec<Vec<usize>>,
    /// Per process: snapshot installs as `(segment, index-in-segment,
    /// position-in-common-order)` — from the install point on, the
    /// process's deliveries continue at that position (the compacted
    /// prefix needs no replay).
    installs: Vec<Vec<(usize, usize, u64)>>,
    /// Every snapshot stamp seen, as `(process, last_included,
    /// delivered_count, digest)` — snapshots of the same prefix must
    /// agree bit for bit.
    stamps: Vec<(ProcessId, u64, u64, u64)>,
    /// Per process: every configuration activation it reported
    /// (re-reports after a restart replay are expected and must match).
    configs: Vec<Vec<ConfigStamp>>,
    /// Version floor for the drained completeness check: every correct
    /// process must have activated at least this many reconfigurations.
    expected_configs: Option<u64>,
}

impl DeliveryOracle {
    /// An oracle for a cluster of `n` processes.
    pub fn new(n: usize) -> Self {
        DeliveryOracle {
            logs: vec![Vec::new(); n],
            submitted: HashSet::new(),
            track_submissions: false,
            restarts: vec![Vec::new(); n],
            installs: vec![Vec::new(); n],
            stamps: Vec::new(),
            configs: vec![Vec::new(); n],
            expected_configs: None,
        }
    }

    /// Notes that `process` activated configuration `stamp` (fed
    /// automatically through `Harness::on_config`). A restarted process
    /// re-reports the versions it re-derives while replaying — that is
    /// expected, and every report of a version must carry the identical
    /// stamp.
    pub fn note_config(&mut self, process: ProcessId, stamp: ConfigStamp) {
        self.configs[process.index()].push(stamp);
    }

    /// Requires (in [`check_drained`](Self::check_drained)) that every
    /// correct process activated at least `count` configuration
    /// versions. Harnesses that submit reconfigurations feed the count
    /// here: without the floor, a run where *no* process processed the
    /// reconfiguration would vacuously pass the agreement check.
    pub fn expect_configs(&mut self, count: u64) {
        self.expected_configs = Some(count);
    }

    /// Notes that `process` was revived (crash-recovery): subsequent
    /// deliveries belong to a new incarnation. The recovery-aware
    /// checks treat each incarnation's log separately — re-delivering
    /// the decided prefix is *required*, not a duplicate.
    pub fn note_restart(&mut self, process: ProcessId) {
        let cut = self.logs[process.index()].len();
        self.restarts[process.index()].push(cut);
    }

    /// Notes a snapshot stamp from `process` (fed automatically through
    /// `Harness::on_snapshot`). Every stamp joins the cross-process
    /// digest-agreement audit; an **install** stamp additionally marks
    /// that the process's deliveries resume at position
    /// `delivered_count` of the common order — the compacted prefix is
    /// covered by the snapshot and owes no replay.
    pub fn note_snapshot(&mut self, process: ProcessId, stamp: &SnapshotStamp) {
        let p = process.index();
        self.stamps.push((
            process,
            stamp.last_included,
            stamp.delivered_count,
            stamp.digest,
        ));
        if stamp.installed {
            let segment = self.restarts[p].len();
            let seg_start = self.restarts[p].last().copied().unwrap_or(0);
            let idx = self.logs[p].len() - seg_start;
            self.installs[p].push((segment, idx, stamp.delivered_count));
        }
    }

    /// The incarnation segments of `process`'s log, oldest first; a
    /// never-restarted process has exactly one segment.
    fn segments(&self, process: usize) -> Vec<&[(MsgId, VTime)]> {
        let log = &self.logs[process];
        let mut out = Vec::with_capacity(self.restarts[process].len() + 1);
        let mut start = 0;
        for &cut in &self.restarts[process] {
            out.push(&log[start..cut]);
            start = cut;
        }
        out.push(&log[start..]);
        out
    }

    /// The snapshot-install jumps inside one incarnation segment, as
    /// `(index-in-segment, resume position)`.
    fn segment_jumps(&self, process: usize, segment: usize) -> Vec<(usize, u64)> {
        self.installs[process]
            .iter()
            .filter(|(s, _, _)| *s == segment)
            .map(|(_, i, off)| (*i, *off))
            .collect()
    }

    /// `process`'s final incarnation segment annotated with common-order
    /// positions, its end position, and whether it is *full* (replays
    /// from position 0, i.e. contains no snapshot install).
    fn final_positions(&self, process: usize) -> (Vec<(u64, MsgId)>, u64, bool) {
        let segments = self.segments(process);
        let seg_idx = segments.len() - 1;
        let jumps = self.segment_jumps(process, seg_idx);
        let (positioned, end) = positioned(segments[seg_idx], &jumps);
        (positioned, end, jumps.is_empty())
    }

    /// Group size.
    pub fn n(&self) -> usize {
        self.logs.len()
    }

    /// Records an `adeliver` of `id` at `process`.
    pub fn record(&mut self, process: ProcessId, id: MsgId, at: VTime) {
        self.logs[process.index()].push((id, at));
    }

    /// Notes an accepted `abcast`; once any submission is noted, the
    /// integrity check also rejects deliveries of unknown ids.
    pub fn note_submission(&mut self, id: MsgId) {
        self.track_submissions = true;
        self.submitted.insert(id);
    }

    /// The delivery order (ids only) observed at `process`.
    pub fn order(&self, process: ProcessId) -> Vec<MsgId> {
        self.logs[process.index()].iter().map(|(m, _)| *m).collect()
    }

    /// Per-process logs with delivery timestamps.
    pub fn logs(&self) -> &[Vec<(MsgId, VTime)>] {
        &self.logs
    }

    /// Checks the safety half of the contract: total order and agreement
    /// among `correct` processes, prefix-consistency of everyone else,
    /// and integrity everywhere.
    ///
    /// # Panics
    ///
    /// Panics when `correct` is empty — the contract is about what the
    /// correct processes observe, so checking without any is a test bug.
    pub fn check(&self, correct: &[ProcessId]) -> OracleReport {
        self.run_checks(correct, None, false)
    }

    /// Safety checks plus validity: every id in `must_deliver` has to
    /// appear in the common order. Only meaningful when the scenario's
    /// faults heal and the run drained long enough for liveness.
    ///
    /// # Panics
    ///
    /// Panics when `correct` is empty.
    pub fn check_with_validity(
        &self,
        correct: &[ProcessId],
        must_deliver: &[MsgId],
    ) -> OracleReport {
        self.run_checks(correct, Some(must_deliver), false)
    }

    /// The strict check for fully drained runs: on top of
    /// [`check_with_validity`](Self::check_with_validity), every correct
    /// process must have delivered the *identical sequence* — a correct
    /// log that stops short of the common order (a stalled process that
    /// a mid-run snapshot would tolerate as "lagging") is flagged as a
    /// [`Violation::Disagreement`]. Use this when the run drained long
    /// past the last fault; use [`check`](Self::check) for snapshots
    /// taken while deliveries are still in flight.
    ///
    /// # Panics
    ///
    /// Panics when `correct` is empty.
    pub fn check_drained(&self, correct: &[ProcessId], must_deliver: &[MsgId]) -> OracleReport {
        self.run_checks(correct, Some(must_deliver), true)
    }

    fn run_checks(
        &self,
        correct: &[ProcessId],
        must_deliver: Option<&[MsgId]>,
        drained: bool,
    ) -> OracleReport {
        assert!(
            !correct.is_empty(),
            "oracle needs at least one correct process"
        );
        let mut violations = Vec::new();

        // Configuration agreement comes first: the active configuration
        // is derived from the decided prefix, so a config divergence is
        // the most upstream explanation of everything downstream (a
        // node running stale quorum math can corrupt the order itself).
        // Every report of a version — across processes *and* across one
        // process's restart replays — must carry the identical stamp;
        // the reference for a version is its first report in process
        // order.
        let mut by_version: BTreeMap<u64, ConfigStamp> = BTreeMap::new();
        for p in 0..self.configs.len() {
            for stamp in &self.configs[p] {
                match by_version.get(&stamp.version) {
                    None => {
                        by_version.insert(stamp.version, stamp.clone());
                    }
                    Some(reference) if reference == stamp => {}
                    Some(_) => {
                        violations.push(Violation::ConfigDivergence {
                            process: ProcessId(p as u16),
                            version: stamp.version,
                        });
                    }
                }
            }
        }
        // Completeness only binds drained runs (mid-run a process may
        // legitimately lag behind an activation): every correct process
        // must have caught up to the highest version any correct
        // process activated, and to the harness-declared floor — a node
        // whose planted fence-skip bug ignores decided reconfigurations
        // is exactly the process that stays silent here.
        if drained {
            let correct_max = correct
                .iter()
                .flat_map(|p| self.configs[p.index()].iter().map(|s| s.version))
                .max()
                .unwrap_or(0)
                .max(self.expected_configs.unwrap_or(0));
            for &p in correct {
                let got = self.configs[p.index()]
                    .iter()
                    .map(|s| s.version)
                    .max()
                    .unwrap_or(0);
                if got < correct_max {
                    violations.push(Violation::ConfigDivergence {
                        process: p,
                        version: correct_max,
                    });
                }
            }
        }

        // Total order + uniform agreement: correct processes may lag one
        // another only at the tail (deliveries are not synchronized
        // barriers), so the common order is the reference's final log,
        // and every correct log must agree with it position by position.
        // In `drained` mode the lag tolerance is revoked: all correct
        // logs must reach the same end. Restarted processes are judged
        // by their **final** incarnation's log; a snapshot-install jump
        // inside it means the compacted prefix is covered by the
        // snapshot, so its deliveries are compared from the install
        // position onward (earlier incarnations are audited below).
        //
        // The reference is the correct process reaching the furthest
        // position; ties prefer a *full* log (no install), so the
        // common order normally has no holes.
        let reference = *correct
            .iter()
            .max_by_key(|p| {
                let (_, end, full) = self.final_positions(p.index());
                (end, full)
            })
            .expect("nonempty");
        let (ref_positions, ref_end, _) = self.final_positions(reference.index());
        // The common order as known positions; `None` marks positions
        // inside a prefix the reference itself skipped via snapshot.
        let mut common: Vec<Option<MsgId>> = vec![None; ref_end as usize];
        for (pos, id) in &ref_positions {
            common[*pos as usize] = Some(*id);
        }
        // Fill reference holes from the other correct processes' logs
        // (first filler wins, in `correct` order): a prefix the
        // reference compacted away is still cross-checked whenever any
        // correct process delivered it — later processes that contradict
        // the filler are flagged below exactly like reference
        // disagreements.
        for &p in correct {
            if p == reference {
                continue;
            }
            for (pos, id) in self.final_positions(p.index()).0 {
                if let Some(slot @ None) = common.get_mut(pos as usize) {
                    *slot = Some(id);
                }
            }
        }

        for &p in correct {
            let (positions, end, _) = self.final_positions(p.index());
            let mut flagged = false;
            for (pos, id) in &positions {
                let i = *pos as usize;
                match common.get(i) {
                    Some(Some(c)) if c == id => {}
                    Some(None) => {} // hole in the reference: unknown
                    Some(Some(c)) => {
                        violations.push(Violation::Disagreement {
                            reference,
                            process: p,
                            index: i,
                            expected: Some(*c),
                            got: Some(*id),
                        });
                        flagged = true;
                        break;
                    }
                    None => {
                        // Delivered past the furthest reference position
                        // (cannot normally happen — the reference
                        // maximizes the end position).
                        violations.push(Violation::Disagreement {
                            reference,
                            process: p,
                            index: i,
                            expected: None,
                            got: Some(*id),
                        });
                        flagged = true;
                        break;
                    }
                }
            }
            if !flagged && drained && end < ref_end {
                // A drained run tolerates no lag: a short-but-consistent
                // correct log means a correct process stopped delivering.
                violations.push(Violation::Disagreement {
                    reference,
                    process: p,
                    index: end as usize,
                    expected: common.get(end as usize).copied().flatten(),
                    got: None,
                });
            }
        }

        // Position-aligned consistency with the common order, applied to
        // crashed processes' logs and pre-crash incarnations. In a
        // drained run a log must not extend past the common order; in a
        // mid-run snapshot it may (the victim delivered just before
        // crashing, the correct processes have not caught up yet) —
        // symmetric with the lag tolerance granted to correct logs.
        let check_overlap = |positions: &[(u64, MsgId)]| -> Option<usize> {
            for (pos, id) in positions {
                let i = *pos as usize;
                match common.get(i) {
                    Some(Some(c)) if c != id => return Some(i),
                    Some(_) => {}
                    None if drained => return Some(common.len()),
                    None => return None,
                }
            }
            None
        };

        let correct_set: HashSet<ProcessId> = correct.iter().copied().collect();
        for p in 0..self.logs.len() {
            let pid = ProcessId(p as u16);
            if correct_set.contains(&pid) {
                continue;
            }
            let (positions, _, _) = self.final_positions(p);
            if let Some(index) = check_overlap(&positions) {
                violations.push(Violation::NonPrefixLog {
                    process: pid,
                    index,
                });
            }
        }

        // Recovery-aware checks on every non-final incarnation (of any
        // process): (a) uniform agreement — deliveries made before a
        // crash must be consistent with the common order, exactly like
        // a crashed process's log; (b) replay — the next incarnation
        // must re-deliver the same sequence *where their positions
        // overlap*. A snapshot install in the next incarnation skips
        // the compacted prefix, so byte-identical replay is owed only
        // from the install position onward — exactly what the aligned
        // comparison checks.
        for p in 0..self.logs.len() {
            let pid = ProcessId(p as u16);
            let segments = self.segments(p);
            for s in 0..segments.len() - 1 {
                let (a, a_end) = positioned(segments[s], &self.segment_jumps(p, s));
                if let Some(index) = check_overlap(&a) {
                    violations.push(Violation::NonPrefixLog {
                        process: pid,
                        index,
                    });
                }
                let (b, b_end) = positioned(segments[s + 1], &self.segment_jumps(p, s + 1));
                let b_map: BTreeMap<u64, MsgId> = b.iter().copied().collect();
                let mut reported = false;
                for (pos, id) in &a {
                    if let Some(other) = b_map.get(pos) {
                        if other != id {
                            violations.push(Violation::ReplayDivergence {
                                process: pid,
                                segment: s,
                                index: *pos as usize,
                            });
                            reported = true;
                            break;
                        }
                    }
                }
                // The completeness half of the replay requirement only
                // binds the *final* incarnation of a *correct* process:
                // an intermediate incarnation may itself be truncated
                // by the next crash, and a permanently crashed process
                // owes no full replay. (Earlier segments are still
                // covered transitively: drained equality pins the
                // final segment to the common order, and every earlier
                // segment is overlap-checked against that order above.)
                let require_full = drained && s + 2 == segments.len() && correct_set.contains(&pid);
                if !reported && require_full && b_end < a_end {
                    violations.push(Violation::ReplayDivergence {
                        process: pid,
                        segment: s,
                        index: b_end as usize,
                    });
                }
            }
        }

        // Snapshot agreement: a snapshot is a pure function of the
        // decided prefix it covers, so every stamp (made or installed)
        // for the same `last_included` must agree on digest and count.
        let mut by_prefix: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        let mut snapshot_flagged: HashSet<(ProcessId, u64)> = HashSet::new();
        for &(p, last_included, count, digest) in &self.stamps {
            match by_prefix.get(&last_included) {
                None => {
                    by_prefix.insert(last_included, (count, digest));
                }
                Some(&(c, d)) if c == count && d == digest => {}
                Some(_) => {
                    if snapshot_flagged.insert((p, last_included)) {
                        violations.push(Violation::SnapshotDivergence {
                            process: p,
                            last_included,
                        });
                    }
                }
            }
        }

        // Integrity: no duplicates within any incarnation; known ids
        // only (if tracked). Re-deliveries across incarnations are the
        // *required* recovery replay, not duplicates.
        for p in 0..self.logs.len() {
            let pid = ProcessId(p as u16);
            for segment in self.segments(p) {
                let mut seen = HashSet::new();
                for (id, _) in segment {
                    if !seen.insert(*id) {
                        violations.push(Violation::DuplicateDelivery {
                            process: pid,
                            id: *id,
                        });
                    }
                    if self.track_submissions && !self.submitted.contains(id) {
                        violations.push(Violation::UnknownDelivery {
                            process: pid,
                            id: *id,
                        });
                    }
                }
            }
        }

        // Validity (checked against the known part of the common order;
        // positions compacted away by every correct process's snapshot
        // are unknown, but install stamps only cover prefixes that were
        // delivered somewhere).
        let common_order: Vec<MsgId> = common.iter().flatten().copied().collect();
        if let Some(must) = must_deliver {
            let delivered: HashSet<MsgId> = common_order.iter().copied().collect();
            for id in must {
                if !delivered.contains(id) {
                    violations.push(Violation::MissingDelivery { id: *id });
                }
            }
        }

        OracleReport {
            violations,
            deliveries: self.logs.iter().map(|l| l.len() as u64).sum(),
            common_order,
        }
    }
}

impl Harness for DeliveryOracle {
    fn on_delivery(&mut self, _api: &mut ClusterApi<'_>, pid: ProcessId, d: Delivery, at: VTime) {
        self.record(pid, d.msg, at);
    }

    fn on_restart(&mut self, _api: &mut ClusterApi<'_>, pid: ProcessId, _at: VTime) {
        self.note_restart(pid);
    }

    fn on_snapshot(
        &mut self,
        _api: &mut ClusterApi<'_>,
        pid: ProcessId,
        stamp: SnapshotStamp,
        _at: VTime,
    ) {
        self.note_snapshot(pid, &stamp);
    }

    fn on_config(
        &mut self,
        _api: &mut ClusterApi<'_>,
        pid: ProcessId,
        stamp: ConfigStamp,
        _at: VTime,
    ) {
        self.note_config(pid, stamp);
    }
}

/// Annotates one incarnation segment's deliveries with their positions
/// in the common order, honouring snapshot installs (`jumps`) that skip
/// a compacted prefix: at jump index `i`, delivery `i` and everything
/// after continue from the jump's position. Returns the positioned
/// entries and the end position (one past the last delivery, or the
/// last install's position when it trails the deliveries).
fn positioned(segment: &[(MsgId, VTime)], jumps: &[(usize, u64)]) -> (Vec<(u64, MsgId)>, u64) {
    let mut out = Vec::with_capacity(segment.len());
    let mut pos: u64 = 0;
    for (i, (id, _)) in segment.iter().enumerate() {
        for &(at, off) in jumps {
            if at == i {
                pos = pos.max(off);
            }
        }
        out.push((pos, *id));
        pos += 1;
    }
    // An install after the last delivery still moves the end position.
    for &(at, off) in jumps {
        if at == segment.len() {
            pos = pos.max(off);
        }
    }
    (out, pos)
}

/// Checks pre-collected per-process delivery orders (e.g. from a
/// [`fortika_net::CollectingHarness`]) of a **fully drained** run in
/// one call: strict identical-sequence agreement among `correct`
/// (see [`DeliveryOracle::check_drained`]), prefix consistency and
/// integrity everywhere, validity over `must_deliver`.
///
/// # Panics
///
/// Panics when `correct` is empty.
pub fn check_orders(
    orders: &[Vec<MsgId>],
    correct: &[ProcessId],
    must_deliver: &[MsgId],
) -> OracleReport {
    let mut oracle = DeliveryOracle::new(orders.len());
    for (p, order) in orders.iter().enumerate() {
        for &id in order {
            oracle.record(ProcessId(p as u16), id, VTime::ZERO);
        }
    }
    oracle.check_drained(correct, must_deliver)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(sender: u16, seq: u64) -> MsgId {
        MsgId::new(ProcessId(sender), seq)
    }

    #[test]
    fn clean_logs_pass() {
        let orders = vec![
            vec![id(0, 0), id(1, 0), id(0, 1)],
            vec![id(0, 0), id(1, 0), id(0, 1)],
            vec![id(0, 0), id(1, 0)], // crashed mid-run: prefix is fine
        ];
        let report = check_orders(
            &orders,
            &[ProcessId(0), ProcessId(1)],
            &[id(0, 0), id(1, 0), id(0, 1)],
        );
        report.assert_ok("clean");
        assert_eq!(report.deliveries, 8);
        assert_eq!(report.common_order.len(), 3);
    }

    #[test]
    fn disagreement_detected() {
        let orders = vec![vec![id(0, 0), id(1, 0)], vec![id(1, 0), id(0, 0)]];
        let report = check_orders(&orders, &[ProcessId(0), ProcessId(1)], &[]);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::Disagreement { index: 0, .. }]
        ));
    }

    #[test]
    fn lagging_correct_process_tolerated_mid_run_but_not_drained() {
        // A shorter-but-consistent correct log is a legal mid-run
        // snapshot (deliveries are not synchronized barriers) — but in
        // a drained run it means a correct process stopped delivering.
        let mut oracle = DeliveryOracle::new(2);
        oracle.record(ProcessId(0), id(0, 0), VTime::ZERO);
        oracle.record(ProcessId(0), id(1, 0), VTime::ZERO);
        oracle.record(ProcessId(1), id(0, 0), VTime::ZERO);
        let snapshot = oracle.check(&[ProcessId(0), ProcessId(1)]);
        snapshot.assert_ok("mid-run snapshot");
        assert_eq!(snapshot.common_order.len(), 2);
        let drained = oracle.check_drained(&[ProcessId(0), ProcessId(1)], &[]);
        assert!(matches!(
            drained.violations.as_slice(),
            [Violation::Disagreement {
                process: ProcessId(1),
                index: 1,
                got: None,
                ..
            }]
        ));
    }

    #[test]
    fn duplicate_detected() {
        let orders = vec![vec![id(0, 0), id(0, 0)], vec![id(0, 0)]];
        let report = check_orders(&orders, &[ProcessId(1)], &[]);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DuplicateDelivery { .. })));
    }

    #[test]
    fn unknown_delivery_detected_when_tracking() {
        let mut oracle = DeliveryOracle::new(1);
        oracle.note_submission(id(0, 0));
        oracle.record(ProcessId(0), id(0, 0), VTime::ZERO);
        oracle.record(ProcessId(0), id(5, 5), VTime::ZERO);
        let report = oracle.check(&[ProcessId(0)]);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::UnknownDelivery { .. }]
        ));
    }

    #[test]
    fn non_prefix_crashed_log_detected() {
        let orders = vec![
            vec![id(0, 0), id(1, 0)],
            vec![id(0, 0), id(1, 0)],
            vec![id(1, 0)], // crashed process delivered out of order
        ];
        let report = check_orders(&orders, &[ProcessId(0), ProcessId(1)], &[]);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::NonPrefixLog {
                process: ProcessId(2),
                index: 0
            }]
        ));
    }

    #[test]
    fn recovery_replay_is_not_a_duplicate() {
        // p1 delivers two messages, restarts, re-delivers the prefix
        // byte-identically and catches up past it: a clean recovery.
        let mut oracle = DeliveryOracle::new(2);
        for m in [id(0, 0), id(1, 0), id(0, 1)] {
            oracle.record(ProcessId(0), m, VTime::ZERO);
        }
        oracle.record(ProcessId(1), id(0, 0), VTime::ZERO);
        oracle.record(ProcessId(1), id(1, 0), VTime::ZERO);
        oracle.note_restart(ProcessId(1));
        for m in [id(0, 0), id(1, 0), id(0, 1)] {
            oracle.record(ProcessId(1), m, VTime::ZERO);
        }
        let report = oracle.check_drained(&[ProcessId(0), ProcessId(1)], &[]);
        report.assert_ok("clean crash-recovery replay");
        assert_eq!(report.common_order.len(), 3);
    }

    #[test]
    fn replay_divergence_detected() {
        // The restarted incarnation re-delivers in a different order.
        let mut oracle = DeliveryOracle::new(2);
        for m in [id(0, 0), id(1, 0)] {
            oracle.record(ProcessId(0), m, VTime::ZERO);
            oracle.record(ProcessId(1), m, VTime::ZERO);
        }
        oracle.note_restart(ProcessId(1));
        oracle.record(ProcessId(1), id(1, 0), VTime::ZERO);
        oracle.record(ProcessId(1), id(0, 0), VTime::ZERO);
        let report = oracle.check(&[ProcessId(0)]);
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::ReplayDivergence {
                    process: ProcessId(1),
                    segment: 0,
                    index: 0,
                }
            )),
            "got {:?}",
            report.violations
        );
    }

    #[test]
    fn pre_crash_segment_must_agree_with_common_order() {
        // The pre-crash incarnation delivered something the cluster
        // never ordered there: uniform agreement violated even though
        // the final incarnation looks clean.
        let mut oracle = DeliveryOracle::new(2);
        for m in [id(0, 0), id(1, 0)] {
            oracle.record(ProcessId(0), m, VTime::ZERO);
        }
        oracle.record(ProcessId(1), id(1, 7), VTime::ZERO); // rogue pre-crash delivery
        oracle.note_restart(ProcessId(1));
        oracle.record(ProcessId(1), id(0, 0), VTime::ZERO);
        let report = oracle.check(&[ProcessId(0), ProcessId(1)]);
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::NonPrefixLog {
                    process: ProcessId(1),
                    index: 0,
                }
            )),
            "got {:?}",
            report.violations
        );
    }

    #[test]
    fn incomplete_replay_flagged_only_when_drained() {
        // Restarted p2 re-delivered only part of its pre-crash log.
        let mut oracle = DeliveryOracle::new(2);
        for m in [id(0, 0), id(1, 0)] {
            oracle.record(ProcessId(0), m, VTime::ZERO);
            oracle.record(ProcessId(1), m, VTime::ZERO);
        }
        oracle.note_restart(ProcessId(1));
        oracle.record(ProcessId(1), id(0, 0), VTime::ZERO);
        // Mid-run: catch-up still in flight, fine.
        oracle.check(&[ProcessId(0)]).assert_ok("mid-run");
        // Drained: the replay (and the lagging final log) are failures.
        let drained = oracle.check_drained(&[ProcessId(0), ProcessId(1)], &[]);
        assert!(drained
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ReplayDivergence { index: 1, .. })));
    }

    #[test]
    fn replay_truncated_by_second_crash_is_not_flagged() {
        // p2 restarts, its replay is cut short by a *second* crash,
        // then a final incarnation replays everything: drained must
        // pass — only the final incarnation owes a complete replay.
        let mut oracle = DeliveryOracle::new(2);
        for m in [id(0, 0), id(1, 0)] {
            oracle.record(ProcessId(0), m, VTime::ZERO);
            oracle.record(ProcessId(1), m, VTime::ZERO);
        }
        oracle.note_restart(ProcessId(1));
        oracle.record(ProcessId(1), id(0, 0), VTime::ZERO); // truncated replay
        oracle.note_restart(ProcessId(1));
        for m in [id(0, 0), id(1, 0)] {
            oracle.record(ProcessId(1), m, VTime::ZERO);
        }
        let report = oracle.check_drained(&[ProcessId(0), ProcessId(1)], &[]);
        report.assert_ok("double crash-recovery");
    }

    fn stamp(
        last_included: u64,
        delivered_count: u64,
        digest: u64,
        installed: bool,
    ) -> SnapshotStamp {
        SnapshotStamp {
            last_included,
            delivered_count,
            digest,
            installed,
            app_state: bytes::Bytes::new(),
        }
    }

    #[test]
    fn snapshot_install_skips_replay_but_pins_the_tail() {
        // p1 crashes after delivering [a, b]; its revival installs a
        // snapshot covering the first three deliveries and then delivers
        // only the tail [d]. The compacted prefix owes no replay — but
        // the tail must still match the common order position by
        // position.
        let order = [id(0, 0), id(1, 0), id(0, 1), id(1, 1)];
        let mut oracle = DeliveryOracle::new(2);
        for m in order {
            oracle.record(ProcessId(0), m, VTime::ZERO);
        }
        oracle.record(ProcessId(1), order[0], VTime::ZERO);
        oracle.record(ProcessId(1), order[1], VTime::ZERO);
        oracle.note_restart(ProcessId(1));
        oracle.note_snapshot(ProcessId(1), &stamp(9, 3, 0xD1, true));
        oracle.record(ProcessId(1), order[3], VTime::ZERO);
        let report = oracle.check_drained(&[ProcessId(0), ProcessId(1)], &[]);
        report.assert_ok("snapshot-installed rejoin");
        assert_eq!(report.common_order.len(), 4);
    }

    #[test]
    fn snapshot_install_tail_divergence_detected() {
        // Same shape, but the post-install tail contradicts the common
        // order at its position.
        let order = [id(0, 0), id(1, 0), id(0, 1), id(1, 1)];
        let mut oracle = DeliveryOracle::new(2);
        for m in order {
            oracle.record(ProcessId(0), m, VTime::ZERO);
        }
        oracle.note_restart(ProcessId(1));
        oracle.note_snapshot(ProcessId(1), &stamp(9, 3, 0xD1, true));
        oracle.record(ProcessId(1), id(9, 9), VTime::ZERO); // rogue tail
        let report = oracle.check(&[ProcessId(0), ProcessId(1)]);
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::Disagreement {
                    process: ProcessId(1),
                    index: 3,
                    ..
                }
            )),
            "got {:?}",
            report.violations
        );
    }

    #[test]
    fn snapshot_installed_process_must_still_reach_the_frontier_when_drained() {
        let order = [id(0, 0), id(1, 0), id(0, 1), id(1, 1)];
        let mut oracle = DeliveryOracle::new(2);
        for m in order {
            oracle.record(ProcessId(0), m, VTime::ZERO);
        }
        oracle.note_restart(ProcessId(1));
        oracle.note_snapshot(ProcessId(1), &stamp(9, 3, 0xD1, true));
        // Mid-run: catching up, fine.
        oracle
            .check(&[ProcessId(0), ProcessId(1)])
            .assert_ok("mid-run");
        // Drained: the tail [d] never arrived at p1.
        let drained = oracle.check_drained(&[ProcessId(0), ProcessId(1)], &[]);
        assert!(
            drained.violations.iter().any(|v| matches!(
                v,
                Violation::Disagreement {
                    process: ProcessId(1),
                    index: 3,
                    got: None,
                    ..
                }
            )),
            "got {:?}",
            drained.violations
        );
    }

    #[test]
    fn compacted_prefix_still_cross_checked_behind_installed_reference() {
        // The furthest-ahead correct process installed a snapshot, so
        // its log starts at position 2 — the common order has holes in
        // the prefix. Two *full* correct processes disagree exactly
        // there: the oracle must still flag it (the holes are filled
        // from the full logs, not skipped).
        let a = id(0, 0);
        let b = id(1, 0);
        let c = id(0, 1);
        let d = id(1, 1);
        let mut oracle = DeliveryOracle::new(3);
        oracle.record(ProcessId(0), a, VTime::ZERO);
        oracle.record(ProcessId(0), b, VTime::ZERO);
        // p2 delivered the prefix in the opposite order: a real
        // total-order violation.
        oracle.record(ProcessId(1), b, VTime::ZERO);
        oracle.record(ProcessId(1), a, VTime::ZERO);
        // p3 rejoined via snapshot (covering the contested prefix) and
        // is furthest ahead — it becomes the reference.
        oracle.note_restart(ProcessId(2));
        oracle.note_snapshot(ProcessId(2), &stamp(9, 2, 0xD1, true));
        oracle.record(ProcessId(2), c, VTime::ZERO);
        oracle.record(ProcessId(2), d, VTime::ZERO);
        let report = oracle.check(&[ProcessId(0), ProcessId(1), ProcessId(2)]);
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::Disagreement {
                    process: ProcessId(1),
                    index: 0,
                    ..
                }
            )),
            "got {:?}",
            report.violations
        );
    }

    #[test]
    fn snapshot_digest_divergence_detected() {
        let mut oracle = DeliveryOracle::new(3);
        oracle.record(ProcessId(0), id(0, 0), VTime::ZERO);
        oracle.record(ProcessId(1), id(0, 0), VTime::ZERO);
        oracle.note_snapshot(ProcessId(0), &stamp(7, 10, 0xAAAA, false));
        oracle.note_snapshot(ProcessId(1), &stamp(7, 10, 0xAAAA, false));
        oracle
            .check(&[ProcessId(0), ProcessId(1)])
            .assert_ok("agreeing snapshots");
        // A third process folds a different digest for the same prefix.
        oracle.note_snapshot(ProcessId(2), &stamp(7, 10, 0xBBBB, false));
        let report = oracle.check(&[ProcessId(0), ProcessId(1)]);
        assert!(
            matches!(
                report.violations.as_slice(),
                [Violation::SnapshotDivergence {
                    process: ProcessId(2),
                    last_included: 7,
                }]
            ),
            "got {:?}",
            report.violations
        );
    }

    #[test]
    fn missing_delivery_detected() {
        let orders = vec![vec![id(0, 0)], vec![id(0, 0)]];
        let report = check_orders(
            &orders,
            &[ProcessId(0), ProcessId(1)],
            &[id(0, 0), id(1, 7)],
        );
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::MissingDelivery { id }] if *id == MsgId::new(ProcessId(1), 7)
        ));
    }

    #[test]
    #[should_panic(expected = "atomic broadcast contract violated")]
    fn assert_ok_panics_with_context() {
        let orders = vec![vec![id(0, 0)], vec![id(1, 1)]];
        check_orders(&orders, &[ProcessId(0), ProcessId(1)], &[]).assert_ok("test");
    }

    #[test]
    fn violations_display_readably() {
        let v = Violation::MissingDelivery { id: id(1, 7) };
        assert!(v.to_string().contains("p2#7"));
        let d = Violation::DuplicateDelivery {
            process: ProcessId(0),
            id: id(0, 3),
        };
        assert!(d.to_string().contains("twice"));
    }
}
