//! Scenario coverage: which protocol branches did a fuzz campaign
//! actually reach?
//!
//! A fuzz campaign that never triggers a round change, never pulls a
//! decision gap and never offers a snapshot is only *vacuously* green —
//! the recovery machinery it claims to audit never ran. The
//! [`CoverageReport`] makes that visible: it folds the protocol
//! counters every run already maintains (both stacks bump them under
//! the same logical names) into a per-branch tally, so a suite can
//! print — and assert on — what its campaign exercised.
//!
//! This is deliberately cheap instrumentation: no new hooks, no
//! tracing — just an aggregation over [`fortika_net::Counters`], which
//! the cluster hands out for free after every run.

use std::collections::BTreeMap;
use std::fmt;

use fortika_net::Counters;

use crate::scenario::{Scenario, FAMILIES};

/// One protocol branch the report tracks: a logical name plus the
/// counter keys (one per stack, usually) that witness it.
struct Branch {
    name: &'static str,
    /// Counter keys summed into this branch (modular + monolithic
    /// spellings of the same protocol event).
    keys: &'static [&'static str],
}

/// The protocol branches a chaos campaign can reach, with the counters
/// that witness each. Extend this table as new recovery paths grow
/// counters.
const BRANCHES: &[Branch] = &[
    Branch {
        name: "round_changes",
        keys: &["consensus.round_changes", "mono.round_changes"],
    },
    Branch {
        name: "progress_rotations",
        keys: &["consensus.progress_rotations", "mono.progress_rotations"],
    },
    Branch {
        name: "gap_pulls",
        keys: &["consensus.gap_requests", "mono.gap_requests"],
    },
    Branch {
        name: "tag_misses",
        keys: &["consensus.tag_misses", "mono.tag_misses"],
    },
    Branch {
        name: "state_transfers",
        keys: &["consensus.state_transfers", "mono.state_transfers"],
    },
    Branch {
        name: "snapshot_offers",
        keys: &["consensus.snapshot_transfers", "mono.snapshot_transfers"],
    },
    Branch {
        name: "snapshot_installs",
        keys: &["consensus.snapshots_installed", "mono.snapshots_installed"],
    },
    Branch {
        name: "join_requests",
        keys: &["consensus.join_requests", "mono.join_requests"],
    },
    Branch {
        name: "rejoins_completed",
        keys: &["consensus.rejoins_completed", "mono.rejoins_completed"],
    },
    Branch {
        name: "idle_proposals",
        keys: &["abcast.idle_proposals"],
    },
    Branch {
        name: "pipelined_proposals",
        keys: &["abcast.pipelined_proposals", "mono.pipelined_proposals"],
    },
    Branch {
        name: "sender_retransmits",
        keys: &["abcast.retransmits"],
    },
    Branch {
        name: "estimate_solicitations",
        keys: &["mono.estimate_requests"],
    },
    Branch {
        name: "stale_incarnation_drops",
        keys: &["chaos.dropped_stale_incarnation"],
    },
    Branch {
        name: "reconfigs_activated",
        keys: &["consensus.reconfigs", "mono.reconfigs"],
    },
    Branch {
        name: "config_fence_drops",
        keys: &["consensus.config_fence_drops", "mono.config_fence_drops"],
    },
    Branch {
        name: "fd_member_updates",
        keys: &["fd.member_updates"],
    },
    Branch {
        name: "ring_payload_forwards",
        keys: &["abcast.ring_payload_forwards"],
    },
    Branch {
        name: "payload_pulls",
        keys: &["abcast.payload_pulls"],
    },
    Branch {
        name: "ring_repairs",
        keys: &["abcast.ring_repairs"],
    },
];

/// Aggregated protocol-branch coverage of a fuzz campaign.
///
/// Feed it each run's final counters with [`absorb`](Self::absorb)
/// (e.g. `report.absorb(cluster.counters())`), then print it or query
/// individual branches. `Display` renders a table of every tracked
/// branch with its total event count and how many runs reached it.
///
/// # Example
///
/// ```
/// use fortika_chaos::CoverageReport;
/// use fortika_net::Counters;
///
/// let mut report = CoverageReport::new();
/// let mut counters = Counters::new();
/// counters.bump("mono.round_changes", 3);
/// report.absorb(&counters);
/// assert_eq!(report.runs(), 1);
/// assert_eq!(report.total("round_changes"), 3);
/// assert!(report.reached("round_changes"));
/// assert!(!report.reached("gap_pulls"));
/// assert!(report.missed().contains(&"gap_pulls"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CoverageReport {
    runs: u64,
    /// branch name -> (total events, runs in which the branch fired).
    tallies: BTreeMap<&'static str, (u64, u64)>,
    /// family name -> runs absorbed whose scenario contained the family.
    family_runs: BTreeMap<&'static str, u64>,
    /// Co-occurrence matrix: family name -> branch name -> number of
    /// runs that contained the family *and* reached the branch. Only
    /// populated by [`absorb_with_scenario`](Self::absorb_with_scenario).
    matrix: BTreeMap<&'static str, BTreeMap<&'static str, u64>>,
}

impl CoverageReport {
    /// An empty report (zero runs).
    pub fn new() -> Self {
        CoverageReport::default()
    }

    /// Folds one run's final counters into the branch tallies and
    /// reports, per branch, whether the run reached it.
    fn fold_counters(&mut self, counters: &Counters) -> Vec<(&'static str, bool)> {
        self.runs += 1;
        let mut reached = Vec::with_capacity(BRANCHES.len());
        for branch in BRANCHES {
            let hits: u64 = branch.keys.iter().map(|k| counters.event(k)).sum();
            let entry = self.tallies.entry(branch.name).or_insert((0, 0));
            entry.0 += hits;
            entry.1 += u64::from(hits > 0);
            reached.push((branch.name, hits > 0));
        }
        reached
    }

    /// Folds one run's final counters into the report.
    pub fn absorb(&mut self, counters: &Counters) {
        let _ = self.fold_counters(counters);
    }

    /// Folds one run's final counters *and its scenario* into the
    /// report: besides the per-branch tallies of
    /// [`absorb`](Self::absorb), every (event family × reached branch)
    /// pair of the run is credited in the co-occurrence matrix
    /// ([`cell`](Self::cell)). This is the event-level coverage the
    /// steered generator ([`crate::ChaosProfile::steered`]) feeds on.
    ///
    /// # Example
    ///
    /// ```
    /// use fortika_chaos::{CoverageReport, Scenario};
    /// use fortika_net::{Counters, ProcessId};
    /// use fortika_sim::VDur;
    ///
    /// let mut report = CoverageReport::new();
    /// let mut counters = Counters::new();
    /// counters.bump("mono.round_changes", 2);
    /// let scenario = Scenario::new().crash(ProcessId(0), VDur::millis(5));
    /// report.absorb_with_scenario(&counters, &scenario);
    /// assert_eq!(report.cell("crash", "round_changes"), 1);
    /// assert_eq!(report.cell("crash", "gap_pulls"), 0);
    /// assert_eq!(report.family_runs("crash"), 1);
    /// ```
    pub fn absorb_with_scenario(&mut self, counters: &Counters, scenario: &Scenario) {
        let reached = self.fold_counters(counters);
        for family in scenario.families() {
            *self.family_runs.entry(family).or_insert(0) += 1;
            let row = self.matrix.entry(family).or_default();
            for (branch, hit) in &reached {
                if *hit {
                    *row.entry(branch).or_insert(0) += 1;
                }
            }
        }
    }

    /// Number of runs absorbed.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Total events of `branch` across all absorbed runs (zero for
    /// unknown branches).
    pub fn total(&self, branch: &str) -> u64 {
        self.tallies.get(branch).map_or(0, |(t, _)| *t)
    }

    /// True when at least one absorbed run reached `branch`.
    pub fn reached(&self, branch: &str) -> bool {
        self.total(branch) > 0
    }

    /// The tracked branches no absorbed run ever reached — the holes in
    /// the campaign (a non-empty result is not a failure by itself:
    /// e.g. a restart-free campaign never completes a rejoin).
    pub fn missed(&self) -> Vec<&'static str> {
        BRANCHES
            .iter()
            .map(|b| b.name)
            .filter(|name| !self.reached(name))
            .collect()
    }

    /// All tracked branch names, in table order.
    pub fn branch_names() -> Vec<&'static str> {
        BRANCHES.iter().map(|b| b.name).collect()
    }

    /// All event-family names of the co-occurrence matrix, in canonical
    /// order: the nine `ScenarioEvent` families plus the `pipelined`
    /// configuration axis.
    pub fn family_names() -> Vec<&'static str> {
        FAMILIES.to_vec()
    }

    /// Runs absorbed via [`absorb_with_scenario`](Self::absorb_with_scenario)
    /// whose scenario contained `family` (zero for unknown families).
    pub fn family_runs(&self, family: &str) -> u64 {
        self.family_runs.get(family).copied().unwrap_or(0)
    }

    /// One cell of the co-occurrence matrix: in how many absorbed runs
    /// did a scenario containing `family` reach `branch`?
    pub fn cell(&self, family: &str, branch: &str) -> u64 {
        self.matrix
            .get(family)
            .and_then(|row| row.get(branch))
            .copied()
            .unwrap_or(0)
    }

    /// All non-zero matrix cells as `(family, branch)` pairs, in
    /// canonical (family order × branch order) order — the campaign's
    /// event-level coverage surface. Steered-vs-unsteered comparisons
    /// set-difference these.
    pub fn reached_cells(&self) -> Vec<(&'static str, &'static str)> {
        let mut out = Vec::new();
        for family in FAMILIES {
            for branch in BRANCHES {
                if self.cell(family, branch.name) > 0 {
                    out.push((*family, branch.name));
                }
            }
        }
        out
    }

    /// The coverage deficit of `family`: the fraction of tracked
    /// branches no absorbed run containing the family has reached.
    /// 1.0 for a family never absorbed (everything about it is
    /// unknown), 0.0 once its matrix row is full. This is the steering
    /// signal of [`crate::ChaosProfile::steered`].
    pub fn family_deficit(&self, family: &str) -> f64 {
        let total = BRANCHES.len() as f64;
        let row_reached = self
            .matrix
            .get(family)
            .map_or(0, |row| row.values().filter(|c| **c > 0).count());
        1.0 - row_reached as f64 / total
    }

    /// Renders the report as a JSON object: run count, per-branch
    /// totals (`{"events": …, "runs_reached": …}` in table order), the
    /// family × branch co-occurrence matrix (every family in canonical
    /// order, with its run count and non-zero cells) and the list of
    /// missed branches. Deterministic — same report, same bytes — so CI
    /// can archive and diff it across campaigns.
    pub fn to_json(&self) -> String {
        use fmt::Write;
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"runs\": {},", self.runs);
        out.push_str("  \"branches\": {\n");
        for (i, branch) in BRANCHES.iter().enumerate() {
            let (total, in_runs) = self.tallies.get(branch.name).copied().unwrap_or((0, 0));
            let comma = if i + 1 < BRANCHES.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    \"{}\": {{\"events\": {total}, \"runs_reached\": {in_runs}}}{comma}",
                branch.name
            );
        }
        out.push_str("  },\n  \"families\": {\n");
        for (i, family) in FAMILIES.iter().enumerate() {
            let _ = write!(
                out,
                "    \"{family}\": {{\"runs\": {}, \"cells\": {{",
                self.family_runs(family)
            );
            let mut first = true;
            for branch in BRANCHES {
                let cell = self.cell(family, branch.name);
                if cell > 0 {
                    if !first {
                        out.push_str(", ");
                    }
                    first = false;
                    let _ = write!(out, "\"{}\": {cell}", branch.name);
                }
            }
            let comma = if i + 1 < FAMILIES.len() { "," } else { "" };
            let _ = writeln!(out, "}}}}{comma}");
        }
        out.push_str("  },\n  \"missed\": [");
        for (i, name) in self.missed().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{name}\"");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Writes [`to_json`](Self::to_json) to `path`, creating parent
    /// directories as needed. The fuzz suites and `probe --quick` call
    /// this with `target/coverage-report.json` so CI can archive which
    /// recovery branches the campaign reached.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "scenario coverage over {} runs:", self.runs)?;
        for branch in BRANCHES {
            let (total, in_runs) = self.tallies.get(branch.name).copied().unwrap_or((0, 0));
            let mark = if total > 0 { "reached" } else { "  -    " };
            writeln!(
                f,
                "  {:<24} {mark} {total:>10} events in {in_runs}/{} runs",
                branch.name, self.runs
            )?;
        }
        if !self.family_runs.is_empty() {
            writeln!(f, "event-family co-occurrence (cells reached):")?;
            let total = BRANCHES.len();
            for family in FAMILIES {
                let row_reached = self
                    .matrix
                    .get(family)
                    .map_or(0, |row| row.values().filter(|c| **c > 0).count());
                writeln!(
                    f,
                    "  {:<16} {:>3} runs, {row_reached:>2}/{total} branches",
                    family,
                    self.family_runs(family)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorbs_both_stacks_spellings() {
        let mut report = CoverageReport::new();
        let mut modular = Counters::new();
        modular.bump("consensus.gap_requests", 2);
        modular.bump("abcast.idle_proposals", 1);
        let mut mono = Counters::new();
        mono.bump("mono.gap_requests", 5);
        report.absorb(&modular);
        report.absorb(&mono);
        assert_eq!(report.runs(), 2);
        assert_eq!(report.total("gap_pulls"), 7);
        assert!(report.reached("idle_proposals"));
        assert!(!report.reached("snapshot_offers"));
    }

    #[test]
    fn missed_lists_unreached_branches() {
        let report = CoverageReport::new();
        assert_eq!(report.missed().len(), CoverageReport::branch_names().len());
        let mut report = report;
        let mut c = Counters::new();
        c.bump("chaos.dropped_stale_incarnation", 1);
        report.absorb(&c);
        assert!(!report.missed().contains(&"stale_incarnation_drops"));
        assert!(report.missed().contains(&"round_changes"));
    }

    #[test]
    fn json_is_valid_and_deterministic() {
        let mut report = CoverageReport::new();
        let mut c = Counters::new();
        c.bump("mono.round_changes", 2);
        c.bump("consensus.gap_requests", 1);
        report.absorb(&c);
        let json = report.to_json();
        assert_eq!(json, report.to_json());
        assert!(json.contains("\"runs\": 1"));
        assert!(json.contains("\"round_changes\": {\"events\": 2, \"runs_reached\": 1}"));
        assert!(json.contains("\"gap_pulls\": {\"events\": 1, \"runs_reached\": 1}"));
        assert!(json.contains("\"missed\": ["));
        assert!(json.contains("\"snapshot_offers\""));
        // Crude structural check: balanced braces, ends with newline.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn matrix_credits_only_the_scenarios_families() {
        use fortika_net::{LinkSelector, ProcessId};
        use fortika_sim::VDur;

        let mut report = CoverageReport::new();
        let crashy = Scenario::new().crash(ProcessId(0), VDur::millis(5));
        let lossy = Scenario::new().lossy(LinkSelector::All, 0.2, VDur::ZERO, VDur::millis(10));

        let mut c = Counters::new();
        c.bump("mono.round_changes", 2);
        report.absorb_with_scenario(&c, &crashy);
        let mut c2 = Counters::new();
        c2.bump("consensus.gap_requests", 1);
        c2.bump("mono.round_changes", 1);
        report.absorb_with_scenario(&c2, &lossy);
        // Plain absorb contributes to tallies but not to the matrix.
        report.absorb(&c);

        assert_eq!(report.runs(), 3);
        assert_eq!(report.family_runs("crash"), 1);
        assert_eq!(report.family_runs("lossy"), 1);
        assert_eq!(report.family_runs("pipelined"), 0);
        assert_eq!(report.cell("crash", "round_changes"), 1);
        assert_eq!(report.cell("crash", "gap_pulls"), 0);
        assert_eq!(report.cell("lossy", "gap_pulls"), 1);
        assert_eq!(report.cell("lossy", "round_changes"), 1);
        assert_eq!(
            report.reached_cells(),
            vec![
                ("crash", "round_changes"),
                ("lossy", "round_changes"),
                ("lossy", "gap_pulls"),
            ]
        );
        // Deficits: crash reached 1/14 branches, unknown families 14/14.
        let total = CoverageReport::branch_names().len() as f64;
        assert!((report.family_deficit("crash") - (1.0 - 1.0 / total)).abs() < 1e-12);
        assert!((report.family_deficit("partition") - 1.0).abs() < 1e-12);
        // Matrix cells land in the JSON, all families serialized.
        let json = report.to_json();
        assert!(json.contains("\"families\": {"));
        assert!(json.contains("\"crash\": {\"runs\": 1, \"cells\": {\"round_changes\": 1}}"));
        assert!(json.contains("\"pipelined\": {\"runs\": 0, \"cells\": {}}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn family_vocabulary_is_stable() {
        let families = CoverageReport::family_names();
        assert_eq!(families.len(), 13);
        assert_eq!(families[0], "crash");
        assert!(families.contains(&"pipelined"));
        assert!(families.contains(&"dissemination"));
        assert!(families.contains(&"add_node"));
        assert!(families.contains(&"remove_node"));
        // The deficit of an empty report is total for every family.
        let empty = CoverageReport::new();
        for family in families {
            assert_eq!(empty.family_deficit(family), 1.0);
        }
    }

    #[test]
    fn display_renders_every_branch() {
        let mut report = CoverageReport::new();
        let mut c = Counters::new();
        c.bump("mono.round_changes", 1);
        report.absorb(&c);
        let text = report.to_string();
        for name in CoverageReport::branch_names() {
            assert!(text.contains(name), "missing branch {name} in display");
        }
        assert!(text.contains("reached"));
    }
}
