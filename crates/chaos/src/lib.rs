//! # fortika-chaos — fault injection, scenarios and the delivery oracle
//!
//! The paper evaluates both atomic broadcast stacks in *good runs* only,
//! yet both carry a ◇P failure detector, rotating-coordinator consensus
//! and decision-recovery machinery whose entire purpose is surviving bad
//! runs. This crate opens that axis over the deterministic simulator:
//!
//! * [`Scenario`] — a declarative fault timeline: crashes, **restarts**
//!   (crash-recovery with volatile-state loss), partitions with
//!   healing, lossy/duplicating/delayed link windows, **resource
//!   faults** (degraded-link bandwidth windows, slow-node CPU
//!   windows), scripted false suspicions. Built with chainable
//!   constructors or drawn from the seeded [`Scenario::random`]
//!   generator ([`ChaosProfile`]; [`ChaosProfile::resource_only`] for
//!   the resource family alone) for fuzzing. Applies onto a
//!   [`fortika_net::Cluster`] (whose link-level fault hooks this crate
//!   drives) or into `Experiment::builder(..).scenario(..)` in
//!   `fortika-core`.
//! * [`DeliveryOracle`] — the delivery-invariant checker: records every
//!   `adeliver` and verifies uniform agreement, total order, integrity
//!   and (when faults heal) validity, reporting typed [`Violation`]s.
//!   Every scenario run is thereby also a correctness check on whichever
//!   stack is under test.
//! * [`ScriptedDriver`] / [`LoadPlan`] — a blocking-caller workload
//!   driver that submits a scripted plan, skips crashed senders and
//!   feeds the oracle.
//! * [`CoverageReport`] — scenario-coverage metrics: folds each run's
//!   protocol counters into a per-branch tally (round changes, gap
//!   pulls, snapshot offers, idle proposals, stale-incarnation drops…)
//!   so a fuzz campaign can print which recovery paths it actually
//!   exercised instead of passing vacuously. Feeding it scenarios too
//!   ([`CoverageReport::absorb_with_scenario`]) builds the event-level
//!   **co-occurrence matrix**: which fault families ran in runs that
//!   reached which branches.
//! * [`FuzzCampaign`] — feedback-directed fuzzing: runs generated
//!   scenarios in batches, folds the matrix, re-steers the profile
//!   toward under-covered family × branch cells between batches
//!   ([`ChaosProfile::steered`]), and stops on a coverage plateau or
//!   the first oracle violation.
//! * [`minimize`] — counterexample minimization: ddmin-shrinks a
//!   failing scenario's event list (and pipeline depth) to a locally
//!   minimal reproducer, using the deterministic simulator as the
//!   "still fails" predicate. See `docs/FUZZING.md` for the loop end
//!   to end.
//!
//! Scenarios also carry a **configuration axis**: the generator draws a
//! windowed-sequencer depth per scenario
//! ([`Scenario::pipeline_depth`], bounded by
//! [`ChaosProfile::max_pipeline_depth`]), so every fault family is
//! fuzzed against pipelined instance execution too — harnesses apply it
//! through `StackConfig::pipeline_depth` and the oracle's obligations
//! are unchanged (pipelining must never show in delivery order).
//!
//! # Dynamic membership
//!
//! [`ScenarioEvent::AddNode`] / [`ScenarioEvent::RemoveNode`] grow and
//! shrink the group **through the log**: the scenario schedules a
//! reserved tick ([`reconfig_tick`]), a [`ReconfigInjector`] submits
//! the encoded [`fortika_net::ConfigChange`] like any abcast, and the
//! stacks activate the new configuration a fixed instance offset after
//! it is decided. The oracle is config-aware
//! ([`DeliveryOracle::note_config`], fed through `Harness::on_config`):
//! every process must derive the identical versioned configuration
//! history from the decided prefix, and in drained runs every correct
//! process must have caught up to the group's latest version
//! ([`Violation::ConfigDivergence`]) — which is how a node voting with
//! stale-config quorum math gets caught. The generator's
//! `add_node_prob` / `remove_node_prob` knobs
//! ([`ChaosProfile::with_reconfig`]) draw at most one grow and one
//! shrink per scenario from a derived stream, with shrinks charged
//! against the permanent-crash budget so every generated timeline stays
//! [`Scenario::quorum_safe`] against the configuration active at each
//! crash.
//!
//! Everything is deterministic: a `(scenario, cluster seed)` pair
//! replays bit-for-bit, so any violation the fuzzer finds is a
//! permanent regression test.
//!
//! # Crash-recovery
//!
//! [`ScenarioEvent::Restart`] revives a crashed process: the cluster's
//! node factory builds it a fresh stack (all volatile state lost; only
//! the stable store with the consensus vote records and the latest
//! log-compaction snapshot survives), bumps its incarnation — stamped
//! at the wire level so stale cross-incarnation messages are fenced —
//! and the revived stack pulls the decided prefix from peers via bulk
//! state transfer, or via chunked **snapshot transfer** when the prefix
//! was compacted away everywhere. The oracle is recovery-aware: it
//! segments each process's log by incarnation
//! ([`DeliveryOracle::note_restart`], fed automatically through
//! `Harness::on_restart`), requires pre-crash deliveries to agree with
//! the common order (uniform agreement outlives the crash), requires
//! the next incarnation to re-deliver that prefix **byte-identically**
//! ([`Violation::ReplayDivergence`]), and judges the process's final
//! incarnation like any correct process's log. It is also
//! snapshot-aware ([`DeliveryOracle::note_snapshot`], fed through
//! `Harness::on_snapshot`): an installed snapshot repositions the
//! incarnation's deliveries at the snapshot's place in the common order
//! — byte-identical replay is owed only for the tail — and every
//! snapshot of the same prefix must agree on digest and count
//! ([`Violation::SnapshotDivergence`]). The generator's `restart_prob`
//! draws crash-restart cycles that do not consume the permanent-crash
//! minority budget — a crashed-then-restarted process is correct again
//! ([`Scenario::crashed`] / [`Scenario::quorum_safe`]) — while
//! `recrash_prob` draws crash-restart-**crash** victims that do. Runs
//! with restarts must register a factory:
//! `fortika_core::install_restart_factory` or
//! `Cluster::set_node_factory`.
//!
//! # Example: a minority partition with healing, then a crash
//!
//! ```
//! use fortika_chaos::Scenario;
//! use fortika_net::ProcessId;
//! use fortika_sim::VDur;
//!
//! let scenario = Scenario::new()
//!     .partition(
//!         vec![vec![ProcessId(0), ProcessId(1)], vec![ProcessId(2)]],
//!         VDur::millis(100),
//!         VDur::millis(2100),
//!     )
//!     .crash(ProcessId(1), VDur::millis(3000));
//! assert!(scenario.heals());
//! assert_eq!(scenario.correct(3), vec![ProcessId(0), ProcessId(2)]);
//! ```
//!
//! See `examples/partition_heal.rs` for an end-to-end run through a real
//! stack with the oracle auditing every delivery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod coverage;
mod driver;
mod minimize;
mod oracle;
mod scenario;
mod trace_dump;

pub use campaign::{CampaignReport, FailingRun, FuzzCampaign, FuzzConfig, RunOutcome, StopReason};
pub use coverage::CoverageReport;
pub use driver::{LoadPlan, ReconfigInjector, ScriptedDriver, Submission};
pub use minimize::{minimize, MinimizeReport};
pub use oracle::{check_orders, DeliveryOracle, OracleReport, Violation};
pub use scenario::{
    parse_reconfig_tick, reconfig_tick, ChaosProfile, Scenario, ScenarioEvent, RECONFIG_TICK_BASE,
};
pub use trace_dump::{dump_violation_trace, DUMP_WINDOW};

// Re-export the net-level fault vocabulary so scenario authors need
// only this crate.
pub use fortika_net::{LinkFault, LinkSelector};
