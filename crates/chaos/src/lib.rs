//! # fortika-chaos — fault injection, scenarios and the delivery oracle
//!
//! The paper evaluates both atomic broadcast stacks in *good runs* only,
//! yet both carry a ◇P failure detector, rotating-coordinator consensus
//! and decision-recovery machinery whose entire purpose is surviving bad
//! runs. This crate opens that axis over the deterministic simulator:
//!
//! * [`Scenario`] — a declarative fault timeline: crashes, partitions
//!   with healing, lossy/duplicating/delayed link windows, scripted
//!   false suspicions. Built with chainable constructors or drawn from
//!   the seeded [`Scenario::random`] generator ([`ChaosProfile`]) for
//!   fuzzing. Applies onto a [`fortika_net::Cluster`] (whose link-level
//!   fault hooks this crate drives) or into
//!   `Experiment::builder(..).scenario(..)` in `fortika-core`.
//! * [`DeliveryOracle`] — the delivery-invariant checker: records every
//!   `adeliver` and verifies uniform agreement, total order, integrity
//!   and (when faults heal) validity, reporting typed [`Violation`]s.
//!   Every scenario run is thereby also a correctness check on whichever
//!   stack is under test.
//! * [`ScriptedDriver`] / [`LoadPlan`] — a blocking-caller workload
//!   driver that submits a scripted plan, skips crashed senders and
//!   feeds the oracle.
//!
//! Everything is deterministic: a `(scenario, cluster seed)` pair
//! replays bit-for-bit, so any violation the fuzzer finds is a
//! permanent regression test.
//!
//! # Example: a minority partition with healing, then a crash
//!
//! ```
//! use fortika_chaos::Scenario;
//! use fortika_net::ProcessId;
//! use fortika_sim::VDur;
//!
//! let scenario = Scenario::new()
//!     .partition(
//!         vec![vec![ProcessId(0), ProcessId(1)], vec![ProcessId(2)]],
//!         VDur::millis(100),
//!         VDur::millis(2100),
//!     )
//!     .crash(ProcessId(1), VDur::millis(3000));
//! assert!(scenario.heals());
//! assert_eq!(scenario.correct(3), vec![ProcessId(0), ProcessId(2)]);
//! ```
//!
//! See `examples/partition_heal.rs` for an end-to-end run through a real
//! stack with the oracle auditing every delivery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod oracle;
mod scenario;

pub use driver::{LoadPlan, ScriptedDriver, Submission};
pub use oracle::{check_orders, DeliveryOracle, OracleReport, Violation};
pub use scenario::{ChaosProfile, Scenario, ScenarioEvent};

// Re-export the net-level fault vocabulary so scenario authors need
// only this crate.
pub use fortika_net::{LinkFault, LinkSelector};
