//! Counterexample minimization: ddmin over a failing scenario's
//! event list.
//!
//! A fuzz campaign that trips the oracle hands back a *generated*
//! scenario — typically a pile of crash/restart cycles, fault windows
//! and noise, most of which is irrelevant to the violation. Debugging
//! wants the opposite: the smallest timeline that still fails.
//! [`minimize`] shrinks one into the other with Zeller's delta
//! debugging (ddmin): repeatedly re-run the deterministic simulator on
//! candidate sub-timelines, keep any candidate that still violates,
//! and tighten the granularity until no single event can be removed.
//!
//! Determinism does the heavy lifting here: because a `(scenario,
//! seed)` pair replays bit for bit, "still fails" is a pure predicate
//! and the minimized scenario is a permanent reproducer, not a
//! statistical one.

use fortika_net::Dissemination;

use crate::scenario::{Scenario, ScenarioEvent};

/// The result of [`minimize`]: the shrunk scenario plus how much work
/// it took.
#[derive(Debug, Clone)]
pub struct MinimizeReport {
    /// The locally minimal reproducer: removing any single remaining
    /// event (or lowering the pipeline depth to 1 / resetting the
    /// dissemination strategy to `Direct`, where applicable) makes the
    /// predicate pass.
    pub scenario: Scenario,
    /// Events in the original scenario.
    pub original_events: usize,
    /// Predicate invocations spent (simulator re-runs, for a real
    /// check).
    pub tests: usize,
}

impl MinimizeReport {
    /// Events remaining in the minimized scenario.
    pub fn events(&self) -> usize {
        self.scenario.events().len()
    }
}

/// ddmin-shrinks a failing scenario to a locally minimal reproducer.
///
/// `check` must return `true` when its candidate scenario still
/// reproduces the failure (e.g. re-runs the deterministic simulator
/// under the same seed and compares [`Violation::kind`]). The input
/// scenario is expected to fail; if `check` rejects it, it is returned
/// unchanged (there is nothing to shrink toward).
///
/// The shrink works on two axes:
///
/// 1. **Event list** — classic ddmin: try dropping ever-smaller chunks
///    of the timeline, restarting coarse after every successful
///    reduction, until every single-event removal breaks reproduction.
///    The scenario's [`horizon`](Scenario::horizon) is derived from its
///    events, so dropping the latest events shrinks the horizon with
///    them.
/// 2. **Configuration axes** — a generated scenario may carry
///    `pipeline_depth > 1` or an offloaded dissemination strategy; if
///    resetting either to its seed-faithful default (depth 1, direct
///    diffusion) still reproduces, that axis was irrelevant and is
///    dropped from the reproducer.
///
/// The result is *locally* minimal (1-minimal): no single removal
/// keeps it failing. ddmin does not promise a global minimum, but in
/// practice a handful of events survive from dozens.
///
/// # Example
///
/// ```
/// use fortika_chaos::{minimize, Scenario};
/// use fortika_net::ProcessId;
/// use fortika_sim::VDur;
///
/// // A "failure" that only needs the two crashes, not the restart.
/// let noisy = Scenario::new()
///     .crash(ProcessId(0), VDur::millis(10))
///     .restart(ProcessId(0), VDur::millis(50))
///     .crash(ProcessId(1), VDur::millis(20))
///     .crash(ProcessId(2), VDur::millis(30));
/// let report = minimize(&noisy, |s| s.crashed().len() >= 2);
/// assert_eq!(report.events(), 2);
/// assert!(report.scenario.crashed().len() >= 2);
/// ```
///
/// [`Violation::kind`]: crate::Violation::kind
pub fn minimize(scenario: &Scenario, mut check: impl FnMut(&Scenario) -> bool) -> MinimizeReport {
    let original_events = scenario.events().len();
    let mut tests = 0usize;
    let mut fails = |events: &[ScenarioEvent], depth: usize, dissemination: Dissemination| {
        tests += 1;
        check(&rebuild(events, depth, dissemination))
    };

    let mut depth = scenario.pipeline_depth();
    let mut dissemination = scenario.dissemination();
    let mut events = scenario.events().to_vec();
    if !fails(&events, depth, dissemination) {
        // Not a failing scenario: nothing to shrink toward.
        return MinimizeReport {
            scenario: scenario.clone(),
            original_events,
            tests,
        };
    }

    // ddmin over the event list: partition into n chunks, try each
    // complement (timeline minus one chunk); on success restart coarse
    // (n back to 2), otherwise refine (n doubled) until chunks are
    // single events and none can go.
    let mut n = 2usize;
    while events.len() >= 2 {
        let chunk = events.len().div_ceil(n);
        let mut reduced = false;
        for i in 0..n {
            let (lo, hi) = (i * chunk, ((i + 1) * chunk).min(events.len()));
            if lo >= hi {
                continue;
            }
            let mut complement = Vec::with_capacity(events.len() - (hi - lo));
            complement.extend_from_slice(&events[..lo]);
            complement.extend_from_slice(&events[hi..]);
            if fails(&complement, depth, dissemination) {
                events = complement;
                reduced = true;
                break;
            }
        }
        if reduced {
            n = 2; // restart coarse on the shrunk timeline
        } else {
            if n >= events.len() {
                break; // 1-minimal: no single event can be removed
            }
            n = (n * 2).min(events.len());
        }
    }

    // Configuration axes: drop pipelining and the payload offload
    // from the reproducer if the violation does not need them.
    if depth > 1 && fails(&events, 1, dissemination) {
        depth = 1;
    }
    if dissemination.offloads() && fails(&events, depth, Dissemination::Direct) {
        dissemination = Dissemination::Direct;
    }

    MinimizeReport {
        scenario: rebuild(&events, depth, dissemination),
        original_events,
        tests,
    }
}

fn rebuild(events: &[ScenarioEvent], depth: usize, dissemination: Dissemination) -> Scenario {
    let mut s = Scenario::new()
        .with_pipeline_depth(depth)
        .with_dissemination(dissemination);
    for ev in events {
        s = s.event(ev.clone());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use fortika_net::{LinkSelector, ProcessId};
    use fortika_sim::VDur;

    fn noisy_scenario() -> Scenario {
        let mut s = Scenario::new()
            .with_pipeline_depth(3)
            .with_dissemination(Dissemination::Ring);
        for i in 0..10u64 {
            s = s.delay_spike(
                LinkSelector::All,
                2000,
                VDur::millis(i * 10),
                VDur::millis(i * 10 + 5),
            );
        }
        s.crash(ProcessId(0), VDur::millis(40))
            .crash(ProcessId(1), VDur::millis(60))
    }

    #[test]
    fn shrinks_to_the_relevant_core() {
        let s = noisy_scenario();
        assert_eq!(s.events().len(), 12);
        // "Fails" iff both crashes survive.
        let report = minimize(&s, |c| c.crashed().len() >= 2);
        assert_eq!(report.original_events, 12);
        assert_eq!(report.events(), 2);
        assert!(report
            .scenario
            .events()
            .iter()
            .all(|ev| matches!(ev, ScenarioEvent::Crash { .. })));
        // The irrelevant configuration axes are dropped too, and the
        // horizon shrank with the discarded tail.
        assert_eq!(report.scenario.pipeline_depth(), 1);
        assert_eq!(report.scenario.dissemination(), Dissemination::Direct);
        assert_eq!(report.scenario.horizon(), VDur::millis(60));
        assert!(report.tests > 0);
    }

    #[test]
    fn preserves_pipeline_depth_when_the_failure_needs_it() {
        let s = Scenario::new()
            .with_pipeline_depth(4)
            .crash(ProcessId(0), VDur::millis(10));
        let report = minimize(&s, |c| c.pipeline_depth() > 1 && !c.crashed().is_empty());
        assert_eq!(report.scenario.pipeline_depth(), 4);
        assert_eq!(report.events(), 1);
    }

    #[test]
    fn preserves_dissemination_when_the_failure_needs_it() {
        let s = Scenario::new()
            .with_dissemination(Dissemination::Tree)
            .crash(ProcessId(0), VDur::millis(10));
        let report = minimize(&s, |c| {
            c.dissemination() == Dissemination::Tree && !c.crashed().is_empty()
        });
        assert_eq!(report.scenario.dissemination(), Dissemination::Tree);
        assert_eq!(report.events(), 1);
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let s = noisy_scenario();
        let report = minimize(&s, |_| false);
        assert_eq!(report.events(), s.events().len());
        assert_eq!(report.tests, 1);
    }

    #[test]
    fn single_event_reproducer_is_kept() {
        let s = Scenario::new().crash(ProcessId(2), VDur::millis(5));
        let report = minimize(&s, |c| !c.crashed().is_empty());
        assert_eq!(report.events(), 1);
    }

    #[test]
    fn minimization_is_deterministic() {
        let s = noisy_scenario();
        let a = minimize(&s, |c| c.crashed().len() >= 2);
        let b = minimize(&s, |c| c.crashed().len() >= 2);
        assert_eq!(format!("{:?}", a.scenario), format!("{:?}", b.scenario));
        assert_eq!(a.tests, b.tests);
    }
}
