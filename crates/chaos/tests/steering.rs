//! Seeded determinism of the coverage-steered generator.
//!
//! Steering must never cost reproducibility: the same `(seed,
//! CoverageReport)` input has to yield byte-identical scenarios, and an
//! *empty* report has to degenerate to exactly today's unsteered
//! [`ChaosProfile`] draws — regression-locking the existing fuzz
//! streams that every pinned scenario seed in the repo depends on.

use fortika_chaos::{ChaosProfile, CoverageReport, Scenario};
use fortika_net::Counters;
use fortika_sim::VDur;

/// A synthetic mid-campaign report: some families seen, few branches
/// reached, so every family carries a non-trivial deficit.
fn partial_report() -> CoverageReport {
    let mut report = CoverageReport::new();
    for seed in 0..6u64 {
        let scenario = Scenario::random(4, seed, &ChaosProfile::default());
        let mut counters = Counters::new();
        // A fake protocol: crashes cause round changes, restarts cause
        // join requests; everything else reaches nothing.
        let families = scenario.families();
        if families.contains(&"crash") {
            counters.bump("consensus.round_changes", 2);
        }
        if families.contains(&"restart") {
            counters.bump("consensus.join_requests", 1);
        }
        report.absorb_with_scenario(&counters, &scenario);
    }
    assert!(report.runs() > 0);
    report
}

#[test]
fn same_seed_and_report_yield_byte_identical_scenarios() {
    let report = partial_report();
    let base = ChaosProfile::default();
    for seed in 0..40u64 {
        let a = Scenario::random(5, seed, &base.steered(&report));
        let b = Scenario::random(5, seed, &base.steered(&report));
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "seed {seed}: steered draw not reproducible"
        );
    }
    // The steered profile itself is a pure function of (profile,
    // report).
    assert_eq!(
        format!("{:?}", base.steered(&report)),
        format!("{:?}", base.steered(&report))
    );
}

#[test]
fn empty_report_degenerates_to_unsteered_draws() {
    let empty = CoverageReport::new();
    let base = ChaosProfile::default();
    let steered = base.steered(&empty);
    assert_eq!(format!("{steered:?}"), format!("{base:?}"));
    for n in [3usize, 5] {
        for seed in 0..60u64 {
            let plain = Scenario::random(n, seed, &base);
            let via_steer = Scenario::random(n, seed, &steered);
            assert_eq!(
                format!("{plain:?}"),
                format!("{via_steer:?}"),
                "n={n} seed {seed}: empty-report steering changed the draw"
            );
        }
    }
}

#[test]
fn steering_respects_the_profile_envelope() {
    let report = partial_report();
    // Steered probabilities only move up, never past the cap, and a
    // disabled family stays disabled.
    let base = ChaosProfile {
        loss_prob: 0.0,
        horizon: VDur::millis(700),
        ..ChaosProfile::default()
    };
    let steered = base.steered(&report);
    assert_eq!(steered.loss_prob, 0.0, "disabled family re-enabled");
    assert_eq!(
        steered.horizon, base.horizon,
        "steering touched the horizon"
    );
    assert_eq!(steered.max_pipeline_depth, base.max_pipeline_depth);
    for (s, b) in [
        (steered.crash_prob, base.crash_prob),
        (steered.restart_prob, base.restart_prob),
        (steered.recrash_prob, base.recrash_prob),
        (steered.partition_prob, base.partition_prob),
        (steered.dup_prob, base.dup_prob),
        (steered.delay_prob, base.delay_prob),
        (steered.degrade_prob, base.degrade_prob),
        (steered.slow_prob, base.slow_prob),
        (steered.false_suspicion_prob, base.false_suspicion_prob),
    ] {
        assert!(s >= b, "steering lowered a knob ({b} -> {s})");
        assert!(s <= 0.9 + 1e-12, "steering exceeded the cap ({s})");
    }
    // The partial report left real deficits, so at least one enabled
    // knob must actually have moved.
    assert!(
        steered.partition_prob > base.partition_prob,
        "a fully-deficient family was not boosted"
    );
    // And generated scenarios under the steered profile stay within
    // the model's assumptions.
    for seed in 0..30u64 {
        let s = Scenario::random(5, seed, &steered);
        assert!(s.quorum_safe(5), "seed {seed}: steered draw broke quorum");
        assert!(s.heals(), "seed {seed}: steered draw does not heal");
    }
}

#[test]
fn steered_scenarios_vary_from_unsteered_once_coverage_exists() {
    // Not a determinism requirement — a sanity check that steering has
    // any effect at all: with real deficits, some seeds must expand to
    // different scenarios than the base profile yields.
    let report = partial_report();
    let base = ChaosProfile::default();
    let steered = base.steered(&report);
    let differing = (0..40u64)
        .filter(|&seed| {
            format!("{:?}", Scenario::random(4, seed, &base))
                != format!("{:?}", Scenario::random(4, seed, &steered))
        })
        .count();
    assert!(differing > 0, "steering never changed a single draw");
}
