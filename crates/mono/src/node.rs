//! The monolithic atomic broadcast node.
//!
//! One state machine merging atomic broadcast, consensus, decision
//! dissemination, flow control and the failure detector — the paper's
//! monolithic stack (§4), with each cross-module optimization
//! individually switchable for ablation studies:
//!
//! * **O1 — combine next proposal with current decision** (§4.1): the
//!   round-0 coordinator of consecutive instances is the same process, so
//!   `decision k` piggybacks on `proposal k+1` in one message.
//! * **O2 — piggyback abcast messages on acks** (§4.2): senders hand new
//!   messages directly to the coordinator, riding `ack` messages (or the
//!   estimate after a coordinator change) instead of diffusing them to
//!   everyone.
//! * **O3 — implicit decision acknowledgements** (§4.3): decisions are
//!   sent once to each process with no relay re-broadcast; the messages
//!   of instance `k+1` acknowledge decision `k` implicitly, and a
//!   pull-based recovery path (`DecisionRequest`) plus the progress sweep
//!   covers crashes.
//!
//! In good runs with all three enabled, ordering `M` messages costs
//! `2(n−1)` messages per consensus instance — against
//! `(n−1)(M + 2 + ⌊(n+1)/2⌋)` for the modular stack (§5.2.1).
//!
//! Safety is the same Chandra–Toueg argument as in `fortika-consensus`:
//! deciding requires a majority of acks for an exact `(instance, round)`;
//! acks lock the proposal with adoption timestamp `round+1`; coordinators
//! of later rounds adopt the max-timestamp estimate from a majority.

use std::collections::{BTreeMap, HashMap, HashSet};

use bytes::Bytes;
use fortika_fd::{FailureDetector, FdEvent};
use fortika_net::flow::FlowWindow;
use fortika_net::wire::{decode, encode};
use fortika_net::{
    Admission, AppMsg, AppRequest, Batch, MsgId, Node, NodeCtx, ProcessId, TimerId, WatermarkSet,
};
use fortika_sim::{VDur, VTime};

use crate::msg::{decision_full, Decision, MonoMsg, Proposal};

const TAG_FD: u64 = 1;
const TAG_SWEEP: u64 = 2;

/// Which of the three cross-module optimizations are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonoOptimizations {
    /// O1: combine `decision k` with `proposal k+1`.
    pub combine_decision_proposal: bool,
    /// O2: route abcast messages to the coordinator on acks instead of
    /// diffusing them to everyone.
    pub piggyback_on_acks: bool,
    /// O3: no decision relays; implicit acks + pull-based recovery.
    pub implicit_decision_acks: bool,
}

impl MonoOptimizations {
    /// The paper's monolithic stack: everything on.
    pub fn all() -> Self {
        MonoOptimizations {
            combine_decision_proposal: true,
            piggyback_on_acks: true,
            implicit_decision_acks: true,
        }
    }

    /// Everything off: the modular algorithm run inside one module
    /// (isolates the framework's mechanical overhead in ablations).
    pub fn none() -> Self {
        MonoOptimizations {
            combine_decision_proposal: false,
            piggyback_on_acks: false,
            implicit_decision_acks: false,
        }
    }
}

impl Default for MonoOptimizations {
    fn default() -> Self {
        MonoOptimizations::all()
    }
}

/// Configuration of the monolithic node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonoConfig {
    /// Optimization switches (default: all on).
    pub opts: MonoOptimizations,
    /// Flow-control window (outstanding own messages).
    pub window: usize,
    /// Rotate the coordinator of an instance stuck this long.
    pub progress_timeout: VDur,
    /// Period of the background sweep.
    pub sweep_interval: VDur,
    /// Idle kick: with a suspected round-0 coordinator and pending work,
    /// (re)create the next instance after this much silence.
    pub idle_timeout: VDur,
    /// Decision cache depth for recovery requests.
    pub decision_cache: usize,
}

impl Default for MonoConfig {
    fn default() -> Self {
        MonoConfig {
            opts: MonoOptimizations::all(),
            window: 2,
            progress_timeout: VDur::secs(1),
            sweep_interval: VDur::millis(250),
            idle_timeout: VDur::secs(1),
            decision_cache: 1024,
        }
    }
}

struct Inst {
    round: u32,
    round_entered: VTime,
    estimate: Option<Batch>,
    ts: u32,
    acks: HashSet<ProcessId>,
    estimates: HashMap<ProcessId, (u32, Batch, u32)>,
    last_proposal: Option<(u32, Batch)>,
    proposal_sent_round: Option<u32>,
    pending_tag: Option<u32>,
}

impl Inst {
    fn new(now: VTime) -> Self {
        Inst {
            round: 0,
            round_entered: now,
            estimate: None,
            ts: 0,
            acks: HashSet::new(),
            estimates: HashMap::new(),
            last_proposal: None,
            proposal_sent_round: None,
            pending_tag: None,
        }
    }
}

/// The monolithic atomic broadcast stack (implements [`Node`]).
pub struct MonoNode {
    cfg: MonoConfig,
    fd: Box<dyn FailureDetector>,
    fd_scratch: Vec<FdEvent>,
    suspected: HashSet<ProcessId>,
    flow: FlowWindow,
    /// Next instance whose decision will be applied.
    next_decide: u64,
    /// Delivered message ids, per sender (duplicate suppression).
    delivered: BTreeMap<ProcessId, WatermarkSet>,
    /// Decided instances (values may still await in-order application).
    decided_log: WatermarkSet,
    decisions: BTreeMap<u64, Batch>,
    decision_buffer: BTreeMap<u64, Batch>,
    /// Own messages not yet adelivered (flow control + re-forwarding).
    own_pending: BTreeMap<MsgId, AppMsg>,
    /// Messages this process is responsible for getting proposed.
    pool: BTreeMap<MsgId, AppMsg>,
    instances: BTreeMap<u64, Inst>,
    last_progress: VTime,
    last_recovery_request: VTime,
    /// Highest instance number observed in any peer message — when it
    /// runs ahead of `next_decide`, decisions were missed (partition,
    /// loss) and gap recovery engages.
    highest_seen_instance: u64,
    /// Last heartbeat broadcast (the FD may tick faster than it wants
    /// heartbeats sent — e.g. chaos overlays).
    last_heartbeat: Option<VTime>,
}

impl MonoNode {
    /// Creates a monolithic node with the given failure detector core.
    pub fn new(cfg: MonoConfig, fd: Box<dyn FailureDetector>) -> Self {
        let window = cfg.window;
        MonoNode {
            cfg,
            fd,
            fd_scratch: Vec::new(),
            suspected: HashSet::new(),
            flow: FlowWindow::new(window),
            next_decide: 0,
            delivered: BTreeMap::new(),
            decided_log: WatermarkSet::default(),
            decisions: BTreeMap::new(),
            decision_buffer: BTreeMap::new(),
            own_pending: BTreeMap::new(),
            pool: BTreeMap::new(),
            instances: BTreeMap::new(),
            last_progress: VTime::ZERO,
            last_recovery_request: VTime::ZERO,
            highest_seen_instance: 0,
            last_heartbeat: None,
        }
    }

    fn majority(n: usize) -> usize {
        n / 2 + 1
    }

    fn is_decided(&self, instance: u64) -> bool {
        !self.decided_log.is_new(instance)
    }

    fn msg_is_new(&self, id: MsgId) -> bool {
        self.delivered
            .get(&id.sender)
            .is_none_or(|log| log.is_new(id.seq))
    }

    fn coordinator(round: u32, n: usize) -> ProcessId {
        ProcessId((round as usize % n) as u16)
    }

    /// The coordinator new messages should be routed to right now.
    fn responsible_coordinator(&self, n: usize) -> ProcessId {
        if let Some((_, inst)) = self.instances.iter().next() {
            return Self::coordinator(inst.round, n);
        }
        let mut r = 0;
        while self.suspected.contains(&Self::coordinator(r, n)) {
            r += 1;
        }
        Self::coordinator(r, n)
    }

    /// True while a proposal is outstanding somewhere — an ack (and thus
    /// a piggyback opportunity) is imminent.
    fn in_flight(&self) -> bool {
        self.instances.values().any(|i| i.last_proposal.is_some())
    }

    fn pool_batch(&self) -> Batch {
        Batch::normalize(self.pool.values().cloned().collect())
    }

    fn send(&self, ctx: &mut NodeCtx<'_>, dst: ProcessId, kind: &'static str, msg: &MonoMsg) {
        ctx.send(dst, kind, encode(msg));
    }

    fn broadcast(&self, ctx: &mut NodeCtx<'_>, kind: &'static str, msg: &MonoMsg) {
        let bytes = encode(msg);
        for dst in ProcessId::all(ctx.n()) {
            if dst != ctx.pid() {
                ctx.send(dst, kind, bytes.clone());
            }
        }
    }

    /// Hands the pool over to `coord` in a standalone `Forward` (used
    /// when no ack is imminent).
    fn flush_pool_to(&mut self, ctx: &mut NodeCtx<'_>, coord: ProcessId) {
        if self.pool.is_empty() || coord == ctx.pid() {
            return;
        }
        let msgs: Vec<AppMsg> = self.pool.values().cloned().collect();
        self.pool.clear();
        ctx.bump("mono.forwards", 1);
        self.send(ctx, coord, "mono.forward", &MonoMsg::Forward { msgs });
    }

    /// Drains the pool for an ack/estimate piggyback (optimization O2).
    fn drain_pool(&mut self) -> Vec<AppMsg> {
        let msgs: Vec<AppMsg> = self.pool.values().cloned().collect();
        self.pool.clear();
        msgs
    }

    /// Bootstraps instance `next_decide` when we hold work for it.
    fn try_start_instance(&mut self, ctx: &mut NodeCtx<'_>) {
        if !self.instances.is_empty() {
            return;
        }
        let k = self.next_decide;
        if self.is_decided(k) || self.pool.is_empty() {
            return;
        }
        let n = ctx.n();
        let me = ctx.pid();
        let now = ctx.now();
        if Self::coordinator(0, n) == me {
            let batch = self.pool_batch();
            let inst = self.instances.entry(k).or_insert_with(|| Inst::new(now));
            inst.estimate = Some(batch.clone());
            inst.ts = 1;
            inst.last_proposal = Some((0, batch.clone()));
            inst.proposal_sent_round = Some(0);
            inst.acks.insert(me);
            ctx.bump("mono.proposals", 1);
            self.broadcast(
                ctx,
                "mono.proposal",
                &MonoMsg::Step {
                    decision: None,
                    proposal: Some(Proposal {
                        instance: k,
                        round: 0,
                        value: batch,
                    }),
                },
            );
            self.check_decide(ctx, k);
        } else {
            // Register the instance so round rotation can engage; if the
            // round-0 coordinator is already suspected, rotate now.
            self.instances.entry(k).or_insert_with(|| Inst::new(now));
            if self.suspected.contains(&Self::coordinator(0, n)) {
                self.advance_round(ctx, k);
            }
        }
    }

    /// Ensures the next instance exists (and is rotated away from a
    /// suspected coordinator) even on processes holding no messages.
    ///
    /// Without this, an idle process never joins the instance, and with
    /// n ≥ 4 the new coordinator cannot gather a majority of estimates —
    /// the modular stack gets the same guarantee from its periodic idle
    /// consensus (§3.3's `t`-timeout).
    fn kick_fresh_instance(&mut self, ctx: &mut NodeCtx<'_>) {
        if !self.instances.is_empty() || self.is_decided(self.next_decide) {
            return;
        }
        let n = ctx.n();
        let has_work = !self.pool.is_empty() || !self.own_pending.is_empty();
        let coord0_suspected = self.suspected.contains(&Self::coordinator(0, n));
        if !(has_work || coord0_suspected) {
            return;
        }
        self.try_start_instance(ctx);
        if self.instances.is_empty() {
            // No pool (idle helper): create the placeholder directly so
            // we can contribute estimates to the round change.
            let now = ctx.now();
            self.instances
                .entry(self.next_decide)
                .or_insert_with(|| Inst::new(now));
        }
        let rotate = self.instances.iter().next().and_then(|(k, inst)| {
            let c = Self::coordinator(inst.round, n);
            self.suspected.contains(&c).then_some(*k)
        });
        if let Some(k) = rotate {
            self.advance_round(ctx, k);
        }
    }

    fn check_decide(&mut self, ctx: &mut NodeCtx<'_>, instance: u64) {
        let n = ctx.n();
        let Some(inst) = self.instances.get(&instance) else {
            return;
        };
        if inst.proposal_sent_round != Some(inst.round) || inst.acks.len() < Self::majority(n) {
            return;
        }
        let round = inst.round;
        let value = inst.estimate.clone().unwrap_or_default();
        self.conclude_as_coordinator(ctx, instance, round, value);
    }

    /// Coordinator decided `instance`: apply locally, then emit the
    /// decision — combined with the next proposal when O1 allows.
    fn conclude_as_coordinator(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        instance: u64,
        round: u32,
        value: Batch,
    ) {
        let n = ctx.n();
        let me = ctx.pid();
        let decision = Decision {
            instance,
            round,
            full: if round == 0 {
                None
            } else {
                Some(value.clone())
            },
        };
        self.record_decision(instance, value);
        // Apply without the auto-start of the next instance: the next
        // proposal must be assembled *here* so O1 can combine it with
        // the decision we are about to emit.
        self.apply_decisions_core(ctx);

        // Assemble the next proposal if we have work and still coordinate.
        let k1 = self.next_decide;
        let can_propose = self.instances.is_empty()
            && !self.pool.is_empty()
            && !self.is_decided(k1)
            && Self::coordinator(0, n) == me;
        if can_propose {
            let batch = self.pool_batch();
            let now = ctx.now();
            let inst = self.instances.entry(k1).or_insert_with(|| Inst::new(now));
            inst.estimate = Some(batch.clone());
            inst.ts = 1;
            inst.last_proposal = Some((0, batch.clone()));
            inst.proposal_sent_round = Some(0);
            inst.acks.insert(me);
            ctx.bump("mono.proposals", 1);
            let proposal = Proposal {
                instance: k1,
                round: 0,
                value: batch,
            };
            if self.cfg.opts.combine_decision_proposal {
                ctx.bump("mono.combined_steps", 1);
                self.broadcast(
                    ctx,
                    "mono.step",
                    &MonoMsg::Step {
                        decision: Some(decision),
                        proposal: Some(proposal),
                    },
                );
            } else {
                self.broadcast(
                    ctx,
                    "mono.decision",
                    &MonoMsg::Step {
                        decision: Some(decision),
                        proposal: None,
                    },
                );
                self.broadcast(
                    ctx,
                    "mono.proposal",
                    &MonoMsg::Step {
                        decision: None,
                        proposal: Some(proposal),
                    },
                );
            }
            self.check_decide(ctx, k1);
        } else {
            self.broadcast(
                ctx,
                "mono.decision",
                &MonoMsg::Step {
                    decision: Some(decision),
                    proposal: None,
                },
            );
        }
    }

    fn record_decision(&mut self, instance: u64, value: Batch) {
        if self.is_decided(instance) {
            return;
        }
        self.decided_log.complete(instance);
        self.decisions.insert(instance, value.clone());
        while self.decisions.len() > self.cfg.decision_cache {
            self.decisions.pop_first();
        }
        self.decision_buffer.insert(instance, value);
    }

    fn apply_decisions(&mut self, ctx: &mut NodeCtx<'_>) {
        self.apply_decisions_core(ctx);
        // With O2, messages that were waiting for an ack to ride must not
        // starve when the pipeline drains.
        if self.cfg.opts.piggyback_on_acks && !self.in_flight() && !self.pool.is_empty() {
            let coord = self.responsible_coordinator(ctx.n());
            if coord != ctx.pid() {
                self.flush_pool_to(ctx, coord);
            }
        }
        self.try_start_instance(ctx);
    }

    fn apply_decisions_core(&mut self, ctx: &mut NodeCtx<'_>) {
        let me = ctx.pid();
        while let Some(batch) = self.decision_buffer.remove(&self.next_decide) {
            let k = self.next_decide;
            let mut own_delivered = 0;
            for m in batch.into_msgs() {
                if !self.msg_is_new(m.id) {
                    continue;
                }
                self.delivered
                    .entry(m.id.sender)
                    .or_default()
                    .complete(m.id.seq);
                self.pool.remove(&m.id);
                if m.id.sender == me {
                    self.own_pending.remove(&m.id);
                    own_delivered += 1;
                }
                ctx.deliver(m.id, m.payload.len() as u32);
                ctx.bump("abcast.delivered", 1);
            }
            ctx.bump("consensus.decided", 1);
            self.instances.remove(&k);
            self.next_decide += 1;
            self.last_progress = ctx.now();
            if self.flow.release(own_delivered) {
                ctx.app_ready();
            }
        }
    }

    /// Handles a decision. `followup` controls whether pipeline
    /// continuation (pool flush / next-instance start) runs here: it must
    /// be suppressed while the proposal half of a combined Step is still
    /// unprocessed, otherwise the transiently-empty pipeline triggers a
    /// spurious standalone `Forward` on every instance.
    fn handle_decision(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        from: ProcessId,
        dec: Decision,
        followup: bool,
    ) {
        if self.is_decided(dec.instance) {
            return;
        }
        // O3 disabled: emulate the reliable-broadcast relay pattern for
        // decisions (first receipt at a relay re-broadcasts).
        if !self.cfg.opts.implicit_decision_acks {
            let n = ctx.n();
            let origin = Self::coordinator(dec.round, n);
            if fortika_relay_set(origin, n).any(|p| p == ctx.pid()) {
                ctx.bump("mono.decision_relays", 1);
                self.broadcast(
                    ctx,
                    "mono.decision_relay",
                    &MonoMsg::Step {
                        decision: Some(dec.clone()),
                        proposal: None,
                    },
                );
            }
        }
        match dec.full {
            Some(value) => {
                self.highest_seen_instance = self.highest_seen_instance.max(dec.instance);
                self.record_decision(dec.instance, value);
                if followup {
                    self.apply_decisions(ctx);
                } else {
                    self.apply_decisions_core(ctx);
                }
                // Chained catch-up: a recovered decision that still
                // leaves us behind pulls the next batch promptly, so a
                // healed process recovers at near round-trip pace
                // instead of one instance per progress-timeout. A short
                // rate limit keeps the batch's several replies from
                // each re-requesting the same range.
                let now = ctx.now();
                if self.highest_seen_instance > self.next_decide
                    && !self.is_decided(self.next_decide)
                    && now.since(self.last_recovery_request) >= VDur::millis(5)
                {
                    self.last_recovery_request = now;
                    let hi = self.highest_seen_instance;
                    self.request_gap_batch(ctx, from, hi);
                }
            }
            None => {
                let now = ctx.now();
                let inst = self
                    .instances
                    .entry(dec.instance)
                    .or_insert_with(|| Inst::new(now));
                match &inst.last_proposal {
                    Some((r, v)) if *r == dec.round => {
                        let value = v.clone();
                        self.record_decision(dec.instance, value);
                        if followup {
                            self.apply_decisions(ctx);
                        } else {
                            self.apply_decisions_core(ctx);
                        }
                    }
                    _ => {
                        inst.pending_tag = Some(dec.round);
                        ctx.bump("mono.tag_misses", 1);
                        let req = MonoMsg::DecisionRequest {
                            instance: dec.instance,
                        };
                        self.send(ctx, from, "mono.decision_request", &req);
                    }
                }
            }
        }
    }

    fn maybe_request_gap(&mut self, ctx: &mut NodeCtx<'_>, from: ProcessId, seen_instance: u64) {
        self.highest_seen_instance = self.highest_seen_instance.max(seen_instance);
        if seen_instance <= self.next_decide || self.is_decided(self.next_decide) {
            return;
        }
        let now = ctx.now();
        if now.since(self.last_recovery_request) < VDur::millis(50) {
            return;
        }
        self.last_recovery_request = now;
        self.request_gap_batch(ctx, from, seen_instance);
    }

    /// Pulls a bounded batch of missing decisions starting at
    /// `next_decide` from `from`.
    fn request_gap_batch(&mut self, ctx: &mut NodeCtx<'_>, from: ProcessId, seen_instance: u64) {
        const MAX_BATCH: u64 = 8;
        let hi = seen_instance.min(self.next_decide + MAX_BATCH);
        for instance in self.next_decide..hi {
            if !self.is_decided(instance) {
                ctx.bump("mono.gap_requests", 1);
                let req = MonoMsg::DecisionRequest { instance };
                self.send(ctx, from, "mono.decision_request", &req);
            }
        }
    }

    fn handle_proposal(&mut self, ctx: &mut NodeCtx<'_>, from: ProcessId, p: Proposal) {
        if Self::coordinator(p.round, ctx.n()) != from {
            ctx.bump("mono.bogus_proposals", 1);
            return; // only the round's coordinator may propose
        }
        self.maybe_request_gap(ctx, from, p.instance);
        if self.is_decided(p.instance) {
            if let Some(v) = self.decisions.get(&p.instance) {
                let msg = decision_full(p.instance, p.round, v.clone());
                self.send(ctx, from, "mono.decision_full", &msg);
            }
            return;
        }
        let now = ctx.now();
        let inst = self
            .instances
            .entry(p.instance)
            .or_insert_with(|| Inst::new(now));
        if p.round < inst.round {
            return;
        }
        if p.round > inst.round {
            inst.round = p.round;
            inst.round_entered = now;
            inst.acks.clear();
        }
        inst.estimate = Some(p.value.clone());
        inst.ts = p.round + 1;
        inst.last_proposal = Some((p.round, p.value.clone()));
        let pending_tag_hit = inst.pending_tag == Some(p.round);
        let msgs = if self.cfg.opts.piggyback_on_acks {
            self.drain_pool()
        } else {
            Vec::new()
        };
        let ack = MonoMsg::AckDiff {
            instance: p.instance,
            round: p.round,
            msgs,
        };
        self.send(ctx, from, "mono.ack", &ack);
        if pending_tag_hit {
            self.record_decision(p.instance, p.value);
            self.apply_decisions(ctx);
        }
    }

    fn handle_ack(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        from: ProcessId,
        instance: u64,
        round: u32,
        msgs: Vec<AppMsg>,
    ) {
        for m in msgs {
            if self.msg_is_new(m.id) {
                self.pool.insert(m.id, m);
            }
        }
        if self.is_decided(instance) {
            self.try_start_instance(ctx);
            return;
        }
        let Some(inst) = self.instances.get_mut(&instance) else {
            self.try_start_instance(ctx);
            return;
        };
        if inst.round != round || inst.proposal_sent_round != Some(round) {
            return;
        }
        inst.acks.insert(from);
        self.check_decide(ctx, instance);
    }

    fn handle_forward(&mut self, ctx: &mut NodeCtx<'_>, msgs: Vec<AppMsg>) {
        for m in msgs {
            if self.msg_is_new(m.id) {
                self.pool.insert(m.id, m);
            }
        }
        self.try_start_instance(ctx);
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_estimate(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        from: ProcessId,
        instance: u64,
        round: u32,
        ts: u32,
        value: Batch,
        msgs: Vec<AppMsg>,
    ) {
        for m in msgs {
            if self.msg_is_new(m.id) {
                self.pool.insert(m.id, m);
            }
        }
        self.maybe_request_gap(ctx, from, instance);
        if self.is_decided(instance) {
            if let Some(v) = self.decisions.get(&instance) {
                let msg = decision_full(instance, round, v.clone());
                self.send(ctx, from, "mono.decision_full", &msg);
            }
            self.try_start_instance(ctx);
            return;
        }
        let n = ctx.n();
        let me = ctx.pid();
        if Self::coordinator(round, n) != me {
            return;
        }
        let now = ctx.now();
        let inst = self
            .instances
            .entry(instance)
            .or_insert_with(|| Inst::new(now));
        if round < inst.round {
            return;
        }
        let keep = match inst.estimates.get(&from) {
            Some((r, _, _)) => *r < round,
            None => true,
        };
        if keep {
            inst.estimates.insert(from, (round, value, ts));
        }
        if round > inst.round {
            inst.round = round;
            inst.round_entered = now;
            inst.acks.clear();
        }
        // Our own estimate joins the collection (initial = pool batch).
        if inst.round == round && !inst.estimates.contains_key(&me) {
            let own = inst
                .estimate
                .clone()
                .unwrap_or_else(|| Batch::normalize(self.pool.values().cloned().collect()));
            let own_ts = inst.ts;
            inst.estimates.insert(me, (round, own, own_ts));
        }
        self.try_propose_from_estimates(ctx, instance);
    }

    fn try_propose_from_estimates(&mut self, ctx: &mut NodeCtx<'_>, instance: u64) {
        let n = ctx.n();
        let me = ctx.pid();
        let Some(inst) = self.instances.get_mut(&instance) else {
            return;
        };
        let round = inst.round;
        if Self::coordinator(round, n) != me
            || round == 0
            || inst.proposal_sent_round == Some(round)
        {
            return;
        }
        let mut candidates: Vec<(&ProcessId, &(u32, Batch, u32))> = inst
            .estimates
            .iter()
            .filter(|(_, (r, _, _))| *r == round)
            .collect();
        if candidates.len() < Self::majority(n) {
            return;
        }
        candidates.sort_by_key(|(pid, (_, _, ts))| (std::cmp::Reverse(*ts), **pid));
        let value = candidates[0].1 .1.clone();
        inst.estimate = Some(value.clone());
        inst.ts = round + 1;
        inst.last_proposal = Some((round, value.clone()));
        inst.proposal_sent_round = Some(round);
        inst.acks.clear();
        inst.acks.insert(me);
        ctx.bump("mono.proposals", 1);
        self.broadcast(
            ctx,
            "mono.proposal",
            &MonoMsg::Step {
                decision: None,
                proposal: Some(Proposal {
                    instance,
                    round,
                    value,
                }),
            },
        );
        self.check_decide(ctx, instance);
    }

    fn advance_round(&mut self, ctx: &mut NodeCtx<'_>, instance: u64) {
        let n = ctx.n();
        let me = ctx.pid();
        let now = ctx.now();
        let Some(inst) = self.instances.get_mut(&instance) else {
            return;
        };
        let mut round = inst.round + 1;
        while Self::coordinator(round, n) != me
            && self.suspected.contains(&Self::coordinator(round, n))
        {
            round += 1;
        }
        inst.round = round;
        inst.round_entered = now;
        inst.acks.clear();
        ctx.bump("mono.round_changes", 1);
        let coord = Self::coordinator(round, n);
        if coord == me {
            let estimate = inst
                .estimate
                .clone()
                .unwrap_or_else(|| Batch::normalize(self.pool.values().cloned().collect()));
            let ts = inst.ts;
            inst.estimates.insert(me, (round, estimate, ts));
            self.try_propose_from_estimates(ctx, instance);
            // Still short of a majority: solicit estimates instead of
            // waiting for idle processes' periodic kicks.
            let short = self
                .instances
                .get(&instance)
                .is_some_and(|i| i.proposal_sent_round != Some(round));
            if short {
                ctx.bump("mono.estimate_requests", 1);
                self.broadcast(
                    ctx,
                    "mono.estimate_request",
                    &MonoMsg::EstimateRequest { instance, round },
                );
            }
        } else {
            self.send_estimate(ctx, instance, round);
        }
    }

    /// Sends this process's estimate for `(instance, round)` to the
    /// round's coordinator, piggybacking undelivered own messages — the
    /// re-routing of §4.2 ("if the coordinator changes, m is again
    /// piggybacked on the estimate sent to the new coordinator").
    fn send_estimate(&mut self, ctx: &mut NodeCtx<'_>, instance: u64, round: u32) {
        let n = ctx.n();
        let coord = Self::coordinator(round, n);
        if coord == ctx.pid() {
            return;
        }
        let Some(inst) = self.instances.get(&instance) else {
            return;
        };
        let estimate = inst
            .estimate
            .clone()
            .unwrap_or_else(|| Batch::normalize(self.pool.values().cloned().collect()));
        let ts = inst.ts;
        let msgs = if self.cfg.opts.piggyback_on_acks {
            for m in self.own_pending.values() {
                self.pool.remove(&m.id);
            }
            self.own_pending.values().cloned().collect()
        } else {
            Vec::new()
        };
        let msg = MonoMsg::Estimate {
            instance,
            round,
            ts,
            value: estimate,
            msgs,
        };
        self.send(ctx, coord, "mono.estimate", &msg);
    }

    fn process_fd_events(&mut self, ctx: &mut NodeCtx<'_>) {
        let events = std::mem::take(&mut self.fd_scratch);
        for ev in &events {
            match ev {
                FdEvent::Suspect(p) => {
                    ctx.bump("fd.suspicions", 1);
                    self.suspected.insert(*p);
                    // Own messages handed to the suspect may be lost with
                    // it: make them proposable again (they are re-routed
                    // on the next estimate/ack/forward).
                    for m in self.own_pending.values() {
                        self.pool.entry(m.id).or_insert_with(|| m.clone());
                    }
                    let n = ctx.n();
                    let affected: Vec<u64> = self
                        .instances
                        .iter()
                        .filter(|(_, inst)| Self::coordinator(inst.round, n) == *p)
                        .map(|(k, _)| *k)
                        .collect();
                    for k in affected {
                        self.advance_round(ctx, k);
                    }
                    // Join/advance the fresh instance so the new
                    // coordinator can reach an estimate majority even if
                    // we personally hold no messages.
                    self.kick_fresh_instance(ctx);
                }
                FdEvent::Restore(p) => {
                    ctx.bump("fd.restores", 1);
                    self.suspected.remove(p);
                }
            }
        }
        self.fd_scratch = events;
        self.fd_scratch.clear();
    }

    fn sweep(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now();
        let stuck: Vec<u64> = self
            .instances
            .iter()
            .filter(|(_, inst)| now.since(inst.round_entered) > self.cfg.progress_timeout)
            .map(|(k, _)| *k)
            .collect();
        for k in stuck {
            let inst = self.instances.get_mut(&k).expect("instance exists");
            if inst.pending_tag.is_some() {
                inst.round_entered = now;
                ctx.bump("mono.request_retries", 1);
                let req = MonoMsg::DecisionRequest { instance: k };
                self.broadcast(ctx, "mono.decision_request", &req);
            } else {
                ctx.bump("mono.progress_rotations", 1);
                self.advance_round(ctx, k);
            }
        }
        // Idle kick: periodic backstop for the same fresh-instance
        // bootstrap (covers suspicions that raced with message arrival).
        if now.since(self.last_progress) > self.cfg.idle_timeout {
            self.kick_fresh_instance(ctx);
        }
    }
}

/// Ring-successor relay set (mirrors `fortika-rbcast`'s scheme without
/// depending on the modular protocol crate).
fn fortika_relay_set(origin: ProcessId, n: usize) -> impl Iterator<Item = ProcessId> {
    let count = (n - 1) / 2;
    (1..=count as u16).map(move |i| ProcessId((origin.0 + i) % n as u16))
}

impl Node for MonoNode {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        if let Some(interval) = self.fd.tick_interval() {
            ctx.set_timer(interval, TAG_FD);
        }
        ctx.set_timer(self.cfg.sweep_interval, TAG_SWEEP);
    }

    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, from: ProcessId, bytes: Bytes) {
        let msg = match decode::<MonoMsg>(bytes) {
            Ok(m) => m,
            Err(_) => {
                ctx.bump("mono.garbage", 1);
                return;
            }
        };
        match msg {
            MonoMsg::Step { decision, proposal } => {
                let combined = proposal.is_some();
                if let Some(d) = decision {
                    self.handle_decision(ctx, from, d, !combined);
                }
                if let Some(p) = proposal {
                    self.handle_proposal(ctx, from, p);
                }
            }
            MonoMsg::AckDiff {
                instance,
                round,
                msgs,
            } => self.handle_ack(ctx, from, instance, round, msgs),
            MonoMsg::Forward { msgs } => self.handle_forward(ctx, msgs),
            MonoMsg::Diffuse { msg } => {
                if self.msg_is_new(msg.id) {
                    self.pool.insert(msg.id, msg);
                }
                self.try_start_instance(ctx);
            }
            MonoMsg::Estimate {
                instance,
                round,
                ts,
                value,
                msgs,
            } => self.handle_estimate(ctx, from, instance, round, ts, value, msgs),
            MonoMsg::DecisionRequest { instance } => {
                if let Some(v) = self.decisions.get(&instance) {
                    let msg = decision_full(instance, 0, v.clone());
                    self.send(ctx, from, "mono.decision_full", &msg);
                }
            }
            MonoMsg::EstimateRequest { instance, round } => {
                // Sanity: only the round's coordinator may solicit.
                if Self::coordinator(round, ctx.n()) != from {
                    ctx.bump("mono.bogus_requests", 1);
                    return;
                }
                if self.is_decided(instance) {
                    if let Some(v) = self.decisions.get(&instance) {
                        let msg = decision_full(instance, round, v.clone());
                        self.send(ctx, from, "mono.decision_full", &msg);
                    }
                    return;
                }
                // Join the solicited round (rounds only move forward —
                // same safety as receiving a higher-round proposal).
                let now = ctx.now();
                let inst = self
                    .instances
                    .entry(instance)
                    .or_insert_with(|| Inst::new(now));
                if round > inst.round {
                    inst.round = round;
                    inst.round_entered = now;
                    inst.acks.clear();
                }
                if round == inst.round {
                    self.send_estimate(ctx, instance, round);
                }
            }
            MonoMsg::Heartbeat => {
                self.fd.on_heartbeat(from, ctx.now(), &mut self.fd_scratch);
                self.process_fd_events(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _timer: TimerId, tag: u64) {
        match tag {
            TAG_FD => {
                // Heartbeats follow the detector's heartbeat cadence,
                // which may be coarser than its polling tick (chaos
                // overlays tick fast to fire suspicion windows promptly).
                if self.fd.sends_heartbeats() {
                    let now = ctx.now();
                    let due = match (self.last_heartbeat, self.fd.heartbeat_interval()) {
                        (Some(last), Some(interval)) => now.since(last) >= interval,
                        _ => true,
                    };
                    if due {
                        self.last_heartbeat = Some(now);
                        let hb = encode(&MonoMsg::Heartbeat);
                        for dst in ProcessId::all(ctx.n()) {
                            if dst != ctx.pid() {
                                ctx.send(dst, "fd.heartbeat", hb.clone());
                            }
                        }
                    }
                }
                self.fd.tick(ctx.now(), &mut self.fd_scratch);
                self.process_fd_events(ctx);
                if let Some(interval) = self.fd.tick_interval() {
                    ctx.set_timer(interval, TAG_FD);
                }
            }
            TAG_SWEEP => {
                self.sweep(ctx);
                ctx.set_timer(self.cfg.sweep_interval, TAG_SWEEP);
            }
            _ => {}
        }
    }

    fn on_request(&mut self, ctx: &mut NodeCtx<'_>, req: AppRequest) -> Admission {
        let AppRequest::Abcast(m) = req;
        if !self.flow.try_acquire() {
            return Admission::Blocked;
        }
        debug_assert_eq!(m.id.sender, ctx.pid(), "abcast of a foreign message");
        self.own_pending.insert(m.id, m.clone());
        ctx.bump("abcast.requests", 1);
        if !self.cfg.opts.piggyback_on_acks {
            // Modular-style dissemination: diffuse to everyone.
            self.broadcast(ctx, "mono.diffuse", &MonoMsg::Diffuse { msg: m.clone() });
            self.pool.insert(m.id, m);
            self.try_start_instance(ctx);
        } else {
            let n = ctx.n();
            let coord = self.responsible_coordinator(n);
            self.pool.insert(m.id, m);
            if coord == ctx.pid() {
                self.try_start_instance(ctx);
            } else if !self.in_flight() {
                // No ack imminent: hand the message over right away.
                self.flush_pool_to(ctx, coord);
            }
            // Otherwise the message rides the next AckDiff (O2).
        }
        Admission::Accepted
    }
}
