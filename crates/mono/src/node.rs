//! The monolithic atomic broadcast node.
//!
//! One state machine merging atomic broadcast, consensus, decision
//! dissemination, flow control and the failure detector — the paper's
//! monolithic stack (§4), with each cross-module optimization
//! individually switchable for ablation studies:
//!
//! * **O1 — combine next proposal with current decision** (§4.1): the
//!   round-0 coordinator of consecutive instances is the same process, so
//!   `decision k` piggybacks on `proposal k+1` in one message.
//! * **O2 — piggyback abcast messages on acks** (§4.2): senders hand new
//!   messages directly to the coordinator, riding `ack` messages (or the
//!   estimate after a coordinator change) instead of diffusing them to
//!   everyone.
//! * **O3 — implicit decision acknowledgements** (§4.3): decisions are
//!   sent once to each process with no relay re-broadcast; the messages
//!   of instance `k+1` acknowledge decision `k` implicitly, and a
//!   pull-based recovery path (`DecisionRequest`) plus the progress sweep
//!   covers crashes.
//!
//! In good runs with all three enabled, ordering `M` messages costs
//! `2(n−1)` messages per consensus instance — against
//! `(n−1)(M + 2 + ⌊(n+1)/2⌋)` for the modular stack (§5.2.1).
//!
//! The proposal path is a windowed sequencer
//! ([`MonoConfig::pipeline_depth`]): at the default depth 1 consensus
//! slots run strictly one at a time as in the paper, while larger
//! depths keep α slots outstanding concurrently (their decision
//! round-trips overlap; decisions are still applied strictly in
//! instance order, and the pool is deduplicated against batches already
//! proposed in live slots).
//!
//! Safety is the same Chandra–Toueg argument as in `fortika-consensus`:
//! deciding requires a majority of acks for an exact `(instance, round)`;
//! acks lock the proposal with adoption timestamp `round+1`; coordinators
//! of later rounds adopt the max-timestamp estimate from a majority.

use std::collections::{BTreeMap, BTreeSet};

use bytes::Bytes;
use fortika_fd::{FailureDetector, FdEvent};
use fortika_net::flow::FlowWindow;
use fortika_net::membership::{decode_reconfigs, encode_reconfigs};
use fortika_net::snapshot::{chunk_of, stamp_of};
use fortika_net::wire::{decode, encode, WireReader, WireWriter};
use fortika_net::{
    parse_reconfig, Admission, AppMsg, AppRequest, AppState, Batch, ChunkOutcome, ConfigChange,
    ConfigTimeline, MsgId, Node, NodeCtx, PeerRateLimiter, ProcessId, Snapshot, SnapshotDownload,
    SnapshotFold, StableStore, TimerId, WatermarkSet,
};
use fortika_sim::{VDur, VTime};

use crate::msg::{decision_full, Decision, MonoMsg, Proposal, VoteRecord};

const TAG_FD: u64 = 1;
const TAG_SWEEP: u64 = 2;

/// Stable-store key namespace tag of per-instance vote records.
const STABLE_VOTE_TAG: u64 = 0x11 << 56;
/// Stable-store key of the contiguous decided watermark.
const STABLE_WATERMARK_KEY: u64 = 0x12 << 56;
/// Stable-store key of the latest log-compaction snapshot.
const STABLE_SNAPSHOT_KEY: u64 = 0x13 << 56;
/// Stable-store key of the registered reconfiguration history.
const STABLE_CONFIG_KEY: u64 = 0x14 << 56;

/// Stable-store key of `instance`'s vote record.
fn vote_key(instance: u64) -> u64 {
    debug_assert!(instance < (1 << 56));
    STABLE_VOTE_TAG | instance
}

/// Instances streamed per [`MonoMsg::StateTransfer`] reply.
const MAX_TRANSFER: u64 = 16;
/// Minimum spacing of rejoin re-announcements.
const JOIN_RETRY: VDur = VDur::millis(300);
/// Minimum spacing of snapshot offers toward one lagging peer.
const OFFER_SPACING: VDur = VDur::millis(50);

/// Which of the three cross-module optimizations are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonoOptimizations {
    /// O1: combine `decision k` with `proposal k+1`.
    pub combine_decision_proposal: bool,
    /// O2: route abcast messages to the coordinator on acks instead of
    /// diffusing them to everyone.
    pub piggyback_on_acks: bool,
    /// O3: no decision relays; implicit acks + pull-based recovery.
    pub implicit_decision_acks: bool,
}

impl MonoOptimizations {
    /// The paper's monolithic stack: everything on.
    pub fn all() -> Self {
        MonoOptimizations {
            combine_decision_proposal: true,
            piggyback_on_acks: true,
            implicit_decision_acks: true,
        }
    }

    /// Everything off: the modular algorithm run inside one module
    /// (isolates the framework's mechanical overhead in ablations).
    pub fn none() -> Self {
        MonoOptimizations {
            combine_decision_proposal: false,
            piggyback_on_acks: false,
            implicit_decision_acks: false,
        }
    }
}

impl Default for MonoOptimizations {
    fn default() -> Self {
        MonoOptimizations::all()
    }
}

/// Configuration of the monolithic node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonoConfig {
    /// Optimization switches (default: all on).
    pub opts: MonoOptimizations,
    /// Flow-control window (outstanding own messages).
    pub window: usize,
    /// Rotate the coordinator of an instance stuck this long.
    pub progress_timeout: VDur,
    /// Period of the background sweep.
    pub sweep_interval: VDur,
    /// Idle kick: with a suspected round-0 coordinator and pending work,
    /// (re)create the next instance after this much silence.
    pub idle_timeout: VDur,
    /// Decision cache depth for recovery requests.
    pub decision_cache: usize,
    /// Fold the applied prefix into a log-compaction snapshot every
    /// this many instances (also whenever the decision cache would
    /// otherwise evict an uncompacted decision). `0` disables
    /// snapshotting — then a joiner whose gap was evicted everywhere
    /// stalls forever (`mono.join_unservable`).
    pub snapshot_interval: u64,
    /// The windowed-sequencer depth α: how many consensus slots this
    /// node keeps outstanding concurrently.
    ///
    /// `1` (the default) is the seed-faithful regime — the coordinator
    /// starts slot `k+1` only once slot `k`'s decision was applied
    /// locally (modulo O1, which combines `decision k` with `proposal
    /// k+1` in one message). Larger depths let the coordinator keep α
    /// slots in flight, overlapping their decision round-trips; the
    /// pool is deduplicated against batches already proposed in live
    /// slots, and decisions are still **applied strictly in instance
    /// order**. Interaction with flow control: each sender may hold at
    /// most [`window`](MonoConfig::window) own messages outstanding, so
    /// a deep pipeline only fills when the flow windows offer enough
    /// distinct messages for α disjoint batches.
    pub pipeline_depth: usize,
    /// **Test-only fault hook, debug builds only:** skip persisting CT
    /// vote records. Plants the classic lost-vote recovery bug for the
    /// fuzz-minimizer acceptance suite; compiled to a no-op in release
    /// builds (`cfg!(debug_assertions)`).
    pub skip_vote_persist: bool,
    /// Size of the initial voting member set. `0` (the default) means
    /// "every process in the cluster"; reconfiguration runs build
    /// clusters at standby capacity with a smaller voter count.
    pub initial_members: usize,
    /// Activation offset of log-decided reconfigurations: a membership
    /// change decided at instance `d` governs instances `d + offset` on.
    /// Must be at least the pipeline depth.
    pub reconfig_offset: u64,
    /// **Test-only fault hook, debug builds only:** never register
    /// decided reconfigurations — this node keeps voting with the
    /// *initial* configuration's quorum and coordinator math (the
    /// stale-quorum membership bug the config-aware oracle must catch).
    /// A no-op in release builds.
    pub skip_config_fence: bool,
}

impl Default for MonoConfig {
    fn default() -> Self {
        MonoConfig {
            opts: MonoOptimizations::all(),
            window: 2,
            progress_timeout: VDur::secs(1),
            sweep_interval: VDur::millis(250),
            idle_timeout: VDur::secs(1),
            decision_cache: 1024,
            snapshot_interval: 256,
            pipeline_depth: 1,
            skip_vote_persist: false,
            initial_members: 0,
            reconfig_offset: 8,
            skip_config_fence: false,
        }
    }
}

struct Inst {
    round: u32,
    round_entered: VTime,
    estimate: Option<Batch>,
    ts: u32,
    acks: BTreeSet<ProcessId>,
    estimates: BTreeMap<ProcessId, (u32, Batch, u32)>,
    last_proposal: Option<(u32, Batch)>,
    proposal_sent_round: Option<u32>,
    pending_tag: Option<u32>,
}

impl Inst {
    fn new(now: VTime) -> Self {
        Inst {
            round: 0,
            round_entered: now,
            estimate: None,
            ts: 0,
            acks: BTreeSet::new(),
            estimates: BTreeMap::new(),
            last_proposal: None,
            proposal_sent_round: None,
            pending_tag: None,
        }
    }
}

/// The monolithic atomic broadcast stack (implements [`Node`]).
pub struct MonoNode {
    cfg: MonoConfig,
    fd: Box<dyn FailureDetector>,
    fd_scratch: Vec<FdEvent>,
    suspected: BTreeSet<ProcessId>,
    flow: FlowWindow,
    /// Next instance whose decision will be applied.
    next_decide: u64,
    /// Delivered message ids, per sender (duplicate suppression).
    delivered: BTreeMap<ProcessId, WatermarkSet>,
    /// Instances this process may no longer vote in (voting fence).
    /// After a restart it is pre-loaded from the persisted watermark,
    /// so it can run *ahead* of [`replayed`](Self::replayed).
    decided_log: WatermarkSet,
    /// Instances whose decision was recorded (buffered for in-order
    /// application) in this incarnation — the replay progress. Always
    /// starts at 0, so a revived node re-applies the decided prefix.
    replayed: WatermarkSet,
    decisions: BTreeMap<u64, Batch>,
    decision_buffer: BTreeMap<u64, Batch>,
    /// Own messages not yet adelivered (flow control + re-forwarding).
    own_pending: BTreeMap<MsgId, AppMsg>,
    /// Messages this process is responsible for getting proposed.
    pool: BTreeMap<MsgId, AppMsg>,
    instances: BTreeMap<u64, Inst>,
    last_progress: VTime,
    /// Per-peer rate limiter for gap/rejoin recovery requests.
    gap_limiter: PeerRateLimiter,
    /// Highest instance number observed in any peer message — when it
    /// runs ahead of `next_decide`, decisions were missed (partition,
    /// loss) and gap recovery engages.
    highest_seen_instance: u64,
    /// Last heartbeat broadcast (the FD may tick faster than it wants
    /// heartbeats sent — e.g. chaos overlays).
    last_heartbeat: Option<VTime>,
    /// Vote records recovered from stable storage (restart only).
    recovered_votes: BTreeMap<u64, VoteRecord>,
    /// Still catching up after a restart (rejoin announcements active).
    rejoining: bool,
    /// Highest applied frontier any state transfer advertised.
    rejoin_target: u64,
    /// When the last rejoin announcement went out.
    last_join: VTime,
    /// Deterministic fold of the contiguous applied prefix (feeds
    /// snapshots; mirrors the delivery path's dedup exactly).
    fold: SnapshotFold,
    /// Latest materialized or installed snapshot, plus its cached
    /// encoding for chunked serving.
    snapshot: Option<Snapshot>,
    snapshot_bytes: Bytes,
    /// In-progress snapshot download (receiver side).
    download: SnapshotDownload,
    /// Rate limiter for snapshot offers toward lagging peers (a batch
    /// of gap requests needs one offer, not eight).
    offer_limiter: PeerRateLimiter,
    /// Snapshot recovered from stable storage (restart only); installed
    /// in `on_start`, where a handler context is available.
    restored: Option<Snapshot>,
    /// The versioned configuration history (log-decided membership).
    /// Built at `on_start`; `None` answers every quorum question with
    /// the static-group math.
    timeline: Option<ConfigTimeline>,
    /// Reconfiguration commands decided but not yet registered (a
    /// change enters the timeline only once the contiguous replayed
    /// prefix covers its decided instance, so versions are numbered in
    /// decided order on every process).
    pending_reconfigs: BTreeMap<u64, ConfigChange>,
    /// Reconfiguration history recovered from stable storage (restart
    /// only); registered in `on_start`.
    recovered_reconfigs: Vec<(u64, ConfigChange)>,
}

impl MonoNode {
    /// Creates a monolithic node with the given failure detector core.
    pub fn new(cfg: MonoConfig, fd: Box<dyn FailureDetector>) -> Self {
        let window = cfg.window;
        MonoNode {
            cfg,
            fd,
            fd_scratch: Vec::new(),
            suspected: BTreeSet::new(),
            flow: FlowWindow::new(window),
            next_decide: 0,
            delivered: BTreeMap::new(),
            decided_log: WatermarkSet::default(),
            replayed: WatermarkSet::default(),
            decisions: BTreeMap::new(),
            decision_buffer: BTreeMap::new(),
            own_pending: BTreeMap::new(),
            pool: BTreeMap::new(),
            instances: BTreeMap::new(),
            last_progress: VTime::ZERO,
            gap_limiter: PeerRateLimiter::new(),
            highest_seen_instance: 0,
            last_heartbeat: None,
            recovered_votes: BTreeMap::new(),
            rejoining: false,
            rejoin_target: 0,
            last_join: VTime::ZERO,
            fold: SnapshotFold::new(None),
            snapshot: None,
            snapshot_bytes: Bytes::new(),
            download: SnapshotDownload::default(),
            offer_limiter: PeerRateLimiter::new(),
            restored: None,
            timeline: None,
            pending_reconfigs: BTreeMap::new(),
            recovered_reconfigs: Vec::new(),
        }
    }

    /// Attaches an application-state hook to the snapshot fold (call
    /// right after [`new`](Self::new)/[`resume`](Self::resume), before
    /// the node processes anything).
    pub fn with_app(mut self, app: Option<Box<dyn AppState>>) -> Self {
        self.fold = SnapshotFold::new(app);
        self
    }

    /// Creates a node for a process revived after a crash: replays the
    /// persisted vote records, decided watermark and log-compaction
    /// snapshot out of `stable` (CT-safety state, see [`VoteRecord`])
    /// and arms the rejoin announcement; everything else — the decided
    /// tail, delivery logs, the pool — is rebuilt from peers via
    /// [`MonoMsg::JoinRequest`] / [`MonoMsg::StateTransfer`] /
    /// [`MonoMsg::SnapshotTransfer`].
    pub fn resume(cfg: MonoConfig, fd: Box<dyn FailureDetector>, stable: &StableStore) -> Self {
        let mut node = MonoNode::new(cfg, fd);
        node.rejoining = true;
        for (&key, bytes) in stable {
            if key == STABLE_WATERMARK_KEY {
                if let Ok(w) = decode::<u64>(bytes.clone()) {
                    node.decided_log.advance_to(w);
                }
            } else if key == STABLE_SNAPSHOT_KEY {
                if let Ok(snap) = decode::<Snapshot>(bytes.clone()) {
                    node.restored = Some(snap);
                }
            } else if key == STABLE_CONFIG_KEY {
                let mut r = WireReader::new(bytes.clone());
                if let Ok(history) = decode_reconfigs(&mut r) {
                    node.recovered_reconfigs = history;
                }
            } else if key >> 56 == STABLE_VOTE_TAG >> 56 {
                if let Ok(rec) = decode::<VoteRecord>(bytes.clone()) {
                    node.recovered_votes.insert(key & !STABLE_VOTE_TAG, rec);
                }
            }
        }
        node
    }

    /// The timeline, built on first use (the voter count defaults to
    /// the cluster size; reconfig runs override it via
    /// [`MonoConfig::initial_members`]).
    fn timeline_mut(&mut self, n: usize) -> &mut ConfigTimeline {
        let voters = if self.cfg.initial_members == 0 {
            n
        } else {
            self.cfg.initial_members
        };
        let offset = self.cfg.reconfig_offset.max(1);
        self.timeline
            .get_or_insert_with(|| ConfigTimeline::new(voters, offset))
    }

    /// The member set governing `instance`, in rotation order.
    fn members_of(&self, instance: u64, n: usize) -> Vec<ProcessId> {
        match &self.timeline {
            Some(t) => t.members_at(instance),
            None => ProcessId::all(n).collect(),
        }
    }

    /// The quorum size at `instance`.
    fn majority_of(&self, instance: u64, n: usize) -> usize {
        match &self.timeline {
            Some(t) => t.majority_at(instance),
            None => n / 2 + 1,
        }
    }

    /// The coordinator of `round` at `instance` (rotation over the
    /// governing member set).
    fn coordinator_of(&self, instance: u64, round: u32, n: usize) -> ProcessId {
        match &self.timeline {
            Some(t) => t.coordinator_at(instance, round),
            None => Self::coordinator(round, n),
        }
    }

    /// True when the membership governing `instance` is fully determined
    /// by this node's contiguous replayed prefix (the config fence).
    fn config_certain(&self, instance: u64) -> bool {
        match &self.timeline {
            Some(t) => t.certain_at(instance, self.replayed.watermark()),
            None => true,
        }
    }

    /// True when this node may vote (ack / estimate / propose) at
    /// `instance`: its membership there must be certain, and it must be
    /// a member. Non-members keep running as learners — they record
    /// proposals, learn decisions and deliver, but never vote.
    fn can_vote(&self, instance: u64, me: ProcessId) -> bool {
        match &self.timeline {
            Some(t) => {
                t.certain_at(instance, self.replayed.watermark()) && t.is_member_at(instance, me)
            }
            None => true,
        }
    }

    /// Registers the reconfiguration decided at `decided_at`: updates
    /// the timeline, persists the full history atomically with the
    /// enclosing handler, reports the new version's stamp to the
    /// harness, and re-points the failure detector at the new member
    /// set (whether this node heartbeats at all follows its own
    /// membership).
    fn register_reconfig(&mut self, ctx: &mut NodeCtx<'_>, decided_at: u64, change: ConfigChange) {
        if cfg!(debug_assertions) && self.cfg.skip_config_fence {
            // Injected fault (reconfig oracle acceptance suite): the
            // decided change is ignored, so this node keeps voting with
            // the initial configuration's quorum and coordinator math
            // and never reports a config stamp.
            return;
        }
        let n = ctx.n();
        let Some(stamp) = self.timeline_mut(n).register(decided_at, change) else {
            return; // duplicate (replay / snapshot overlap)
        };
        let history = self.timeline.as_ref().expect("just touched").reconfigs();
        let mut w = WireWriter::new();
        encode_reconfigs(&history, &mut w);
        ctx.persist(STABLE_CONFIG_KEY, w.finish());
        ctx.bump("mono.reconfigs", 1);
        ctx.trace_span("mono", decided_at, "config_active", stamp.version);
        let now = ctx.now();
        self.fd
            .set_members(&stamp.members, now, &mut self.fd_scratch);
        ctx.bump("fd.member_updates", 1);
        ctx.note_config(stamp);
        self.process_fd_events(ctx);
    }

    /// Scans a freshly decided batch for reconfiguration commands, then
    /// registers every pending command the contiguous replayed prefix
    /// now covers — in decided-instance order, so configuration
    /// versions are numbered identically on every process regardless of
    /// the order pipelined decisions landed in.
    fn note_reconfigs(&mut self, ctx: &mut NodeCtx<'_>, instance: u64, value: &Batch) {
        for msg in value.msgs() {
            if let Some(change) = parse_reconfig(&msg.payload) {
                self.pending_reconfigs.entry(instance).or_insert(change);
            }
        }
        while let Some((&d, &change)) = self.pending_reconfigs.first_key_value() {
            if d >= self.replayed.watermark() {
                break; // not contiguous yet: an earlier decision is missing
            }
            self.pending_reconfigs.remove(&d);
            self.register_reconfig(ctx, d, change);
        }
    }

    fn is_decided(&self, instance: u64) -> bool {
        !self.decided_log.is_new(instance)
    }

    /// Per-instance state, created on first touch; a revived node seeds
    /// fresh instances from its recovered vote records so its locked
    /// `(round, estimate, ts)` is honoured.
    fn inst_entry(&mut self, instance: u64, now: VTime) -> &mut Inst {
        if !self.instances.contains_key(&instance) {
            let mut inst = Inst::new(now);
            if let Some(rec) = self.recovered_votes.get(&instance) {
                inst.round = rec.round;
                inst.estimate = Some(rec.value.clone());
                inst.ts = rec.ts;
            }
            self.instances.insert(instance, inst);
        }
        self.instances.get_mut(&instance).expect("just inserted")
    }

    /// Writes `instance`'s vote record to stable storage, atomically
    /// with the vote message of the enclosing handler.
    fn persist_vote(
        &self,
        ctx: &mut NodeCtx<'_>,
        instance: u64,
        round: u32,
        ts: u32,
        value: &Batch,
    ) {
        if cfg!(debug_assertions) && self.cfg.skip_vote_persist {
            // Injected fault (fuzz-minimizer acceptance suite): the
            // vote is acked but never reaches stable storage, so a
            // crash-restart forgets its lock.
            return;
        }
        let rec = VoteRecord {
            round,
            ts,
            value: value.clone(),
        };
        ctx.persist(vote_key(instance), encode(&rec));
    }

    fn msg_is_new(&self, id: MsgId) -> bool {
        self.delivered
            .get(&id.sender)
            .is_none_or(|log| log.is_new(id.seq))
    }

    fn coordinator(round: u32, n: usize) -> ProcessId {
        ProcessId((round as usize % n) as u16)
    }

    /// The coordinator new messages should be routed to right now.
    fn responsible_coordinator(&self, n: usize) -> ProcessId {
        if let Some((k, inst)) = self.instances.iter().next() {
            return self.coordinator_of(*k, inst.round, n);
        }
        let members = self.members_of(self.next_decide, n);
        // Bounded by one full rotation: a learner must not spin when
        // every member is transiently suspected.
        let mut r = 0;
        while r < members.len() && self.suspected.contains(&members[r % members.len()]) {
            r += 1;
        }
        members[r % members.len()]
    }

    /// True while a proposal is outstanding somewhere — an ack (and thus
    /// a piggyback opportunity) is imminent.
    fn in_flight(&self) -> bool {
        self.instances.values().any(|i| i.last_proposal.is_some())
    }

    fn pool_batch(&self) -> Batch {
        Batch::normalize(self.pool.values().cloned().collect())
    }

    /// First free consensus slot in the proposal window, or `None` while
    /// the window is full. A slot is busy when it is already decided
    /// (applied or buffered) or carries live instance state; the window
    /// spans `pipeline_depth` slots from the apply cursor.
    fn open_slot(&self) -> Option<u64> {
        let depth = self.cfg.pipeline_depth.max(1);
        if self.instances.len() >= depth {
            return None;
        }
        (self.next_decide..self.next_decide + depth as u64)
            .find(|k| !self.is_decided(*k) && !self.instances.contains_key(k))
    }

    /// The pool minus messages already claimed by a live proposal in an
    /// outstanding slot (the pipeline dedup: a message rides at most one
    /// in-flight batch at a time).
    fn fresh_pool_batch(&self) -> Batch {
        let mut claimed: BTreeSet<MsgId> = BTreeSet::new();
        for inst in self.instances.values() {
            if let Some((_, v)) = &inst.last_proposal {
                claimed.extend(v.msgs().iter().map(|m| m.id));
            }
        }
        if claimed.is_empty() {
            return self.pool_batch();
        }
        Batch::normalize(
            self.pool
                .values()
                .filter(|m| !claimed.contains(&m.id))
                .cloned()
                .collect(),
        )
    }

    fn send(&self, ctx: &mut NodeCtx<'_>, dst: ProcessId, kind: &'static str, msg: &MonoMsg) {
        ctx.send(dst, kind, encode(msg));
    }

    fn broadcast(&self, ctx: &mut NodeCtx<'_>, kind: &'static str, msg: &MonoMsg) {
        let bytes = encode(msg);
        for dst in ProcessId::all(ctx.n()) {
            if dst != ctx.pid() {
                ctx.send(dst, kind, bytes.clone());
            }
        }
    }

    /// Hands the pool over to `coord` in a standalone `Forward` (used
    /// when no ack is imminent).
    fn flush_pool_to(&mut self, ctx: &mut NodeCtx<'_>, coord: ProcessId) {
        if self.pool.is_empty() || coord == ctx.pid() {
            return;
        }
        let msgs: Vec<AppMsg> = self.pool.values().cloned().collect();
        self.pool.clear();
        ctx.bump("mono.forwards", 1);
        self.send(ctx, coord, "mono.forward", &MonoMsg::Forward { msgs });
    }

    /// Drains the pool for an ack/estimate piggyback (optimization O2).
    fn drain_pool(&mut self) -> Vec<AppMsg> {
        let msgs: Vec<AppMsg> = self.pool.values().cloned().collect();
        self.pool.clear();
        msgs
    }

    /// Bootstraps consensus slots while we hold fresh work and the
    /// proposal window has room (one slot per pass at the seed-faithful
    /// depth 1; up to `pipeline_depth` outstanding slots beyond it).
    fn try_start_instance(&mut self, ctx: &mut NodeCtx<'_>) {
        loop {
            let Some(k) = self.open_slot() else { return };
            if self.pool.is_empty() {
                return;
            }
            let n = ctx.n();
            let me = ctx.pid();
            let now = ctx.now();
            if !self.can_vote(k, me) {
                // Learner (or membership at `k` still behind the config
                // fence): never propose. Pending messages reach the
                // members via the forward/diffuse routing instead.
                ctx.bump("mono.config_fence_drops", 1);
                return;
            }
            let members = self.members_of(k, n);
            if members[0] != me {
                // Instance registered so round rotation can engage; if
                // its coordinator is already suspected, rotate now. No
                // batch is needed on this path — keep it cheap, it runs
                // on every non-coordinator message arrival.
                let inst = self.inst_entry(k, now);
                let round = inst.round;
                if self
                    .suspected
                    .contains(&members[round as usize % members.len()])
                {
                    self.advance_round(ctx, k);
                }
                return;
            }
            let fresh = self.fresh_pool_batch();
            if fresh.is_empty() {
                return; // everything pending already rides a live slot
            }
            let inst = self.inst_entry(k, now);
            if inst.round == 0 && inst.proposal_sent_round.is_none() {
                // A lock recovered from stable storage pins the proposal
                // value (re-proposing anything else in the same round
                // could split the tag-decide receivers); otherwise
                // propose the fresh (unclaimed) pool.
                let locked = inst.estimate.clone();
                let batch = locked.unwrap_or(fresh);
                let inst = self.instances.get_mut(&k).expect("created above");
                inst.estimate = Some(batch.clone());
                inst.ts = 1;
                inst.last_proposal = Some((0, batch.clone()));
                inst.proposal_sent_round = Some(0);
                inst.acks.insert(me);
                ctx.bump("mono.proposals", 1);
                if k > self.next_decide {
                    ctx.bump("mono.pipelined_proposals", 1);
                }
                ctx.trace_span("mono", k, "proposed", 0);
                self.persist_vote(ctx, k, 0, 1, &batch);
                self.broadcast(
                    ctx,
                    "mono.proposal",
                    &MonoMsg::Step {
                        decision: None,
                        proposal: Some(Proposal {
                            instance: k,
                            round: 0,
                            value: batch,
                        }),
                    },
                );
                self.check_decide(ctx, k);
                // Loop: with depth > 1 another slot may still be open.
            } else {
                // Coordinator, but a recovered later-round lock forbids
                // a round-0 proposal: the instance is registered
                // (above); rotate if its coordinator is suspected.
                let round = inst.round;
                if self
                    .suspected
                    .contains(&members[round as usize % members.len()])
                {
                    self.advance_round(ctx, k);
                }
                return;
            }
        }
    }

    /// Ensures the next instance exists (and is rotated away from a
    /// suspected coordinator) even on processes holding no messages.
    ///
    /// Without this, an idle process never joins the instance, and with
    /// n ≥ 4 the new coordinator cannot gather a majority of estimates —
    /// the modular stack gets the same guarantee from its periodic idle
    /// consensus (§3.3's `t`-timeout).
    fn kick_fresh_instance(&mut self, ctx: &mut NodeCtx<'_>) {
        if !self.instances.is_empty() || self.is_decided(self.next_decide) {
            return;
        }
        let n = ctx.n();
        if !self.can_vote(self.next_decide, ctx.pid()) {
            // A learner cannot contribute estimates; it waits for the
            // members' decisions instead of joining the instance.
            return;
        }
        let has_work = !self.pool.is_empty() || !self.own_pending.is_empty();
        let coord0_suspected = self
            .suspected
            .contains(&self.members_of(self.next_decide, n)[0]);
        if !(has_work || coord0_suspected) {
            return;
        }
        self.try_start_instance(ctx);
        if self.instances.is_empty() {
            // No pool (idle helper): create the placeholder directly so
            // we can contribute estimates to the round change.
            let now = ctx.now();
            self.instances
                .entry(self.next_decide)
                .or_insert_with(|| Inst::new(now));
        }
        let rotate = self.instances.iter().next().and_then(|(k, inst)| {
            let c = self.coordinator_of(*k, inst.round, n);
            self.suspected.contains(&c).then_some(*k)
        });
        if let Some(k) = rotate {
            self.advance_round(ctx, k);
        }
    }

    fn check_decide(&mut self, ctx: &mut NodeCtx<'_>, instance: u64) {
        let n = ctx.n();
        let majority = self.majority_of(instance, n);
        let Some(inst) = self.instances.get(&instance) else {
            return;
        };
        if inst.proposal_sent_round != Some(inst.round) || inst.acks.len() < majority {
            return;
        }
        let round = inst.round;
        let value = inst.estimate.clone().unwrap_or_default();
        self.conclude_as_coordinator(ctx, instance, round, value);
    }

    /// Coordinator decided `instance`: apply locally, then emit the
    /// decision — combined with the next proposal when O1 allows.
    fn conclude_as_coordinator(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        instance: u64,
        round: u32,
        value: Batch,
    ) {
        let n = ctx.n();
        let me = ctx.pid();
        let decision = Decision {
            instance,
            round,
            full: if round == 0 {
                None
            } else {
                Some(value.clone())
            },
        };
        self.record_decision(ctx, instance, value);
        // Apply without the auto-start of the next instance: the next
        // proposal must be assembled *here* so O1 can combine it with
        // the decision we are about to emit.
        self.apply_decisions_core(ctx);

        // Assemble the next proposal if the window has a free slot, we
        // have fresh work and still coordinate (and no recovered
        // later-round lock forbids a round-0 proposal). Cheap gates
        // first; the fresh (dedup) set is only built when they pass.
        let followup = self
            .open_slot()
            .filter(|k1| {
                !self.pool.is_empty()
                    && self.can_vote(*k1, me)
                    && self.members_of(*k1, n)[0] == me
                    && self.recovered_votes.get(k1).is_none_or(|r| r.round == 0)
            })
            .map(|k1| (k1, self.fresh_pool_batch()))
            .filter(|(_, fresh)| !fresh.is_empty());
        if let Some((k1, fresh)) = followup {
            let now = ctx.now();
            let locked = self.inst_entry(k1, now).estimate.clone();
            let batch = locked.unwrap_or(fresh);
            let inst = self.instances.get_mut(&k1).expect("created above");
            inst.estimate = Some(batch.clone());
            inst.ts = 1;
            inst.last_proposal = Some((0, batch.clone()));
            inst.proposal_sent_round = Some(0);
            inst.acks.insert(me);
            ctx.bump("mono.proposals", 1);
            ctx.trace_span("mono", k1, "proposed", 0);
            if k1 > self.next_decide {
                // The combined step overlaps an instance still in
                // flight below it: count it as pipeline engagement
                // like the standalone path does.
                ctx.bump("mono.pipelined_proposals", 1);
            }
            self.persist_vote(ctx, k1, 0, 1, &batch);
            let proposal = Proposal {
                instance: k1,
                round: 0,
                value: batch,
            };
            if self.cfg.opts.combine_decision_proposal {
                ctx.bump("mono.combined_steps", 1);
                self.broadcast(
                    ctx,
                    "mono.step",
                    &MonoMsg::Step {
                        decision: Some(decision),
                        proposal: Some(proposal),
                    },
                );
            } else {
                self.broadcast(
                    ctx,
                    "mono.decision",
                    &MonoMsg::Step {
                        decision: Some(decision),
                        proposal: None,
                    },
                );
                self.broadcast(
                    ctx,
                    "mono.proposal",
                    &MonoMsg::Step {
                        decision: None,
                        proposal: Some(proposal),
                    },
                );
            }
            self.check_decide(ctx, k1);
        } else {
            self.broadcast(
                ctx,
                "mono.decision",
                &MonoMsg::Step {
                    decision: Some(decision),
                    proposal: None,
                },
            );
        }
        // With a window deeper than one, the combined Step fills only
        // one slot — standalone proposals may still top the window up.
        if self.cfg.pipeline_depth > 1 {
            self.try_start_instance(ctx);
        }
    }

    /// Records a decision for in-order application. Keyed on the replay
    /// log, so a revived node re-buffers the decided prefix learned via
    /// state transfer even though its voting fence (`decided_log`)
    /// already covers it.
    fn record_decision(&mut self, ctx: &mut NodeCtx<'_>, instance: u64, value: Batch) {
        if !self.replayed.is_new(instance) {
            return;
        }
        ctx.trace_span("mono", instance, "decided", 0);
        self.replayed.complete(instance);
        let fence_before = self.decided_log.watermark();
        self.decided_log.complete(instance);
        self.persist_fence(ctx, fence_before);
        self.decisions.insert(instance, value.clone());
        self.fold.absorb(instance, &value);
        self.note_reconfigs(ctx, instance, &value);
        self.maybe_compact(ctx);
        if self.cfg.snapshot_interval == 0 {
            // No snapshots: bound the cache by blind eviction (the
            // pre-compaction behaviour — evicted prefixes become
            // unservable to joiners).
            while self.decisions.len() > self.cfg.decision_cache {
                self.decisions.pop_first();
            }
        }
        self.decision_buffer.insert(instance, value);
    }

    /// Persists the voting fence if it advanced past `fence_before` and
    /// garbage-collects the vote records the advance makes obsolete.
    fn persist_fence(&mut self, ctx: &mut NodeCtx<'_>, fence_before: u64) {
        let fence_after = self.decided_log.watermark();
        if fence_after > fence_before {
            ctx.persist(STABLE_WATERMARK_KEY, encode(&fence_after));
            for k in fence_before..fence_after {
                ctx.unpersist(vote_key(k));
            }
        }
    }

    /// Materializes a snapshot when the fold ran `snapshot_interval`
    /// instances past the previous one — or early, whenever the decision
    /// cache would otherwise have to evict an uncompacted decision
    /// (compaction replaces eviction, so every instance a joiner may
    /// miss is servable from either the log tail or the snapshot).
    fn maybe_compact(&mut self, ctx: &mut NodeCtx<'_>) {
        let interval = self.cfg.snapshot_interval;
        if interval == 0 {
            return;
        }
        let folded = self.fold.next_instance();
        let base = self.snapshot.as_ref().map_or(0, |s| s.last_included + 1);
        let overflow = self.decisions.len() > self.cfg.decision_cache;
        if folded < base + interval && !(overflow && folded > base) {
            return;
        }
        let Some(mut snap) = self.fold.snapshot() else {
            return;
        };
        if let Some(t) = &self.timeline {
            // The snapshot carries the config under which it was cut, so
            // a joiner installing it reconstructs the same timeline.
            snap.reconfigs = t.reconfigs();
        }
        ctx.bump("mono.snapshots", 1);
        ctx.trace_span("mono", snap.last_included, "snapshot_offer", 0);
        self.set_snapshot(ctx, snap, false);
    }

    /// Adopts `snap` as this node's serving snapshot: persists it,
    /// evicts the oldest *compacted* decisions down to the cache bound,
    /// and reports the stamp to the harness.
    fn set_snapshot(&mut self, ctx: &mut NodeCtx<'_>, snap: Snapshot, installed: bool) {
        let bytes = encode(&snap);
        // Durability is not free: materializing charges the encode
        // cost, installing charges decode + restore + re-encode for
        // serving — both proportional to the snapshot's encoded size
        // (zero under the default calibration; see docs/COST_MODEL.md).
        let cost = if installed {
            ctx.costs().snapshot_install_cost(bytes.len())
        } else {
            ctx.costs().snapshot_encode_cost(bytes.len())
        };
        ctx.charge_durability(cost);
        ctx.persist(STABLE_SNAPSHOT_KEY, bytes.clone());
        // Only snapshot-covered entries are evicted, and only while the
        // cache overflows — the recent log tail stays as deep as
        // `decision_cache` allows, so small gaps are still served as
        // cheap replies and the snapshot path covers the deep ones.
        while self.decisions.len() > self.cfg.decision_cache {
            match self.decisions.first_key_value() {
                Some((&k, _)) if k <= snap.last_included => {
                    self.decisions.pop_first();
                }
                _ => break, // uncompacted entries are never dropped
            }
        }
        ctx.note_snapshot(stamp_of(&snap, installed));
        self.snapshot_bytes = bytes;
        self.snapshot = Some(snap);
    }

    fn apply_decisions(&mut self, ctx: &mut NodeCtx<'_>) {
        self.apply_decisions_core(ctx);
        // With O2, messages that were waiting for an ack to ride must not
        // starve when the pipeline drains.
        if self.cfg.opts.piggyback_on_acks && !self.in_flight() && !self.pool.is_empty() {
            let coord = self.responsible_coordinator(ctx.n());
            if coord != ctx.pid() {
                self.flush_pool_to(ctx, coord);
            }
        }
        self.try_start_instance(ctx);
    }

    fn apply_decisions_core(&mut self, ctx: &mut NodeCtx<'_>) {
        let me = ctx.pid();
        while let Some(batch) = self.decision_buffer.remove(&self.next_decide) {
            let k = self.next_decide;
            let mut own_delivered = 0;
            // By reference: the same decided batch is shared (Arc) with
            // the decision cache and the snapshot fold — don't copy it
            // just to read ids and payload sizes.
            for m in batch.msgs() {
                if !self.msg_is_new(m.id) {
                    continue;
                }
                self.delivered
                    .entry(m.id.sender)
                    .or_default()
                    .complete(m.id.seq);
                self.pool.remove(&m.id);
                if m.id.sender == me {
                    self.own_pending.remove(&m.id);
                    own_delivered += 1;
                }
                ctx.deliver(m.id, m.payload.len() as u32);
                ctx.bump("abcast.delivered", 1);
            }
            ctx.bump("consensus.decided", 1);
            ctx.trace_span("mono", k, "applied", batch.msgs().len() as u64);
            self.instances.remove(&k);
            self.next_decide += 1;
            self.last_progress = ctx.now();
            if self.flow.release(own_delivered) {
                ctx.app_ready();
            }
        }
    }

    /// Handles a decision. `followup` controls whether pipeline
    /// continuation (pool flush / next-instance start) runs here: it must
    /// be suppressed while the proposal half of a combined Step is still
    /// unprocessed, otherwise the transiently-empty pipeline triggers a
    /// spurious standalone `Forward` on every instance.
    fn handle_decision(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        from: ProcessId,
        dec: Decision,
        followup: bool,
    ) {
        // Keyed on the replay log (not the voting fence) so a revived
        // node still absorbs decisions for instances it voted in before
        // crashing.
        if !self.replayed.is_new(dec.instance) {
            return;
        }
        // O3 disabled: emulate the reliable-broadcast relay pattern for
        // decisions (first receipt at a relay re-broadcasts).
        if !self.cfg.opts.implicit_decision_acks {
            let n = ctx.n();
            let origin = self.coordinator_of(dec.instance, dec.round, n);
            if fortika_relay_set(origin, n).any(|p| p == ctx.pid()) {
                ctx.bump("mono.decision_relays", 1);
                self.broadcast(
                    ctx,
                    "mono.decision_relay",
                    &MonoMsg::Step {
                        decision: Some(dec.clone()),
                        proposal: None,
                    },
                );
            }
        }
        match dec.full {
            Some(value) => {
                self.highest_seen_instance = self.highest_seen_instance.max(dec.instance);
                self.record_decision(ctx, dec.instance, value);
                if followup {
                    self.apply_decisions(ctx);
                } else {
                    self.apply_decisions_core(ctx);
                }
                // Chained catch-up: a recovered decision that still
                // leaves us behind pulls the next batch promptly, so a
                // healed process recovers at near round-trip pace
                // instead of one instance per progress-timeout. A short
                // per-peer rate limit keeps the batch's several replies
                // from each re-requesting the same range.
                let now = ctx.now();
                if self.highest_seen_instance > self.expected_frontier()
                    && !self.is_decided(self.next_decide)
                    && self.gap_limiter.allow(from, now, VDur::millis(5))
                {
                    let hi = self.highest_seen_instance;
                    self.request_gap_batch(ctx, from, hi);
                }
            }
            None => {
                let now = ctx.now();
                let inst = self.inst_entry(dec.instance, now);
                match &inst.last_proposal {
                    Some((r, v)) if *r == dec.round => {
                        let value = v.clone();
                        self.record_decision(ctx, dec.instance, value);
                        if followup {
                            self.apply_decisions(ctx);
                        } else {
                            self.apply_decisions_core(ctx);
                        }
                    }
                    _ => {
                        inst.pending_tag = Some(dec.round);
                        ctx.bump("mono.tag_misses", 1);
                        let req = MonoMsg::DecisionRequest {
                            instance: dec.instance,
                        };
                        self.send(ctx, from, "mono.decision_request", &req);
                    }
                }
            }
        }
    }

    /// Highest instance that can legitimately be in flight while our
    /// apply cursor sits at `next_decide`: anything seen beyond it means
    /// decisions were missed (the α = 1 frontier is `next_decide`
    /// itself).
    fn expected_frontier(&self) -> u64 {
        self.next_decide + self.cfg.pipeline_depth.max(1) as u64 - 1
    }

    fn maybe_request_gap(&mut self, ctx: &mut NodeCtx<'_>, from: ProcessId, seen_instance: u64) {
        self.highest_seen_instance = self.highest_seen_instance.max(seen_instance);
        if seen_instance <= self.expected_frontier() || self.is_decided(self.next_decide) {
            return;
        }
        // Rate limited per peer: throttling catch-up toward one lagging
        // peer must not suppress catch-up toward another.
        let now = ctx.now();
        if !self.gap_limiter.allow(from, now, VDur::millis(50)) {
            return;
        }
        self.request_gap_batch(ctx, from, seen_instance);
    }

    /// Pulls a bounded batch of missing decisions starting at
    /// `next_decide` from `from`.
    fn request_gap_batch(&mut self, ctx: &mut NodeCtx<'_>, from: ProcessId, seen_instance: u64) {
        const MAX_BATCH: u64 = 8;
        let hi = seen_instance.min(self.next_decide + MAX_BATCH);
        for instance in self.next_decide..hi {
            if !self.is_decided(instance) {
                ctx.bump("mono.gap_requests", 1);
                ctx.trace_span("mono", instance, "gap_pull", u64::from(from.0));
                let req = MonoMsg::DecisionRequest { instance };
                self.send(ctx, from, "mono.decision_request", &req);
            }
        }
    }

    fn handle_proposal(&mut self, ctx: &mut NodeCtx<'_>, from: ProcessId, p: Proposal) {
        // The sender check only applies once the membership at this
        // instance is certain: behind the config fence the rotation is
        // still provisional, and rejecting would drop a legitimate
        // proposal from a configuration we have not learned yet.
        let certain = self.config_certain(p.instance);
        if certain && self.coordinator_of(p.instance, p.round, ctx.n()) != from {
            ctx.bump("mono.bogus_proposals", 1);
            return; // only the round's coordinator may propose
        }
        self.maybe_request_gap(ctx, from, p.instance);
        if self.is_decided(p.instance) {
            if let Some(v) = self.decisions.get(&p.instance) {
                let msg = decision_full(p.instance, p.round, v.clone());
                self.send(ctx, from, "mono.decision_full", &msg);
            }
            return;
        }
        let votable = certain && self.can_vote(p.instance, ctx.pid());
        let now = ctx.now();
        let inst = self.inst_entry(p.instance, now);
        if p.round < inst.round {
            return;
        }
        if p.round > inst.round {
            inst.round = p.round;
            inst.round_entered = now;
            inst.acks.clear();
        }
        // Even a non-voting learner records the proposal so a later
        // tag-only decision resolves locally.
        inst.last_proposal = Some((p.round, p.value.clone()));
        let pending_tag_hit = inst.pending_tag == Some(p.round);
        if votable {
            inst.estimate = Some(p.value.clone());
            inst.ts = p.round + 1;
            // The vote is made durable atomically with the ack so a
            // future incarnation of this process honours the lock.
            self.persist_vote(ctx, p.instance, p.round, p.round + 1, &p.value);
            ctx.trace_span("mono", p.instance, "voted", u64::from(p.round));
            let msgs = if self.cfg.opts.piggyback_on_acks {
                self.drain_pool()
            } else {
                Vec::new()
            };
            let ack = MonoMsg::AckDiff {
                instance: p.instance,
                round: p.round,
                msgs,
            };
            self.send(ctx, from, "mono.ack", &ack);
        } else {
            ctx.bump("mono.config_fence_drops", 1);
        }
        if pending_tag_hit {
            self.record_decision(ctx, p.instance, p.value);
            self.apply_decisions(ctx);
        }
    }

    fn handle_ack(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        from: ProcessId,
        instance: u64,
        round: u32,
        msgs: Vec<AppMsg>,
    ) {
        for m in msgs {
            if self.msg_is_new(m.id) {
                self.pool.insert(m.id, m);
            }
        }
        if self.is_decided(instance) {
            self.try_start_instance(ctx);
            return;
        }
        let Some(inst) = self.instances.get_mut(&instance) else {
            self.try_start_instance(ctx);
            return;
        };
        if inst.round != round || inst.proposal_sent_round != Some(round) {
            return;
        }
        inst.acks.insert(from);
        self.check_decide(ctx, instance);
    }

    fn handle_forward(&mut self, ctx: &mut NodeCtx<'_>, msgs: Vec<AppMsg>) {
        for m in msgs {
            if self.msg_is_new(m.id) {
                self.pool.insert(m.id, m);
            }
        }
        self.try_start_instance(ctx);
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_estimate(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        from: ProcessId,
        instance: u64,
        round: u32,
        ts: u32,
        value: Batch,
        msgs: Vec<AppMsg>,
    ) {
        for m in msgs {
            if self.msg_is_new(m.id) {
                self.pool.insert(m.id, m);
            }
        }
        self.maybe_request_gap(ctx, from, instance);
        if self.is_decided(instance) {
            if let Some(v) = self.decisions.get(&instance) {
                let msg = decision_full(instance, round, v.clone());
                self.send(ctx, from, "mono.decision_full", &msg);
            }
            self.try_start_instance(ctx);
            return;
        }
        let n = ctx.n();
        let me = ctx.pid();
        if self.coordinator_of(instance, round, n) != me {
            return;
        }
        let now = ctx.now();
        let inst = self.inst_entry(instance, now);
        if round < inst.round {
            return;
        }
        let keep = match inst.estimates.get(&from) {
            Some((r, _, _)) => *r < round,
            None => true,
        };
        if keep {
            inst.estimates.insert(from, (round, value, ts));
        }
        if round > inst.round {
            inst.round = round;
            inst.round_entered = now;
            inst.acks.clear();
        }
        // Our own estimate joins the collection (initial = pool batch,
        // built only when actually needed).
        if inst.round == round && !inst.estimates.contains_key(&me) {
            let locked = inst.estimate.clone();
            let own_ts = inst.ts;
            let own = locked.unwrap_or_else(|| self.pool_batch());
            let inst = self.instances.get_mut(&instance).expect("created above");
            inst.estimates.insert(me, (round, own, own_ts));
        }
        self.try_propose_from_estimates(ctx, instance);
    }

    fn try_propose_from_estimates(&mut self, ctx: &mut NodeCtx<'_>, instance: u64) {
        let n = ctx.n();
        let me = ctx.pid();
        if !self.can_vote(instance, me) {
            return;
        }
        let members = self.members_of(instance, n);
        let majority = members.len() / 2 + 1;
        let Some(inst) = self.instances.get_mut(&instance) else {
            return;
        };
        let round = inst.round;
        if members[round as usize % members.len()] != me
            || round == 0
            || inst.proposal_sent_round == Some(round)
        {
            return;
        }
        let mut candidates: Vec<(&ProcessId, &(u32, Batch, u32))> = inst
            .estimates
            .iter()
            .filter(|(_, (r, _, _))| *r == round)
            .collect();
        if candidates.len() < majority {
            return;
        }
        candidates.sort_by_key(|(pid, (_, _, ts))| (std::cmp::Reverse(*ts), **pid));
        // A locked estimate (ts > 0) must be adopted verbatim — CT
        // safety. When *nothing* is locked, no earlier round can have
        // decided (any ack quorum would surface here with ts ≥ 1 by
        // quorum intersection), so any initial value is safe: propose
        // the union of the candidates' batches. Picking one candidate
        // by pid used to let an empty estimate beat a tie-losing
        // process's pending messages on every round change, starving
        // them forever.
        let value = if candidates[0].1 .2 == 0 {
            Batch::normalize(
                candidates
                    .iter()
                    .flat_map(|(_, (_, b, _))| b.msgs().to_vec())
                    .collect(),
            )
        } else {
            candidates[0].1 .1.clone()
        };
        inst.estimate = Some(value.clone());
        inst.ts = round + 1;
        inst.last_proposal = Some((round, value.clone()));
        inst.proposal_sent_round = Some(round);
        inst.acks.clear();
        inst.acks.insert(me);
        ctx.bump("mono.proposals", 1);
        ctx.trace_span("mono", instance, "proposed", u64::from(round));
        // Coordinator self-ack: durable before the proposal leaves.
        self.persist_vote(ctx, instance, round, round + 1, &value);
        self.broadcast(
            ctx,
            "mono.proposal",
            &MonoMsg::Step {
                decision: None,
                proposal: Some(Proposal {
                    instance,
                    round,
                    value,
                }),
            },
        );
        self.check_decide(ctx, instance);
    }

    fn advance_round(&mut self, ctx: &mut NodeCtx<'_>, instance: u64) {
        let n = ctx.n();
        let me = ctx.pid();
        let now = ctx.now();
        let members = self.members_of(instance, n);
        let coord_of = |round: u32| members[round as usize % members.len()];
        let votable = self.can_vote(instance, me);
        let Some(inst) = self.instances.get_mut(&instance) else {
            return;
        };
        let mut round = inst.round + 1;
        // The skip is bounded by one full rotation: past it the same
        // coordinators repeat, and a learner (never its own coordinator)
        // must not spin when every member is transiently suspected.
        let mut skips = 0;
        while coord_of(round) != me
            && self.suspected.contains(&coord_of(round))
            && skips < members.len()
        {
            round += 1;
            skips += 1;
        }
        inst.round = round;
        inst.round_entered = now;
        inst.acks.clear();
        ctx.bump("mono.round_changes", 1);
        ctx.trace_span("mono", instance, "round_change", u64::from(round));
        if !votable {
            // Learners (and processes whose membership at `instance` is
            // still uncertain) track rounds but never vote: no estimate
            // goes out, no proposal is made.
            ctx.bump("mono.config_fence_drops", 1);
            return;
        }
        let coord = coord_of(round);
        if coord == me {
            let estimate = inst
                .estimate
                .clone()
                .unwrap_or_else(|| Batch::normalize(self.pool.values().cloned().collect()));
            let ts = inst.ts;
            inst.estimates.insert(me, (round, estimate, ts));
            self.try_propose_from_estimates(ctx, instance);
            // Still short of a majority: solicit estimates instead of
            // waiting for idle processes' periodic kicks.
            let short = self
                .instances
                .get(&instance)
                .is_some_and(|i| i.proposal_sent_round != Some(round));
            if short {
                ctx.bump("mono.estimate_requests", 1);
                self.broadcast(
                    ctx,
                    "mono.estimate_request",
                    &MonoMsg::EstimateRequest { instance, round },
                );
            }
        } else {
            self.send_estimate(ctx, instance, round);
        }
    }

    /// Sends this process's estimate for `(instance, round)` to the
    /// round's coordinator, piggybacking undelivered own messages — the
    /// re-routing of §4.2 ("if the coordinator changes, m is again
    /// piggybacked on the estimate sent to the new coordinator").
    fn send_estimate(&mut self, ctx: &mut NodeCtx<'_>, instance: u64, round: u32) {
        let n = ctx.n();
        let coord = self.coordinator_of(instance, round, n);
        if coord == ctx.pid() {
            return;
        }
        if !self.can_vote(instance, ctx.pid()) {
            ctx.bump("mono.config_fence_drops", 1);
            return;
        }
        let Some(inst) = self.instances.get(&instance) else {
            return;
        };
        let estimate = inst
            .estimate
            .clone()
            .unwrap_or_else(|| Batch::normalize(self.pool.values().cloned().collect()));
        let ts = inst.ts;
        let msgs = if self.cfg.opts.piggyback_on_acks {
            for m in self.own_pending.values() {
                self.pool.remove(&m.id);
            }
            self.own_pending.values().cloned().collect()
        } else {
            Vec::new()
        };
        let msg = MonoMsg::Estimate {
            instance,
            round,
            ts,
            value: estimate,
            msgs,
        };
        self.send(ctx, coord, "mono.estimate", &msg);
    }

    fn process_fd_events(&mut self, ctx: &mut NodeCtx<'_>) {
        let events = std::mem::take(&mut self.fd_scratch);
        for ev in &events {
            match ev {
                FdEvent::Suspect(p) => {
                    ctx.bump("fd.suspicions", 1);
                    self.suspected.insert(*p);
                    // Own messages handed to the suspect may be lost with
                    // it: make them proposable again (they are re-routed
                    // on the next estimate/ack/forward).
                    for m in self.own_pending.values() {
                        self.pool.entry(m.id).or_insert_with(|| m.clone());
                    }
                    let n = ctx.n();
                    let affected: Vec<u64> = self
                        .instances
                        .iter()
                        .filter(|(k, inst)| self.coordinator_of(**k, inst.round, n) == *p)
                        .map(|(k, _)| *k)
                        .collect();
                    for k in affected {
                        self.advance_round(ctx, k);
                    }
                    // Join/advance the fresh instance so the new
                    // coordinator can reach an estimate majority even if
                    // we personally hold no messages.
                    self.kick_fresh_instance(ctx);
                }
                FdEvent::Restore(p) => {
                    ctx.bump("fd.restores", 1);
                    self.suspected.remove(p);
                }
            }
        }
        self.fd_scratch = events;
        self.fd_scratch.clear();
    }

    /// Broadcasts the rejoin announcement: "my applied prefix ends at
    /// `watermark`" (a freshly revived node says instance 0).
    fn announce_join(&mut self, ctx: &mut NodeCtx<'_>) {
        self.last_join = ctx.now();
        ctx.bump("mono.join_requests", 1);
        let wm = self.replayed.watermark();
        self.broadcast(
            ctx,
            "mono.join_request",
            &MonoMsg::JoinRequest { watermark: wm },
        );
    }

    /// Serves a peer's rejoin announcement. A gap the decision log
    /// still covers is served as a bulk [`MonoMsg::StateTransfer`] of
    /// decided values; a gap whose head was compacted away falls back
    /// to a chunked [`MonoMsg::SnapshotTransfer`] — the log there is
    /// gone, the snapshot replaces it.
    ///
    /// With snapshotting disabled (`snapshot_interval == 0`) the old
    /// limit applies: once a run outgrows `decision_cache`, the evicted
    /// prefix is unservable and a joiner advertising instance 0 stalls
    /// (`mono.join_unservable` counts this).
    fn serve_join(&mut self, ctx: &mut NodeCtx<'_>, from: ProcessId, watermark: u64) {
        let frontier = self.replayed.watermark();
        if frontier <= watermark {
            return;
        }
        // The cheap path first: while the decision log still covers the
        // head of the gap, a bulk value transfer beats re-shipping the
        // whole snapshot (the log tail stays `decision_cache` deep).
        let mut values = Vec::new();
        for instance in watermark..frontier.min(watermark + MAX_TRANSFER) {
            match self.decisions.get(&instance) {
                Some(v) => values.push(v.clone()),
                None => break, // evicted: cannot serve a gapless prefix
            }
        }
        if !values.is_empty() {
            ctx.bump("mono.state_transfers", 1);
            let msg = MonoMsg::StateTransfer {
                from: watermark,
                values,
                frontier,
            };
            self.send(ctx, from, "mono.state_transfer", &msg);
            return;
        }
        if self
            .snapshot
            .as_ref()
            .is_some_and(|s| watermark <= s.last_included)
        {
            // The gap begins inside the compacted prefix: ship the
            // snapshot (first chunk; the joiner pulls the rest at
            // round-trip pace), then it rejoins the log at
            // `last_included + 1`.
            self.serve_snapshot_chunk(ctx, from, 0);
            return;
        }
        // Not silent: a joiner below our eviction horizon cannot be
        // helped by this node (only possible with snapshots disabled,
        // or for a gap above the snapshot with a hole in the local log).
        ctx.bump("mono.join_unservable", 1);
    }

    /// Sends one chunk of the serving snapshot to `from`.
    fn serve_snapshot_chunk(&mut self, ctx: &mut NodeCtx<'_>, from: ProcessId, offset: u32) {
        let Some(snap) = &self.snapshot else {
            return;
        };
        let Some((total, chunk)) = chunk_of(&self.snapshot_bytes, offset) else {
            return;
        };
        ctx.bump("mono.snapshot_transfers", 1);
        let msg = MonoMsg::SnapshotTransfer {
            last_included: snap.last_included,
            digest: snap.digest,
            total,
            offset,
            chunk,
            frontier: self.replayed.watermark(),
        };
        self.send(ctx, from, "mono.snapshot_transfer", &msg);
    }

    /// Receiver side: absorbs one snapshot chunk through the shared
    /// download state machine, pulling the next at round-trip pace; a
    /// completed download is installed and chased with a `JoinRequest`
    /// for the remaining log tail.
    #[allow(clippy::too_many_arguments)]
    fn absorb_snapshot_chunk(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        from: ProcessId,
        last_included: u64,
        digest: u64,
        total: u32,
        offset: u32,
        chunk: Bytes,
        frontier: u64,
    ) {
        self.rejoin_target = self.rejoin_target.max(frontier);
        self.highest_seen_instance = self.highest_seen_instance.max(frontier);
        let now = ctx.now();
        let already_past = self.fold.next_instance() > last_included;
        match self.download.absorb(
            from,
            last_included,
            digest,
            total,
            offset,
            &chunk,
            now,
            JOIN_RETRY,
            already_past,
        ) {
            ChunkOutcome::Pull(offset) => {
                ctx.bump("mono.snapshot_pulls", 1);
                let msg = MonoMsg::SnapshotPull {
                    last_included,
                    offset,
                };
                self.send(ctx, from, "mono.snapshot_pull", &msg);
            }
            ChunkOutcome::Complete(snap) => {
                self.install_snapshot(ctx, *snap);
                // Chained tail catch-up from the serving peer.
                self.last_join = now;
                let wm = self.replayed.watermark();
                self.send(
                    ctx,
                    from,
                    "mono.join_request",
                    &MonoMsg::JoinRequest { watermark: wm },
                );
            }
            ChunkOutcome::Ignored => {}
            ChunkOutcome::Corrupt => ctx.bump("mono.snapshot_garbage", 1),
        }
    }

    /// Installs a snapshot: fast-forwards the fold, delivery dedup,
    /// apply cursor and voting fence to `last_included + 1`, drops state
    /// the snapshot made moot, and adopts it for serving.
    fn install_snapshot(&mut self, ctx: &mut NodeCtx<'_>, snap: Snapshot) {
        if !self.fold.install(&snap) {
            return; // does not extend past what we already applied
        }
        let next = snap.last_included + 1;
        self.replayed.advance_to(next);
        let fence_before = self.decided_log.watermark();
        self.decided_log.advance_to(next);
        self.persist_fence(ctx, fence_before);
        if next > self.next_decide {
            self.next_decide = next;
        }
        // Seed duplicate suppression with the compacted prefix's
        // delivered sets: compacted messages must never re-deliver.
        for s in &snap.delivered {
            let log = self.delivered.entry(s.sender).or_default();
            log.advance_to(s.watermark);
            for &seq in &s.above {
                log.complete(seq);
            }
        }
        self.decision_buffer = self.decision_buffer.split_off(&next);
        self.instances = self.instances.split_off(&next);
        self.recovered_votes = self.recovered_votes.split_off(&next);
        // Adopt the configuration history the snapshot was cut under:
        // the compacted prefix's reconfig decisions are registered from
        // the carried history, and pending commands it covers are moot.
        self.pending_reconfigs = self.pending_reconfigs.split_off(&next);
        for (d, change) in snap.reconfigs.clone() {
            self.register_reconfig(ctx, d, change);
        }
        self.highest_seen_instance = self.highest_seen_instance.max(snap.last_included);
        // Messages the snapshot already delivered leave the pool; own
        // messages among them release their flow-control slots.
        let fold = &self.fold;
        self.pool.retain(|id, _| !fold.is_delivered(*id));
        let own_before = self.own_pending.len();
        self.own_pending.retain(|id, _| !fold.is_delivered(*id));
        if self.flow.release(own_before - self.own_pending.len()) {
            ctx.app_ready();
        }
        ctx.bump("mono.snapshots_installed", 1);
        ctx.trace_span("mono", snap.last_included, "snapshot_install", 0);
        self.set_snapshot(ctx, snap, true);
        // Buffered decisions past the snapshot may be contiguous now.
        self.apply_decisions(ctx);
    }

    /// Absorbs a bulk state transfer, then keeps pulling from the same
    /// peer at round-trip pace while still behind its frontier.
    fn absorb_transfer(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        from: ProcessId,
        first: u64,
        values: Vec<Batch>,
        frontier: u64,
    ) {
        self.rejoin_target = self.rejoin_target.max(frontier);
        self.highest_seen_instance = self.highest_seen_instance.max(frontier);
        for (i, value) in values.into_iter().enumerate() {
            self.record_decision(ctx, first + i as u64, value);
        }
        self.apply_decisions(ctx);
        let mine = self.replayed.watermark();
        if mine < self.rejoin_target {
            // Chained catch-up with a short per-peer rate limit.
            let now = ctx.now();
            if self.gap_limiter.allow(from, now, VDur::millis(5)) {
                self.last_join = now;
                self.send(
                    ctx,
                    from,
                    "mono.join_request",
                    &MonoMsg::JoinRequest { watermark: mine },
                );
            }
        } else if self.rejoining && mine >= self.decided_log.watermark() {
            // Replay reached both the advertised frontier and our own
            // pre-crash decided fence: rejoin complete.
            self.rejoining = false;
            ctx.bump("mono.rejoins_completed", 1);
        }
    }

    fn sweep(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now();
        // Rejoin liveness: re-announce until the applied prefix covers
        // both the persisted decided fence and every frontier a state
        // transfer advertised (replies can be lost to the same faults
        // that caused the crash).
        if self.rejoining {
            let caught_up = self.replayed.watermark() >= self.decided_log.watermark()
                && self.replayed.watermark() >= self.rejoin_target;
            // A healthy snapshot download is progress too: do not spam
            // re-announcements (and competing offers) while it runs.
            let downloading = self.download.in_progress(now, JOIN_RETRY);
            if caught_up {
                self.rejoining = false;
            } else if now.since(self.last_join) >= JOIN_RETRY && !downloading {
                self.announce_join(ctx);
            }
        }
        let stuck: Vec<u64> = self
            .instances
            .iter()
            .filter(|(_, inst)| now.since(inst.round_entered) > self.cfg.progress_timeout)
            .map(|(k, _)| *k)
            .collect();
        for k in stuck {
            let inst = self.instances.get_mut(&k).expect("instance exists");
            if inst.pending_tag.is_some() {
                inst.round_entered = now;
                ctx.bump("mono.request_retries", 1);
                let req = MonoMsg::DecisionRequest { instance: k };
                self.broadcast(ctx, "mono.decision_request", &req);
            } else {
                ctx.bump("mono.progress_rotations", 1);
                self.advance_round(ctx, k);
            }
        }
        // Idle kick: periodic backstop for the same fresh-instance
        // bootstrap (covers suspicions that raced with message arrival).
        if now.since(self.last_progress) > self.cfg.idle_timeout {
            self.kick_fresh_instance(ctx);
        }
    }
}

/// Ring-successor relay set (mirrors `fortika-rbcast`'s scheme without
/// depending on the modular protocol crate).
fn fortika_relay_set(origin: ProcessId, n: usize) -> impl Iterator<Item = ProcessId> {
    let count = (n - 1) / 2;
    (1..=count as u16).map(move |i| ProcessId((origin.0 + i) % n as u16))
}

impl Node for MonoNode {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.timeline_mut(ctx.n());
        if self.rejoining {
            // Revived process: restore the persisted snapshot first (the
            // compacted prefix needs no replay), then advertise the
            // applied frontier — instance 0 without a snapshot — and let
            // peers stream the missing prefix back.
            if let Some(snap) = self.restored.take() {
                self.install_snapshot(ctx, snap);
            }
            // Re-register the persisted configuration history (it may
            // extend past the restored snapshot's carried prefix;
            // duplicates are no-ops).
            let recovered = std::mem::take(&mut self.recovered_reconfigs);
            for (d, change) in recovered {
                self.register_reconfig(ctx, d, change);
            }
            self.announce_join(ctx);
        }
        if let Some(interval) = self.fd.tick_interval() {
            ctx.set_timer(interval, TAG_FD);
        }
        ctx.set_timer(self.cfg.sweep_interval, TAG_SWEEP);
    }

    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, from: ProcessId, bytes: Bytes) {
        let msg = match decode::<MonoMsg>(bytes) {
            Ok(m) => m,
            Err(_) => {
                ctx.bump("mono.garbage", 1);
                return;
            }
        };
        match msg {
            MonoMsg::Step { decision, proposal } => {
                let combined = proposal.is_some();
                if let Some(d) = decision {
                    self.handle_decision(ctx, from, d, !combined);
                }
                if let Some(p) = proposal {
                    self.handle_proposal(ctx, from, p);
                }
            }
            MonoMsg::AckDiff {
                instance,
                round,
                msgs,
            } => self.handle_ack(ctx, from, instance, round, msgs),
            MonoMsg::Forward { msgs } => self.handle_forward(ctx, msgs),
            MonoMsg::Diffuse { msg } => {
                if self.msg_is_new(msg.id) {
                    self.pool.insert(msg.id, msg);
                }
                self.try_start_instance(ctx);
            }
            MonoMsg::Estimate {
                instance,
                round,
                ts,
                value,
                msgs,
            } => self.handle_estimate(ctx, from, instance, round, ts, value, msgs),
            MonoMsg::DecisionRequest { instance } => {
                if let Some(v) = self.decisions.get(&instance) {
                    let msg = decision_full(instance, 0, v.clone());
                    self.send(ctx, from, "mono.decision_full", &msg);
                } else if self
                    .snapshot
                    .as_ref()
                    .is_some_and(|s| instance <= s.last_included)
                {
                    // The requested decision was compacted away: offer
                    // the snapshot so a *live* lagging process (a healed
                    // partition minority — not just a restarted joiner)
                    // can leap past the compaction horizon instead of
                    // stalling. Rate-limited: one offer answers a whole
                    // gap-request batch.
                    let now = ctx.now();
                    if self.offer_limiter.allow(from, now, OFFER_SPACING) {
                        self.serve_snapshot_chunk(ctx, from, 0);
                    }
                }
            }
            MonoMsg::EstimateRequest { instance, round } => {
                // Sanity: only the round's coordinator may solicit (the
                // check needs the membership at `instance` to be certain,
                // like the proposal-sender check).
                if self.config_certain(instance)
                    && self.coordinator_of(instance, round, ctx.n()) != from
                {
                    ctx.bump("mono.bogus_requests", 1);
                    return;
                }
                if self.is_decided(instance) {
                    if let Some(v) = self.decisions.get(&instance) {
                        let msg = decision_full(instance, round, v.clone());
                        self.send(ctx, from, "mono.decision_full", &msg);
                    }
                    return;
                }
                // Join the solicited round (rounds only move forward —
                // same safety as receiving a higher-round proposal).
                let now = ctx.now();
                let inst = self.inst_entry(instance, now);
                if round > inst.round {
                    inst.round = round;
                    inst.round_entered = now;
                    inst.acks.clear();
                }
                if round == inst.round {
                    self.send_estimate(ctx, instance, round);
                }
            }
            MonoMsg::Heartbeat => {
                self.fd.on_heartbeat(from, ctx.now(), &mut self.fd_scratch);
                self.process_fd_events(ctx);
            }
            MonoMsg::JoinRequest { watermark } => {
                self.serve_join(ctx, from, watermark);
            }
            MonoMsg::StateTransfer {
                from: first,
                values,
                frontier,
            } => {
                self.absorb_transfer(ctx, from, first, values, frontier);
            }
            MonoMsg::SnapshotTransfer {
                last_included,
                digest,
                total,
                offset,
                chunk,
                frontier,
            } => {
                self.absorb_snapshot_chunk(
                    ctx,
                    from,
                    last_included,
                    digest,
                    total,
                    offset,
                    chunk,
                    frontier,
                );
            }
            MonoMsg::SnapshotPull {
                last_included,
                offset,
            } => {
                match &self.snapshot {
                    // Exact match: serve the requested chunk.
                    Some(snap) if snap.last_included == last_included => {
                        self.serve_snapshot_chunk(ctx, from, offset);
                    }
                    // We compacted further since the joiner started; a
                    // fresh offer supersedes the stale download.
                    Some(snap) if snap.last_included > last_included => {
                        self.serve_snapshot_chunk(ctx, from, 0);
                    }
                    _ => {}
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _timer: TimerId, tag: u64) {
        match tag {
            TAG_FD => {
                // Heartbeats follow the detector's heartbeat cadence,
                // which may be coarser than its polling tick (chaos
                // overlays tick fast to fire suspicion windows promptly).
                if self.fd.sends_heartbeats() {
                    let now = ctx.now();
                    let due = match (self.last_heartbeat, self.fd.heartbeat_interval()) {
                        (Some(last), Some(interval)) => now.since(last) >= interval,
                        _ => true,
                    };
                    if due {
                        self.last_heartbeat = Some(now);
                        let hb = encode(&MonoMsg::Heartbeat);
                        for dst in ProcessId::all(ctx.n()) {
                            if dst != ctx.pid() {
                                ctx.send(dst, "fd.heartbeat", hb.clone());
                            }
                        }
                    }
                }
                self.fd.tick(ctx.now(), &mut self.fd_scratch);
                self.process_fd_events(ctx);
                if let Some(interval) = self.fd.tick_interval() {
                    ctx.set_timer(interval, TAG_FD);
                }
            }
            TAG_SWEEP => {
                self.sweep(ctx);
                ctx.set_timer(self.cfg.sweep_interval, TAG_SWEEP);
            }
            _ => {}
        }
    }

    fn on_request(&mut self, ctx: &mut NodeCtx<'_>, req: AppRequest) -> Admission {
        let AppRequest::Abcast(m) = req;
        if !self.flow.try_acquire() {
            return Admission::Blocked;
        }
        debug_assert_eq!(m.id.sender, ctx.pid(), "abcast of a foreign message");
        self.own_pending.insert(m.id, m.clone());
        ctx.bump("abcast.requests", 1);
        if !self.cfg.opts.piggyback_on_acks {
            // Modular-style dissemination: diffuse to everyone.
            self.broadcast(ctx, "mono.diffuse", &MonoMsg::Diffuse { msg: m.clone() });
            self.pool.insert(m.id, m);
            self.try_start_instance(ctx);
        } else {
            let n = ctx.n();
            let coord = self.responsible_coordinator(n);
            self.pool.insert(m.id, m);
            if coord == ctx.pid() {
                self.try_start_instance(ctx);
            } else if !self.in_flight() {
                // No ack imminent: hand the message over right away.
                self.flush_pool_to(ctx, coord);
            }
            // Otherwise the message rides the next AckDiff (O2).
        }
        Admission::Accepted
    }
}
