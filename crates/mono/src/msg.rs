//! Monolithic stack wire messages.
//!
//! One merged vocabulary instead of per-module envelopes: a single
//! [`MonoMsg::Step`] can carry *both* the decision of instance `k` and
//! the proposal of instance `k+1` (optimization O1), and an
//! [`MonoMsg::AckDiff`] carries an ack *and* freshly abcast application
//! messages riding to the coordinator (optimization O2).

use bytes::Bytes;
use fortika_net::wire::{Wire, WireError, WireReader, WireWriter};
use fortika_net::{AppMsg, Batch};

/// A decision announcement for one instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// Decided instance.
    pub instance: u64,
    /// Round in which the decision was reached.
    pub round: u32,
    /// Full value; `None` is the `DECISION` tag (receivers decide the
    /// proposal of `round` they already hold).
    pub full: Option<Batch>,
}

/// A proposal for one instance/round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Proposal {
    /// Proposed instance.
    pub instance: u64,
    /// Round of the proposal.
    pub round: u32,
    /// Proposed batch.
    pub value: Batch,
}

/// Messages of the monolithic atomic broadcast protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonoMsg {
    /// Decision and/or proposal — combined when optimization O1 applies.
    Step {
        /// Decision of the previous instance, if any.
        decision: Option<Decision>,
        /// Proposal for the next instance, if any.
        proposal: Option<Proposal>,
    },
    /// Ack of `(instance, round)` plus piggybacked application messages
    /// (optimization O2; empty without it).
    AckDiff {
        /// Acked instance.
        instance: u64,
        /// Acked round.
        round: u32,
        /// Application messages riding to the coordinator.
        msgs: Vec<AppMsg>,
    },
    /// Standalone hand-off of application messages to the coordinator
    /// (used when no ack is imminent, e.g. at low load).
    Forward {
        /// The messages.
        msgs: Vec<AppMsg>,
    },
    /// Diffusion to all processes (only with optimization O2 disabled —
    /// the modular stack's dissemination pattern).
    Diffuse {
        /// The message.
        msg: AppMsg,
    },
    /// Estimate for a round change, carrying the sender's undelivered own
    /// messages for re-hand-off to the new coordinator (§4.2: "if the
    /// coordinator changes, m is again piggybacked on the estimate").
    Estimate {
        /// Instance.
        instance: u64,
        /// Round being entered.
        round: u32,
        /// Adoption timestamp of `value` (0 = initial).
        ts: u32,
        /// The sender's current estimate.
        value: Batch,
        /// Undelivered own messages re-routed to the new coordinator.
        msgs: Vec<AppMsg>,
    },
    /// Pull-based recovery: ask for the decision of `instance`.
    DecisionRequest {
        /// The missing instance.
        instance: u64,
    },
    /// A recovery-round coordinator soliciting estimates: processes that
    /// have not yet joined `(instance, round)` join it and reply with
    /// their estimate. Without this, idle processes would only join via
    /// slow periodic timers and recovery would crawl.
    EstimateRequest {
        /// The instance being recovered.
        instance: u64,
        /// The round the requester coordinates.
        round: u32,
    },
    /// Failure-detector heartbeat.
    Heartbeat,
    /// Rejoin announcement of a (re)started process: "my contiguous
    /// applied prefix ends at `watermark`" (a revived node says 0).
    JoinRequest {
        /// First instance the sender is missing.
        watermark: u64,
    },
    /// Bulk catch-up reply: decided values of consecutive instances
    /// plus the sender's applied frontier, so the joiner chains pulls
    /// until it reaches the live edge.
    StateTransfer {
        /// Instance of `values[0]`.
        from: u64,
        /// Decided values of `from..from + values.len()`.
        values: Vec<Batch>,
        /// The sender's contiguous applied prefix length.
        frontier: u64,
    },
    /// One chunk of a log-compaction snapshot, serving a joiner whose
    /// gap starts inside the sender's compacted prefix (the decided
    /// values there are truncated; the snapshot replaces them). Chunks
    /// are pulled at round-trip pace via
    /// [`SnapshotPull`](Self::SnapshotPull); once complete, the joiner
    /// installs the snapshot and resumes log catch-up at
    /// `last_included + 1`.
    SnapshotTransfer {
        /// Highest instance the snapshot covers.
        last_included: u64,
        /// Digest of the snapshot (integrity check across chunks).
        digest: u64,
        /// Total encoded snapshot size in bytes.
        total: u32,
        /// Offset of `chunk` within the encoded snapshot.
        offset: u32,
        /// The chunk bytes.
        chunk: Bytes,
        /// The sender's contiguous applied frontier (catch-up target).
        frontier: u64,
    },
    /// Joiner-side request for the next snapshot chunk.
    SnapshotPull {
        /// Which snapshot is being pulled (its highest instance).
        last_included: u64,
        /// Byte offset of the requested chunk.
        offset: u32,
    },
}

const TAG_STEP: u8 = 1;
const TAG_ACK_DIFF: u8 = 2;
const TAG_FORWARD: u8 = 3;
const TAG_DIFFUSE: u8 = 4;
const TAG_ESTIMATE: u8 = 5;
const TAG_DECISION_REQUEST: u8 = 6;
const TAG_HEARTBEAT: u8 = 7;
const TAG_ESTIMATE_REQUEST: u8 = 8;
const TAG_JOIN_REQUEST: u8 = 9;
const TAG_STATE_TRANSFER: u8 = 10;
const TAG_SNAPSHOT_TRANSFER: u8 = 11;
const TAG_SNAPSHOT_PULL: u8 = 12;

impl Wire for Decision {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.instance);
        w.put_u32(self.round);
        self.full.encode(w);
    }
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(Decision {
            instance: r.get_u64()?,
            round: r.get_u32()?,
            full: Option::<Batch>::decode(r)?,
        })
    }
}

impl Wire for Proposal {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.instance);
        w.put_u32(self.round);
        self.value.encode(w);
    }
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(Proposal {
            instance: r.get_u64()?,
            round: r.get_u32()?,
            value: Batch::decode(r)?,
        })
    }
}

impl Wire for MonoMsg {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            MonoMsg::Step { decision, proposal } => {
                w.put_u8(TAG_STEP);
                decision.encode(w);
                proposal.encode(w);
            }
            MonoMsg::AckDiff {
                instance,
                round,
                msgs,
            } => {
                w.put_u8(TAG_ACK_DIFF);
                w.put_u64(*instance);
                w.put_u32(*round);
                msgs.encode(w);
            }
            MonoMsg::Forward { msgs } => {
                w.put_u8(TAG_FORWARD);
                msgs.encode(w);
            }
            MonoMsg::Diffuse { msg } => {
                w.put_u8(TAG_DIFFUSE);
                msg.encode(w);
            }
            MonoMsg::Estimate {
                instance,
                round,
                ts,
                value,
                msgs,
            } => {
                w.put_u8(TAG_ESTIMATE);
                w.put_u64(*instance);
                w.put_u32(*round);
                w.put_u32(*ts);
                value.encode(w);
                msgs.encode(w);
            }
            MonoMsg::DecisionRequest { instance } => {
                w.put_u8(TAG_DECISION_REQUEST);
                w.put_u64(*instance);
            }
            MonoMsg::EstimateRequest { instance, round } => {
                w.put_u8(TAG_ESTIMATE_REQUEST);
                w.put_u64(*instance);
                w.put_u32(*round);
            }
            MonoMsg::Heartbeat => {
                w.put_u8(TAG_HEARTBEAT);
            }
            MonoMsg::JoinRequest { watermark } => {
                w.put_u8(TAG_JOIN_REQUEST);
                w.put_u64(*watermark);
            }
            MonoMsg::StateTransfer {
                from,
                values,
                frontier,
            } => {
                w.put_u8(TAG_STATE_TRANSFER);
                w.put_u64(*from);
                w.put_u64(*frontier);
                values.encode(w);
            }
            MonoMsg::SnapshotTransfer {
                last_included,
                digest,
                total,
                offset,
                chunk,
                frontier,
            } => {
                w.put_u8(TAG_SNAPSHOT_TRANSFER);
                w.put_u64(*last_included);
                w.put_u64(*digest);
                w.put_u32(*total);
                w.put_u32(*offset);
                w.put_u64(*frontier);
                chunk.encode(w);
            }
            MonoMsg::SnapshotPull {
                last_included,
                offset,
            } => {
                w.put_u8(TAG_SNAPSHOT_PULL);
                w.put_u64(*last_included);
                w.put_u32(*offset);
            }
        }
    }

    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        match r.get_u8()? {
            TAG_STEP => Ok(MonoMsg::Step {
                decision: Option::<Decision>::decode(r)?,
                proposal: Option::<Proposal>::decode(r)?,
            }),
            TAG_ACK_DIFF => Ok(MonoMsg::AckDiff {
                instance: r.get_u64()?,
                round: r.get_u32()?,
                msgs: Vec::<AppMsg>::decode(r)?,
            }),
            TAG_FORWARD => Ok(MonoMsg::Forward {
                msgs: Vec::<AppMsg>::decode(r)?,
            }),
            TAG_DIFFUSE => Ok(MonoMsg::Diffuse {
                msg: AppMsg::decode(r)?,
            }),
            TAG_ESTIMATE => Ok(MonoMsg::Estimate {
                instance: r.get_u64()?,
                round: r.get_u32()?,
                ts: r.get_u32()?,
                value: Batch::decode(r)?,
                msgs: Vec::<AppMsg>::decode(r)?,
            }),
            TAG_DECISION_REQUEST => Ok(MonoMsg::DecisionRequest {
                instance: r.get_u64()?,
            }),
            TAG_ESTIMATE_REQUEST => Ok(MonoMsg::EstimateRequest {
                instance: r.get_u64()?,
                round: r.get_u32()?,
            }),
            TAG_HEARTBEAT => Ok(MonoMsg::Heartbeat),
            TAG_JOIN_REQUEST => Ok(MonoMsg::JoinRequest {
                watermark: r.get_u64()?,
            }),
            TAG_STATE_TRANSFER => Ok(MonoMsg::StateTransfer {
                from: r.get_u64()?,
                frontier: r.get_u64()?,
                values: Vec::<Batch>::decode(r)?,
            }),
            TAG_SNAPSHOT_TRANSFER => Ok(MonoMsg::SnapshotTransfer {
                last_included: r.get_u64()?,
                digest: r.get_u64()?,
                total: r.get_u32()?,
                offset: r.get_u32()?,
                frontier: r.get_u64()?,
                chunk: Bytes::decode(r)?,
            }),
            TAG_SNAPSHOT_PULL => Ok(MonoMsg::SnapshotPull {
                last_included: r.get_u64()?,
                offset: r.get_u32()?,
            }),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

/// The crash-recovery stable record of one instance: the round this
/// process last voted in, the adoption timestamp of its estimate, and
/// the estimate itself (same CT-safety role as the modular stack's
/// `fortika_consensus::VoteRecord`, duplicated here because the
/// monolithic crate deliberately depends on no protocol crate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoteRecord {
    /// Round of the last vote (lower-round proposals are refused).
    pub round: u32,
    /// Adoption timestamp of `value` (round + 1 at ack time).
    pub ts: u32,
    /// The locked estimate.
    pub value: Batch,
}

impl Wire for VoteRecord {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.round);
        w.put_u32(self.ts);
        self.value.encode(w);
    }
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(VoteRecord {
            round: r.get_u32()?,
            ts: r.get_u32()?,
            value: Batch::decode(r)?,
        })
    }
}

/// Convenience constructor: a full-value decision message.
pub fn decision_full(instance: u64, round: u32, value: Batch) -> MonoMsg {
    MonoMsg::Step {
        decision: Some(Decision {
            instance,
            round,
            full: Some(value),
        }),
        proposal: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use fortika_net::wire::{decode, encode};
    use fortika_net::{MsgId, ProcessId};

    fn msg(p: u16, seq: u64) -> AppMsg {
        AppMsg::new(MsgId::new(ProcessId(p), seq), Bytes::from_static(b"m"))
    }

    fn batch() -> Batch {
        Batch::normalize(vec![msg(0, 0), msg(1, 3)])
    }

    #[test]
    fn all_variants_round_trip() {
        let variants = vec![
            MonoMsg::Step {
                decision: Some(Decision {
                    instance: 5,
                    round: 0,
                    full: None,
                }),
                proposal: Some(Proposal {
                    instance: 6,
                    round: 0,
                    value: batch(),
                }),
            },
            MonoMsg::Step {
                decision: None,
                proposal: Some(Proposal {
                    instance: 1,
                    round: 2,
                    value: batch(),
                }),
            },
            decision_full(9, 1, batch()),
            MonoMsg::AckDiff {
                instance: 7,
                round: 0,
                msgs: vec![msg(2, 0), msg(2, 1)],
            },
            MonoMsg::Forward {
                msgs: vec![msg(1, 0)],
            },
            MonoMsg::Diffuse { msg: msg(0, 9) },
            MonoMsg::Estimate {
                instance: 3,
                round: 4,
                ts: 2,
                value: batch(),
                msgs: vec![msg(1, 1)],
            },
            MonoMsg::DecisionRequest { instance: 11 },
            MonoMsg::EstimateRequest {
                instance: 12,
                round: 2,
            },
            MonoMsg::Heartbeat,
            MonoMsg::JoinRequest { watermark: 7 },
            MonoMsg::StateTransfer {
                from: 0,
                values: vec![batch(), Batch::empty()],
                frontier: 9,
            },
            MonoMsg::SnapshotTransfer {
                last_included: 63,
                digest: 0xFEED_F00D,
                total: 9000,
                offset: 8192,
                chunk: Bytes::from_static(b"chunk"),
                frontier: 99,
            },
            MonoMsg::SnapshotPull {
                last_included: 63,
                offset: 8192,
            },
        ];
        for v in variants {
            let bytes = encode(&v);
            assert_eq!(decode::<MonoMsg>(bytes).unwrap(), v, "variant {v:?}");
        }
    }

    #[test]
    fn combined_step_is_barely_larger_than_proposal() {
        // O1's point: the tag decision adds ~14 bytes to the proposal
        // message instead of costing a separate message.
        let proposal_only = MonoMsg::Step {
            decision: None,
            proposal: Some(Proposal {
                instance: 6,
                round: 0,
                value: batch(),
            }),
        };
        let combined = MonoMsg::Step {
            decision: Some(Decision {
                instance: 5,
                round: 0,
                full: None,
            }),
            proposal: Some(Proposal {
                instance: 6,
                round: 0,
                value: batch(),
            }),
        };
        let a = encode(&proposal_only).len();
        let b = encode(&combined).len();
        assert!(b - a <= 16, "tag decision should be tiny, added {}", b - a);
    }
}
