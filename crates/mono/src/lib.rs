//! Monolithic atomic broadcast — the merged stack of the paper's §4.
//!
//! The same algorithms as the modular stack (Chandra–Toueg atomic
//! broadcast reduced to consensus), implemented as **one** state machine.
//! Merging legalises three cross-module optimizations that the modular
//! composition structurally forbids:
//!
//! | | Optimization | Saves |
//! |---|---|---|
//! | O1 | decision `k` piggybacks on proposal `k+1` (§4.1) | one message per instance |
//! | O2 | abcast messages ride acks to the coordinator (§4.2) | `M(n−1)` diffusion messages per instance |
//! | O3 | implicit decision acks, no rbcast relays (§4.3) | `(n−1)·⌊(n−1)/2⌋` relay messages per decision |
//!
//! Together they shrink an instance from `(n−1)(M+2+⌊(n+1)/2⌋)` to
//! `2(n−1)` messages, and the data volume from `2(n−1)·M·l` to
//! `(n−1)(1+1/n)·M·l` — an overhead of `(n−1)/(n+1)` for the modular
//! stack (50 % at n = 3, 75 % at n = 7). Each optimization can be
//! toggled individually through [`MonoOptimizations`] for the ablation
//! benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod msg;
mod node;

pub use node::{MonoConfig, MonoNode, MonoOptimizations};
