//! Correctness under crashes for every ablation configuration: the
//! optimization switches change the wire economy, never safety.

use bytes::Bytes;
use fortika_fd::{FdConfig, HeartbeatFd};
use fortika_mono::{MonoConfig, MonoNode, MonoOptimizations};
use fortika_net::{
    Admission, AppMsg, AppRequest, Cluster, ClusterConfig, CollectingHarness, MsgId, Node,
    ProcessId,
};
use fortika_sim::{VDur, VTime};

fn node(n: usize, me: usize, opts: MonoOptimizations) -> Box<dyn Node> {
    let fd_cfg = FdConfig {
        heartbeat_interval: VDur::millis(20),
        timeout: VDur::millis(100),
        timeout_increment: VDur::millis(50),
    };
    Box::new(MonoNode::new(
        MonoConfig {
            opts,
            window: 16,
            ..MonoConfig::default()
        },
        Box::new(HeartbeatFd::new(n, ProcessId(me as u16), fd_cfg)),
    ))
}

fn all_combos() -> Vec<MonoOptimizations> {
    let mut out = Vec::new();
    for o1 in [false, true] {
        for o2 in [false, true] {
            for o3 in [false, true] {
                out.push(MonoOptimizations {
                    combine_decision_proposal: o1,
                    piggyback_on_acks: o2,
                    implicit_decision_acks: o3,
                });
            }
        }
    }
    out
}

/// For each of the 8 optimization subsets: run a loaded 5-process group,
/// crash the round-0 coordinator mid-run, keep submitting from the
/// survivors, and verify the atomic broadcast properties.
#[test]
fn every_subset_survives_coordinator_crash() {
    for (i, opts) in all_combos().into_iter().enumerate() {
        let n = 5;
        let nodes = (0..n).map(|p| node(n, p, opts)).collect();
        let mut cluster = Cluster::new(ClusterConfig::new(n, 40 + i as u64), nodes);
        let mut harness = CollectingHarness::new(n);
        cluster.run_until(VTime::ZERO + VDur::millis(1), &mut harness);

        let mut submitted = Vec::new();
        let mut seqs = vec![0u64; n];
        let submit = |cluster: &mut Cluster, p: u16, seqs: &mut Vec<u64>, out: &mut Vec<MsgId>| {
            let id = MsgId::new(ProcessId(p), seqs[p as usize]);
            let msg = AppMsg::new(id, Bytes::from(vec![p as u8; 256]));
            let (adm, _) = cluster.submit(ProcessId(p), AppRequest::Abcast(msg));
            if adm == Admission::Accepted {
                seqs[p as usize] += 1;
                out.push(id);
            }
        };

        // Pre-crash traffic from everyone.
        for _ in 0..3 {
            for p in 0..n as u16 {
                submit(&mut cluster, p, &mut seqs, &mut submitted);
            }
            let next = cluster.now() + VDur::millis(10);
            cluster.run_until(next, &mut harness);
        }
        // Remove p1's submissions from the validity set (it may crash
        // holding undisseminated messages — allowed by the spec).
        let survivors_only: Vec<MsgId> = submitted
            .iter()
            .copied()
            .filter(|id| id.sender != ProcessId(0))
            .collect();

        let crash_at = cluster.now() + VDur::millis(1);
        cluster.schedule_crash(ProcessId(0), crash_at);
        let resume = cluster.now() + VDur::millis(300);
        cluster.run_until(resume, &mut harness);

        // Post-crash traffic from survivors.
        let mut post = Vec::new();
        for _ in 0..3 {
            for p in 1..n as u16 {
                submit(&mut cluster, p, &mut seqs, &mut post);
            }
            let next = cluster.now() + VDur::millis(10);
            cluster.run_until(next, &mut harness);
        }
        let end = cluster.now() + VDur::secs(8);
        cluster.run_until(end, &mut harness);

        // Properties.
        let reference = harness.order(ProcessId(1));
        for p in ProcessId::all(n).skip(1) {
            assert_eq!(harness.order(p), reference, "combo {opts:?}: {p} diverged");
        }
        let mut dedup = reference.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), reference.len(), "combo {opts:?}: duplicates");
        for id in survivors_only.iter().chain(&post) {
            assert!(
                reference.contains(id),
                "combo {opts:?}: {id} from a correct sender lost"
            );
        }
        // Crashed coordinator's log is a prefix.
        let dead = harness.order(ProcessId(0));
        assert!(
            dead.iter().zip(reference.iter()).all(|(a, b)| a == b),
            "combo {opts:?}: crashed log not a prefix"
        );
    }
}

/// The O2-off path (diffusion) must tolerate a *sender* crash mid-
/// diffusion, like the modular stack.
#[test]
fn diffusion_path_sender_crash_agreement() {
    let opts = MonoOptimizations {
        combine_decision_proposal: true,
        piggyback_on_acks: false, // diffusion mode
        implicit_decision_acks: true,
    };
    let n = 4;
    let mut cfg = ClusterConfig::new(n, 50);
    cfg.net.bandwidth_bytes_per_sec = 1_000_000; // slow NIC: spread the fan-out
    let nodes = (0..n).map(|p| node(n, p, opts)).collect();
    let mut cluster = Cluster::new(cfg, nodes);
    let mut harness = CollectingHarness::new(n);
    cluster.run_until(VTime::ZERO + VDur::millis(1), &mut harness);

    // Keep the instance stream alive from p2.
    let keeper = AppMsg::new(MsgId::new(ProcessId(1), 0), Bytes::from(vec![1u8; 64]));
    cluster.submit(ProcessId(1), AppRequest::Abcast(keeper));
    // p3 diffuses a large message and dies mid-fan-out.
    let fat = AppMsg::new(MsgId::new(ProcessId(2), 0), Bytes::from(vec![2u8; 4096]));
    cluster.submit(ProcessId(2), AppRequest::Abcast(fat));
    let crash_at = cluster.now() + VDur::millis(6);
    cluster.schedule_crash(ProcessId(2), crash_at);
    let end = cluster.now() + VDur::secs(8);
    cluster.run_until(end, &mut harness);

    let reference = harness.order(ProcessId(0));
    for p in [ProcessId(0), ProcessId(1), ProcessId(3)] {
        assert_eq!(harness.order(p), reference.clone(), "{p} diverged");
    }
    assert!(
        reference.contains(&MsgId::new(ProcessId(1), 0)),
        "correct sender's message lost"
    );
}
