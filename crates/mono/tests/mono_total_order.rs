//! Monolithic stack properties: total order, agreement under crashes,
//! the good-run message economy, optimization toggles. Property
//! checking is delegated to the `fortika-chaos` delivery-invariant
//! oracle.

use bytes::Bytes;
use fortika_chaos::check_orders;
use fortika_fd::{FdConfig, HeartbeatFd};
use fortika_mono::{MonoConfig, MonoNode, MonoOptimizations};
use fortika_net::{
    Admission, AppMsg, AppRequest, Cluster, ClusterConfig, CollectingHarness, MsgId, Node,
    ProcessId,
};
use fortika_sim::{VDur, VTime};

fn fd_cfg() -> FdConfig {
    FdConfig {
        heartbeat_interval: VDur::millis(20),
        timeout: VDur::millis(100),
        timeout_increment: VDur::millis(50),
    }
}

fn mono_node(n: usize, me: usize, opts: MonoOptimizations, window: usize) -> Box<dyn Node> {
    let cfg = MonoConfig {
        opts,
        window,
        ..MonoConfig::default()
    };
    Box::new(MonoNode::new(
        cfg,
        Box::new(HeartbeatFd::new(n, ProcessId(me as u16), fd_cfg())),
    ))
}

fn build(n: usize, seed: u64, opts: MonoOptimizations) -> Cluster {
    let nodes = (0..n).map(|i| mono_node(n, i, opts, 64)).collect();
    Cluster::new(ClusterConfig::new(n, seed), nodes)
}

fn submit(cluster: &mut Cluster, sender: u16, seq: u64, size: usize) {
    let msg = AppMsg::new(
        MsgId::new(ProcessId(sender), seq),
        Bytes::from(vec![sender as u8; size]),
    );
    let (adm, _) = cluster.submit(ProcessId(sender), AppRequest::Abcast(msg));
    assert_eq!(adm, Admission::Accepted);
}

fn assert_atomic_broadcast(
    harness: &CollectingHarness,
    n: usize,
    submitted_by_correct: &[MsgId],
    crashed: &[ProcessId],
) {
    let correct: Vec<ProcessId> = ProcessId::all(n).filter(|p| !crashed.contains(p)).collect();
    let orders: Vec<Vec<MsgId>> = ProcessId::all(n).map(|p| harness.order(p)).collect();
    check_orders(&orders, &correct, submitted_by_correct).assert_ok("monolithic stack");
}

fn drive_workload(
    cluster: &mut Cluster,
    harness: &mut CollectingHarness,
    n: usize,
    rounds: u64,
    size: usize,
) -> Vec<MsgId> {
    cluster.run_until(VTime::ZERO + VDur::millis(1), harness);
    let mut submitted = Vec::new();
    for round in 0..rounds {
        for p in 0..n as u16 {
            submit(cluster, p, round, size);
            submitted.push(MsgId::new(ProcessId(p), round));
        }
        let next = cluster.now() + VDur::millis(7);
        cluster.run_until(next, harness);
    }
    let endt = cluster.now() + VDur::secs(3);
    cluster.run_until(endt, harness);
    submitted
}

#[test]
fn good_run_total_order_n3_all_optimizations() {
    let n = 3;
    let mut cluster = build(n, 21, MonoOptimizations::all());
    let mut harness = CollectingHarness::new(n);
    let submitted = drive_workload(&mut cluster, &mut harness, n, 10, 128);
    assert_atomic_broadcast(&harness, n, &submitted, &[]);
    assert_eq!(harness.order(ProcessId(0)).len(), 30);
    // O1 actually fired under pipelined load.
    assert!(cluster.counters().event("mono.combined_steps") > 0);
    // O2: no diffusion messages at all.
    assert_eq!(cluster.counters().kind("mono.diffuse").msgs, 0);
    // No round changes in a good run.
    assert_eq!(cluster.counters().event("mono.round_changes"), 0);
}

#[test]
fn good_run_total_order_n7() {
    let n = 7;
    let mut cluster = build(n, 22, MonoOptimizations::all());
    let mut harness = CollectingHarness::new(n);
    let submitted = drive_workload(&mut cluster, &mut harness, n, 5, 512);
    assert_atomic_broadcast(&harness, n, &submitted, &[]);
    assert_eq!(harness.order(ProcessId(0)).len(), 35);
}

#[test]
fn every_optimization_subset_orders_correctly() {
    let combos = [
        MonoOptimizations::none(),
        MonoOptimizations {
            combine_decision_proposal: true,
            piggyback_on_acks: false,
            implicit_decision_acks: false,
        },
        MonoOptimizations {
            combine_decision_proposal: true,
            piggyback_on_acks: true,
            implicit_decision_acks: false,
        },
        MonoOptimizations::all(),
    ];
    for (i, opts) in combos.into_iter().enumerate() {
        let n = 3;
        let mut cluster = build(n, 23 + i as u64, opts);
        let mut harness = CollectingHarness::new(n);
        let submitted = drive_workload(&mut cluster, &mut harness, n, 6, 256);
        assert_atomic_broadcast(&harness, n, &submitted, &[]);
        assert_eq!(
            harness.order(ProcessId(0)).len(),
            18,
            "combo {opts:?} lost messages"
        );
    }
}

#[test]
fn optimizations_reduce_message_count() {
    // Same workload, O-none vs O-all: the optimized stack must send
    // strictly fewer messages (heartbeats excluded).
    let count_msgs = |opts: MonoOptimizations| -> u64 {
        let n = 3;
        let mut cluster = build(n, 29, opts);
        let mut harness = CollectingHarness::new(n);
        drive_workload(&mut cluster, &mut harness, n, 10, 256);
        cluster
            .counters()
            .total_msgs_excluding(|k| k.starts_with("fd."))
    };
    let unoptimized = count_msgs(MonoOptimizations::none());
    let optimized = count_msgs(MonoOptimizations::all());
    // This workload is light (piggybacking opportunities are scarce), so
    // the reduction is far from the saturated-regime factor of ~4; the
    // saturated economy is asserted by the dedicated test below.
    assert!(
        optimized * 4 < unoptimized * 3,
        "expected ≥25% message reduction: optimized={optimized} unoptimized={unoptimized}"
    );
}

#[test]
fn coordinator_crash_recovers_and_orders() {
    let n = 3;
    let mut cluster = build(n, 24, MonoOptimizations::all());
    let mut harness = CollectingHarness::new(n);
    cluster.run_until(VTime::ZERO + VDur::millis(1), &mut harness);
    let mut submitted = Vec::new();
    for round in 0..3u64 {
        for p in [1u16, 2] {
            submit(&mut cluster, p, round, 128);
            submitted.push(MsgId::new(ProcessId(p), round));
        }
        let next = cluster.now() + VDur::millis(5);
        cluster.run_until(next, &mut harness);
    }
    let crash_at = cluster.now() + VDur::millis(1);
    cluster.schedule_crash(ProcessId(0), crash_at);
    let resume = cluster.now() + VDur::millis(50);
    cluster.run_until(resume, &mut harness);
    for round in 3..6u64 {
        for p in [1u16, 2] {
            submit(&mut cluster, p, round, 128);
            submitted.push(MsgId::new(ProcessId(p), round));
        }
        let next = cluster.now() + VDur::millis(5);
        cluster.run_until(next, &mut harness);
    }
    let endt = cluster.now() + VDur::secs(5);
    cluster.run_until(endt, &mut harness);
    assert_atomic_broadcast(&harness, n, &submitted, &[ProcessId(0)]);
    assert!(cluster.counters().event("mono.round_changes") > 0);
}

#[test]
fn coordinator_crash_with_forwarded_messages_does_not_lose_them() {
    // O2's risky case: messages handed to a coordinator that dies before
    // proposing them. The sender must re-route them (estimate piggyback)
    // and they must still be delivered.
    let n = 3;
    let mut cluster = build(n, 25, MonoOptimizations::all());
    let mut harness = CollectingHarness::new(n);
    cluster.run_until(VTime::ZERO + VDur::millis(1), &mut harness);
    // p2 abcasts while idle: the message is forwarded straight to p1.
    submit(&mut cluster, 1, 0, 128);
    // Crash p1 almost immediately — likely holding the forwarded message.
    let crash_at = cluster.now() + VDur::micros(300);
    cluster.schedule_crash(ProcessId(0), crash_at);
    let endt = cluster.now() + VDur::secs(5);
    cluster.run_until(endt, &mut harness);
    assert_atomic_broadcast(&harness, n, &[MsgId::new(ProcessId(1), 0)], &[ProcessId(0)]);
}

/// Closed-loop driver: keeps every process's flow window full, exactly
/// like the saturated regime of the paper's figures.
struct ClosedLoop {
    next_seq: Vec<u64>,
    size: usize,
}

impl ClosedLoop {
    fn pump(&mut self, api: &mut fortika_net::ClusterApi<'_>, pid: ProcessId) {
        loop {
            let seq = self.next_seq[pid.index()];
            let msg = AppMsg::new(MsgId::new(pid, seq), Bytes::from(vec![0u8; self.size]));
            let (adm, _) = api.submit(pid, AppRequest::Abcast(msg));
            match adm {
                Admission::Accepted => self.next_seq[pid.index()] += 1,
                Admission::Blocked => break,
            }
        }
    }
}

impl fortika_net::Harness for ClosedLoop {
    fn on_tick(&mut self, api: &mut fortika_net::ClusterApi<'_>, _tick: u64, _at: VTime) {
        for pid in ProcessId::all(api.n()) {
            self.pump(api, pid);
        }
    }
    fn on_app_ready(&mut self, api: &mut fortika_net::ClusterApi<'_>, pid: ProcessId, _at: VTime) {
        self.pump(api, pid);
    }
}

#[test]
fn saturated_pipeline_costs_two_messages_per_process_pair() {
    // Under saturation the steady-state instance costs 2(n−1) messages:
    // one combined step out, n−1 acks back (§5.2.1).
    let n = 3;
    let nodes = (0..n)
        .map(|i| mono_node(n, i, MonoOptimizations::all(), 4))
        .collect();
    let mut cluster = Cluster::new(ClusterConfig::new(n, 26), nodes);
    let mut driver = ClosedLoop {
        next_seq: vec![0; n],
        size: 512,
    };
    cluster.schedule_tick(VTime::ZERO + VDur::millis(1), 0);
    // Warm up 200 ms, then measure a 200 ms steady-state window.
    cluster.run_until(VTime::ZERO + VDur::millis(200), &mut driver);
    let snap = cluster.counters().clone();
    cluster.run_until(VTime::ZERO + VDur::millis(400), &mut driver);
    let window = cluster.counters().delta_since(&snap);
    let msgs = window.total_msgs_excluding(|k| k.starts_with("fd."));
    let decided = window.event("consensus.decided");
    assert!(decided > 100, "pipeline should have decided many instances");
    // consensus.decided counts per process: instances ≈ decided / n.
    let instances = decided as f64 / n as f64;
    let per_instance = msgs as f64 / instances;
    let expect = 2.0 * (n as f64 - 1.0);
    assert!(
        (per_instance - expect).abs() < 0.4,
        "good-run steady state should cost ~{expect} msgs/instance, measured {per_instance:.2}"
    );
}
