//! Shared flow-control window.
//!
//! The paper (§5.1): *"both implementations of the atomic broadcast
//! protocol use the same flow-control mechanism that blocks further
//! abcast events when necessary"*, tuned so that on average M = 4
//! messages are ordered per consensus execution. The mechanism is a
//! per-process window on *own* messages that were abcast but not yet
//! adelivered; both the modular stack's flow-control microprotocol and
//! the monolithic node embed this same type.

/// Window of un-adelivered own messages.
///
/// # Example
///
/// ```
/// use fortika_net::flow::FlowWindow;
///
/// let mut w = FlowWindow::new(2);
/// assert!(w.try_acquire());
/// assert!(w.try_acquire());
/// assert!(!w.try_acquire(), "window full");
/// assert!(w.release(1), "crossing the threshold reopens the window");
/// assert!(w.try_acquire());
/// ```
#[derive(Debug, Clone)]
pub struct FlowWindow {
    window: usize,
    outstanding: usize,
}

impl FlowWindow {
    /// Creates a window admitting up to `window` outstanding messages.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero (nothing could ever be admitted).
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "flow-control window must admit something");
        FlowWindow {
            window,
            outstanding: 0,
        }
    }

    /// Tries to admit one message; `false` means the caller must block.
    pub fn try_acquire(&mut self) -> bool {
        if self.outstanding < self.window {
            self.outstanding += 1;
            true
        } else {
            false
        }
    }

    /// Releases `n` slots (own messages adelivered). Returns `true` if
    /// this transition reopened a previously full window — the signal to
    /// wake the application.
    pub fn release(&mut self, n: usize) -> bool {
        if n == 0 {
            return false;
        }
        let was_full = self.outstanding >= self.window;
        self.outstanding = self.outstanding.saturating_sub(n);
        was_full && self.outstanding < self.window
    }

    /// Currently outstanding own messages.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Configured window size.
    pub fn window(&self) -> usize {
        self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_until_full() {
        let mut w = FlowWindow::new(3);
        assert!(w.try_acquire());
        assert!(w.try_acquire());
        assert!(w.try_acquire());
        assert!(!w.try_acquire());
        assert_eq!(w.outstanding(), 3);
    }

    #[test]
    fn release_signals_reopen_only_on_threshold_crossing() {
        let mut w = FlowWindow::new(2);
        w.try_acquire();
        assert!(!w.release(1), "window was not full — no wake needed");
        w.try_acquire();
        w.try_acquire();
        assert!(!w.try_acquire());
        assert!(w.release(1), "full → not-full transition must wake");
        assert!(!w.release(1), "already open — no duplicate wake");
    }

    #[test]
    fn release_zero_is_noop() {
        let mut w = FlowWindow::new(1);
        w.try_acquire();
        assert!(!w.release(0));
        assert_eq!(w.outstanding(), 1);
    }

    #[test]
    fn release_saturates() {
        let mut w = FlowWindow::new(1);
        w.try_acquire();
        w.release(10);
        assert_eq!(w.outstanding(), 0);
    }

    #[test]
    #[should_panic(expected = "must admit something")]
    fn zero_window_rejected() {
        let _ = FlowWindow::new(0);
    }
}
