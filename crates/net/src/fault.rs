//! Link-level fault primitives.
//!
//! The paper's channel property (§2.1) — no loss, duplication or
//! corruption between correct processes — holds *by construction* in the
//! default simulation. Everything that is interesting about the two
//! stacks' failure machinery (◇P suspicion, rotating coordinators,
//! decision recovery) only fires when that construction is broken on
//! purpose. This module provides the vocabulary for breaking it:
//! per-link state (partition membership, seeded drop probability,
//! duplication, delay inflation, bandwidth degradation) that the
//! [`Cluster`](crate::Cluster) consults at transmission time, plus
//! scheduled [`LinkFault`] actions that flip that state mid-run.
//!
//! Faults compose: a link can simultaneously sit across a partition,
//! drop 10 % of what remains and triple its latency. Fault randomness
//! (drop/duplicate coin flips, duplicate-copy jitter) comes from a
//! dedicated RNG stream derived from the cluster seed, and every send
//! consumes exactly one main-stream jitter draw whether or not it
//! survives — so messages that do arrive keep the identical timing they
//! would have had in the fault-free run with the same seed, and fault
//! decisions replay bit-for-bit.
//!
//! The higher-level scenario DSL (timelines, random scenario generation,
//! the delivery-invariant oracle) lives in the `fortika-chaos` crate;
//! this module is deliberately mechanism-only.

use crate::id::ProcessId;

/// Selects the directed links a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSelector {
    /// Every directed link in the cluster.
    All,
    /// Both directions between two processes.
    Between(ProcessId, ProcessId),
    /// One direction only.
    Directed {
        /// Transmitting process.
        src: ProcessId,
        /// Receiving process.
        dst: ProcessId,
    },
    /// Every link transmitting from this process.
    From(ProcessId),
    /// Every link delivering to this process.
    To(ProcessId),
}

impl LinkSelector {
    /// True if the directed link `src → dst` is selected.
    pub fn matches(&self, src: ProcessId, dst: ProcessId) -> bool {
        match *self {
            LinkSelector::All => true,
            LinkSelector::Between(a, b) => (src, dst) == (a, b) || (src, dst) == (b, a),
            LinkSelector::Directed { src: s, dst: d } => (src, dst) == (s, d),
            LinkSelector::From(p) => src == p,
            LinkSelector::To(p) => dst == p,
        }
    }
}

/// A fault action applied to the cluster's links, immediately via
/// [`Cluster::apply_fault`](crate::Cluster::apply_fault) or at a chosen
/// instant via [`Cluster::schedule_fault`](crate::Cluster::schedule_fault).
#[derive(Debug, Clone)]
pub enum LinkFault {
    /// Splits the cluster into groups: links between processes of
    /// different groups drop everything. A process listed in no group
    /// forms an implicit singleton group (fully isolated).
    ///
    /// Applies partition state to **all** links: links within a group are
    /// unblocked, links across groups blocked. Messages already in
    /// flight still arrive — the partition takes effect at transmission
    /// time, like pulling a cable.
    Partition(Vec<Vec<ProcessId>>),
    /// Removes any partition (loss/duplication/delay state persists).
    Heal,
    /// Sets the drop probability of the selected links to `p` (0 clears).
    Loss {
        /// Affected links.
        link: LinkSelector,
        /// Per-message drop probability in `[0, 1]`.
        p: f64,
    },
    /// Sets the duplication probability of the selected links to `p`.
    /// A duplicated message arrives twice, the copies independently
    /// jittered (per-pair FIFO is preserved).
    Duplicate {
        /// Affected links.
        link: LinkSelector,
        /// Per-message duplication probability in `[0, 1]`.
        p: f64,
    },
    /// Scales propagation delay and jitter of the selected links by
    /// `factor_milli / 1000` (e.g. `5000` = 5× slower, `1000` = normal).
    /// Asymmetric spikes are expressed with a directed selector.
    DelaySpike {
        /// Affected links.
        link: LinkSelector,
        /// Delay multiplier in thousandths.
        factor_milli: u64,
    },
    /// Shrinks the *bandwidth* of the selected links to
    /// `rate_milli / 1000` of the configured NIC rate (`100` = 10 % of
    /// nominal, `1000` = full rate, i.e. restore). Unlike
    /// [`DelaySpike`](LinkFault::DelaySpike), which stretches
    /// propagation uniformly, a degraded link *serializes*: messages
    /// queue behind each other at the reduced rate, so large messages
    /// and bursts suffer disproportionately — the congested-switch /
    /// half-duplex failure mode Ring Paxos shows flips throughput
    /// rankings.
    Degrade {
        /// Affected links.
        link: LinkSelector,
        /// Bandwidth multiplier in thousandths, `1..=1000`.
        rate_milli: u64,
    },
    /// Restores every link to the fault-free default.
    Reset,
}

/// Per-directed-link fault state, consulted at transmission time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct LinkState {
    /// Cut by a partition: every message dropped.
    pub blocked: bool,
    /// Seeded drop probability.
    pub drop_p: f64,
    /// Seeded duplication probability.
    pub dup_p: f64,
    /// Delay multiplier in thousandths (1000 = ×1).
    pub delay_milli: u64,
    /// Bandwidth multiplier in thousandths (1000 = full rate). Below
    /// 1000 the link becomes its own serial server at the reduced
    /// rate — messages queue behind each other on it.
    pub rate_milli: u64,
}

impl Default for LinkState {
    fn default() -> Self {
        LinkState {
            blocked: false,
            drop_p: 0.0,
            dup_p: 0.0,
            delay_milli: 1000,
            rate_milli: 1000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_matching() {
        let (a, b, c) = (ProcessId(0), ProcessId(1), ProcessId(2));
        assert!(LinkSelector::All.matches(a, b));
        assert!(LinkSelector::Between(a, b).matches(b, a));
        assert!(!LinkSelector::Between(a, b).matches(a, c));
        assert!(LinkSelector::Directed { src: a, dst: b }.matches(a, b));
        assert!(!LinkSelector::Directed { src: a, dst: b }.matches(b, a));
        assert!(LinkSelector::From(a).matches(a, c));
        assert!(!LinkSelector::From(a).matches(c, a));
        assert!(LinkSelector::To(c).matches(b, c));
        assert!(!LinkSelector::To(c).matches(c, b));
    }

    #[test]
    fn default_state_is_fault_free() {
        let st = LinkState::default();
        assert!(!st.blocked);
        assert_eq!(st.drop_p, 0.0);
        assert_eq!(st.dup_p, 0.0);
        assert_eq!(st.delay_milli, 1000);
        assert_eq!(st.rate_milli, 1000);
    }
}
