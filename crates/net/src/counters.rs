//! Traffic and protocol counters.
//!
//! Counters are the bridge between the simulation and the paper's
//! analytical model (§5.2): the integration tests take steady-state
//! counter deltas and check them against the closed-form message and byte
//! counts, and the `analysis_*` benches print both side by side.

use std::collections::BTreeMap;
use std::fmt;

/// Message/byte tally for one message kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounter {
    /// Number of messages sent.
    pub msgs: u64,
    /// Total wire bytes sent (payload + per-message overhead).
    pub bytes: u64,
}

/// Cluster-wide counters, keyed by the `kind` tag each send carries
/// (e.g. `"abcast.diffuse"`, `"consensus.ack"`) plus free-form protocol
/// counters (e.g. `"consensus.decided"`).
#[derive(Debug, Clone, Default)]
pub struct Counters {
    sends: BTreeMap<&'static str, KindCounter>,
    events: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Empty counters.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Records a sent message of `bytes` wire bytes under `kind`.
    pub fn record_send(&mut self, kind: &'static str, bytes: u64) {
        let c = self.sends.entry(kind).or_default();
        c.msgs += 1;
        c.bytes += bytes;
    }

    /// Increments a free-form protocol counter.
    pub fn bump(&mut self, name: &'static str, by: u64) {
        *self.events.entry(name).or_default() += by;
    }

    /// Tally for one send kind (zero if never seen).
    pub fn kind(&self, kind: &str) -> KindCounter {
        self.sends.get(kind).copied().unwrap_or_default()
    }

    /// Value of a free-form counter (zero if never seen).
    pub fn event(&self, name: &str) -> u64 {
        self.events.get(name).copied().unwrap_or_default()
    }

    /// Sum of messages across all kinds, excluding kinds whose name
    /// matches the `exclude` predicate.
    pub fn total_msgs_excluding(&self, exclude: impl Fn(&str) -> bool) -> u64 {
        self.sends
            .iter()
            .filter(|(k, _)| !exclude(k))
            .map(|(_, c)| c.msgs)
            .sum()
    }

    /// Sum of messages across all kinds.
    pub fn total_msgs(&self) -> u64 {
        self.sends.values().map(|c| c.msgs).sum()
    }

    /// Sum of wire bytes across all kinds.
    pub fn total_bytes(&self) -> u64 {
        self.sends.values().map(|c| c.bytes).sum()
    }

    /// Iterates over `(kind, tally)` pairs in lexicographic kind order.
    pub fn iter_sends(&self) -> impl Iterator<Item = (&'static str, KindCounter)> + '_ {
        self.sends.iter().map(|(k, c)| (*k, *c))
    }

    /// Iterates over free-form counters in lexicographic order.
    pub fn iter_events(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.events.iter().map(|(k, v)| (*k, *v))
    }

    /// Difference `self − earlier`, counter by counter (saturating).
    ///
    /// Used to isolate a measurement window: snapshot at window start,
    /// subtract from the totals at window end.
    pub fn delta_since(&self, earlier: &Counters) -> Counters {
        let mut out = Counters::new();
        for (k, c) in &self.sends {
            let e = earlier.kind(k);
            out.sends.insert(
                k,
                KindCounter {
                    msgs: c.msgs.saturating_sub(e.msgs),
                    bytes: c.bytes.saturating_sub(e.bytes),
                },
            );
        }
        for (k, v) in &self.events {
            out.events.insert(k, v.saturating_sub(earlier.event(k)));
        }
        out
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "sends:")?;
        for (k, c) in &self.sends {
            writeln!(f, "  {k:<24} {:>10} msgs {:>14} bytes", c.msgs, c.bytes)?;
        }
        writeln!(f, "events:")?;
        for (k, v) in &self.events {
            writeln!(f, "  {k:<24} {v:>10}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut c = Counters::new();
        c.record_send("a.x", 100);
        c.record_send("a.x", 50);
        c.record_send("b.y", 10);
        assert_eq!(
            c.kind("a.x"),
            KindCounter {
                msgs: 2,
                bytes: 150
            }
        );
        assert_eq!(c.kind("missing"), KindCounter::default());
        assert_eq!(c.total_msgs(), 3);
        assert_eq!(c.total_bytes(), 160);
    }

    #[test]
    fn bump_events() {
        let mut c = Counters::new();
        c.bump("instances", 1);
        c.bump("instances", 2);
        assert_eq!(c.event("instances"), 3);
        assert_eq!(c.event("other"), 0);
    }

    #[test]
    fn exclusion_filter() {
        let mut c = Counters::new();
        c.record_send("fd.heartbeat", 10);
        c.record_send("consensus.ack", 20);
        assert_eq!(c.total_msgs_excluding(|k| k.starts_with("fd.")), 1);
    }

    #[test]
    fn delta_isolates_window() {
        let mut c = Counters::new();
        c.record_send("x", 5);
        c.bump("n", 1);
        let snap = c.clone();
        c.record_send("x", 7);
        c.record_send("y", 1);
        c.bump("n", 4);
        let d = c.delta_since(&snap);
        assert_eq!(d.kind("x"), KindCounter { msgs: 1, bytes: 7 });
        assert_eq!(d.kind("y"), KindCounter { msgs: 1, bytes: 1 });
        assert_eq!(d.event("n"), 4);
    }

    #[test]
    fn zero_byte_sends_still_count_messages() {
        // Control messages can serialize to zero payload bytes; the
        // message tally must still move (the paper counts messages and
        // bytes as separate axes).
        let mut c = Counters::new();
        c.record_send("ctl.empty", 0);
        c.record_send("ctl.empty", 0);
        assert_eq!(c.kind("ctl.empty"), KindCounter { msgs: 2, bytes: 0 });
        assert_eq!(c.total_msgs(), 2);
        assert_eq!(c.total_bytes(), 0);
    }

    #[test]
    fn unknown_kind_lookups_are_zero_everywhere() {
        let c = Counters::new();
        assert_eq!(c.kind("never.seen"), KindCounter::default());
        assert_eq!(c.event("never.seen"), 0);
        assert_eq!(c.total_msgs_excluding(|_| false), 0);
        assert_eq!(c.iter_sends().count(), 0);
        assert_eq!(c.iter_events().count(), 0);
        // Delta against a counter that has keys we lack: saturates to
        // zero instead of underflowing.
        let mut later = Counters::new();
        later.record_send("x", 1);
        later.bump("n", 1);
        let d = c.delta_since(&later);
        assert_eq!(d.kind("x"), KindCounter::default());
        assert_eq!(d.event("n"), 0);
    }

    #[test]
    fn heartbeat_exclusion_drops_msgs_but_not_other_kinds() {
        let mut c = Counters::new();
        c.record_send("fd.heartbeat", 32);
        c.record_send("fd.heartbeat", 32);
        c.record_send("consensus.ack", 20);
        c.record_send("abcast.diffuse", 512);
        // The runner's convention: everything under "fd." is liveness
        // background noise, not protocol cost.
        assert_eq!(c.total_msgs_excluding(|k| k.starts_with("fd.")), 2);
        // The unfiltered totals still see the heartbeats.
        assert_eq!(c.total_msgs(), 4);
        // Excluding nothing matches total_msgs; excluding everything is 0.
        assert_eq!(c.total_msgs_excluding(|_| false), c.total_msgs());
        assert_eq!(c.total_msgs_excluding(|_| true), 0);
    }

    #[test]
    fn display_lists_counters() {
        let mut c = Counters::new();
        c.record_send("k", 9);
        c.bump("e", 2);
        let s = c.to_string();
        assert!(s.contains('k') && s.contains('e'));
    }
}
