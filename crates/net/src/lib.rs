//! Simulated quasi-reliable network, wire codec and cluster harness.
//!
//! This crate is the substrate that stands in for the paper's testbed
//! (cluster + Gigabit Ethernet + TCP): it hosts sans-IO protocol stacks
//! ([`Node`]) on simulated processes, models CPU and NIC contention, and
//! accounts every message and byte so the analytical model of §5.2 can be
//! cross-checked against simulation counters.
//!
//! * [`wire`] — explicit binary codec (no hidden framing bytes).
//! * [`ProcessId`], [`MsgId`], [`AppMsg`], [`Batch`] — identities and
//!   application messages.
//! * [`NetModel`], [`CostModel`], [`ClusterConfig`] — calibration knobs.
//! * [`Cluster`], [`Node`], [`NodeCtx`], [`Harness`] — the simulation
//!   harness (see [`cluster`] module docs for crash semantics).
//! * [`fault`] — link-level fault hooks ([`LinkFault`], [`LinkSelector`]):
//!   partitions, seeded loss, duplication, delay inflation and bandwidth
//!   degradation applied at transmission time, plus per-process CPU
//!   slowdowns ([`Cluster::apply_slowdown`]) — all driven by the
//!   `fortika-chaos` scenario DSL.
//! * [`snapshot`] — log-compaction snapshots for rejoin catch-up:
//!   [`Snapshot`], the deterministic [`SnapshotFold`], and the
//!   [`AppState`] application hook both protocol stacks share.
//! * [`Counters`] — per-kind traffic accounting.
//!
//! # Example: two nodes ping-pong
//!
//! ```
//! use bytes::Bytes;
//! use fortika_net::{
//!     Admission, AppRequest, Cluster, ClusterConfig, Node, NodeCtx, ProcessId,
//! };
//! use fortika_sim::{VDur, VTime};
//!
//! struct Echo;
//! impl Node for Echo {
//!     fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
//!         if ctx.pid() == ProcessId(0) {
//!             ctx.send(ProcessId(1), "demo.ping", Bytes::from_static(b"ping"));
//!         }
//!     }
//!     fn on_message(&mut self, ctx: &mut NodeCtx<'_>, from: ProcessId, bytes: Bytes) {
//!         if bytes.as_ref() == b"ping" {
//!             ctx.send(from, "demo.pong", Bytes::from_static(b"pong"));
//!         }
//!     }
//!     fn on_request(&mut self, _: &mut NodeCtx<'_>, _: AppRequest) -> Admission {
//!         Admission::Blocked
//!     }
//! }
//!
//! let cfg = ClusterConfig::new(2, 42);
//! let mut cluster = Cluster::new(cfg, vec![Box::new(Echo), Box::new(Echo)]);
//! cluster.run_idle(VTime::ZERO + VDur::secs(1));
//! assert_eq!(cluster.counters().kind("demo.ping").msgs, 1);
//! assert_eq!(cluster.counters().kind("demo.pong").msgs, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod config;
pub mod counters;
pub mod dissemination;
pub mod fault;
pub mod flow;
pub mod id;
pub mod membership;
pub mod message;
pub mod ratelimit;
pub mod snapshot;
pub mod watermark;
pub mod wire;

pub use cluster::{
    Admission, AppRequest, Cluster, ClusterApi, CollectingHarness, Delivery, Harness, Node,
    NodeCtx, NodeFactory, NoopHarness, StableStore, TimerId,
};
pub use config::{ClusterConfig, CostModel, NetModel};
pub use counters::{Counters, KindCounter};
pub use dissemination::{DissemMsg, Dissemination, PayloadStore, ValueId, DISSEM_SEQ_BASE};
pub use fault::{LinkFault, LinkSelector};
pub use fortika_trace::{Trace, TraceConfig, TraceData, TraceEvent};
pub use id::{MsgId, ProcessId};
pub use membership::{
    parse_reconfig, reconfig_payload, ConfigChange, ConfigStamp, ConfigTimeline, RECONFIG_SEQ_BASE,
};
pub use message::{AppMsg, Batch};
pub use ratelimit::PeerRateLimiter;
pub use snapshot::{
    AppState, AppStateFactory, ChunkOutcome, SenderLog, Snapshot, SnapshotDownload, SnapshotFold,
    SnapshotStamp,
};
pub use watermark::WatermarkSet;
