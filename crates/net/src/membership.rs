//! Log-decided dynamic membership (add/remove-server reconfiguration).
//!
//! The member set is changed **through the log itself**: a reconfiguration
//! command is abcast like any application message ([`reconfig_payload`]),
//! decided by consensus at some instance `d`, and takes effect at the
//! fixed **activation offset** `d + offset` — every process that replays
//! the same decided prefix therefore derives the identical configuration
//! history, with no out-of-band channel. (The classic approach; with
//! single-server changes, consecutive configurations always share a
//! majority, which is what keeps stale-by-one quorums safe.)
//!
//! This module holds the stack-agnostic pieces both implementations
//! share:
//!
//! * [`ConfigChange`] — one add/remove command (the wire payload body).
//! * [`ConfigTimeline`] — the versioned configuration history: the
//!   initial member set plus every decided reconfiguration, answering
//!   "who are the members / what is the quorum / who coordinates round
//!   `r` **at instance `i`**". Persisted with the consensus state and
//!   carried inside snapshots, so it survives restarts and compaction.
//! * [`ConfigStamp`] — what a process reports to the harness when a new
//!   configuration version activates (feeds the config-aware oracle).
//! * [`reconfig_payload`] / [`parse_reconfig`] — the magic-prefixed
//!   payload encoding that distinguishes reconfiguration commands from
//!   ordinary application traffic in the decided sequence.

use std::collections::BTreeMap;
use std::fmt;

use bytes::Bytes;

use crate::id::ProcessId;
use crate::wire::{Wire, WireError, WireReader, WireWriter};

/// One membership change decided through the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigChange {
    /// Add `0` to the member set (it activates as a voter at the
    /// activation instance; until then it is a learner).
    Add(ProcessId),
    /// Remove `0` from the member set (it keeps running as a learner —
    /// receiving, applying and delivering decisions — but no longer
    /// votes, proposes or heartbeats).
    Remove(ProcessId),
}

impl ConfigChange {
    /// The process the change concerns.
    pub fn pid(&self) -> ProcessId {
        match *self {
            ConfigChange::Add(p) | ConfigChange::Remove(p) => p,
        }
    }
}

impl fmt::Display for ConfigChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigChange::Add(p) => write!(f, "add {p}"),
            ConfigChange::Remove(p) => write!(f, "remove {p}"),
        }
    }
}

const TAG_ADD: u8 = 1;
const TAG_REMOVE: u8 = 2;

impl Wire for ConfigChange {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            ConfigChange::Add(p) => {
                w.put_u8(TAG_ADD);
                p.encode(w);
            }
            ConfigChange::Remove(p) => {
                w.put_u8(TAG_REMOVE);
                p.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        match r.get_u8()? {
            TAG_ADD => Ok(ConfigChange::Add(ProcessId::decode(r)?)),
            TAG_REMOVE => Ok(ConfigChange::Remove(ProcessId::decode(r)?)),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

/// Magic prefix that marks an abcast payload as a reconfiguration
/// command. Ordinary workload payloads never start with it (the chaos
/// and benchmark drivers fill payloads with repeated bytes).
const RECONFIG_MAGIC: &[u8; 8] = b"\xF0RTKCFG\x01";

/// Per-sender sequence numbers at or above this base are reserved for
/// reconfiguration submissions, so they can never collide with the
/// workload drivers' dense `0, 1, 2, …` allocation.
pub const RECONFIG_SEQ_BASE: u64 = 1 << 62;

/// Encodes `change` as an abcast payload (magic prefix + wire body).
pub fn reconfig_payload(change: ConfigChange) -> Bytes {
    let mut w = WireWriter::new();
    for &b in RECONFIG_MAGIC {
        w.put_u8(b);
    }
    change.encode(&mut w);
    w.finish()
}

/// Decodes a reconfiguration command from a delivered payload; `None`
/// for ordinary application payloads (no magic prefix or a malformed
/// body).
pub fn parse_reconfig(payload: &Bytes) -> Option<ConfigChange> {
    if payload.len() <= RECONFIG_MAGIC.len() || !payload.starts_with(RECONFIG_MAGIC) {
        return None;
    }
    crate::wire::decode::<ConfigChange>(payload.slice(RECONFIG_MAGIC.len()..)).ok()
}

/// What a process reports when a configuration version activates
/// (fed to the harness through `NodeCtx::note_config`; the config-aware
/// oracle audits that every process derives the identical history).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigStamp {
    /// Configuration version (the initial configuration is version 0;
    /// the k-th decided change produces version k).
    pub version: u64,
    /// Consensus instance that decided the change.
    pub decided_at: u64,
    /// First instance governed by the new member set
    /// (`decided_at + offset`).
    pub activation: u64,
    /// The member set from `activation` on, in rotation order.
    pub members: Vec<ProcessId>,
}

/// The versioned configuration history of one process.
///
/// Deterministic by construction: the timeline is a pure function of
/// `(initial members, offset, decided reconfigs)`, and the decided
/// reconfigs are ordered by decided instance — so every process that
/// replays the same log prefix answers every `*_at(instance)` question
/// identically, regardless of the order in which it learned the changes.
///
/// # Example
///
/// ```
/// use fortika_net::membership::{ConfigChange, ConfigTimeline};
/// use fortika_net::ProcessId;
///
/// let mut tl = ConfigTimeline::new(3, 8);
/// assert_eq!(tl.majority_at(0), 2);
/// // Instance 5 decides "add p4": the change governs instance 13 on.
/// tl.register(5, ConfigChange::Add(ProcessId(3)));
/// assert_eq!(tl.members_at(12).len(), 3);
/// assert_eq!(tl.members_at(13).len(), 4);
/// assert_eq!(tl.majority_at(13), 3);
/// assert!(tl.is_member_at(13, ProcessId(3)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigTimeline {
    initial: Vec<ProcessId>,
    offset: u64,
    /// Decided reconfigurations, keyed by decided instance.
    reconfigs: BTreeMap<u64, ConfigChange>,
}

impl ConfigTimeline {
    /// A timeline starting from members `p1 … pn` with the given
    /// activation offset (a change decided at instance `d` governs
    /// instances `d + offset` on).
    ///
    /// # Panics
    ///
    /// Panics when `initial` is zero (an empty group cannot decide
    /// anything) or `offset` is zero (a change must never retroactively
    /// govern the instance that decided it).
    pub fn new(initial: usize, offset: u64) -> Self {
        assert!(initial > 0, "initial member set must be nonempty");
        assert!(offset > 0, "activation offset must be positive");
        ConfigTimeline {
            initial: ProcessId::all(initial).collect(),
            offset,
            reconfigs: BTreeMap::new(),
        }
    }

    /// The activation offset.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// True while no reconfiguration has been decided — the fast path:
    /// a trivial timeline answers every question from the initial
    /// configuration and never engages the config fence, so runs
    /// without reconfig traffic behave exactly as before this feature.
    pub fn is_trivial(&self) -> bool {
        self.reconfigs.is_empty()
    }

    /// The decided reconfigurations as `(decided instance, change)`
    /// pairs, ordered by instance — the form persisted to stable
    /// storage and carried inside snapshots.
    pub fn reconfigs(&self) -> Vec<(u64, ConfigChange)> {
        self.reconfigs.iter().map(|(&i, &c)| (i, c)).collect()
    }

    /// Registers the reconfiguration decided at `instance`. Returns the
    /// stamp of the version it creates when newly learned, `None` for a
    /// duplicate registration (replay, snapshot overlap).
    pub fn register(&mut self, instance: u64, change: ConfigChange) -> Option<ConfigStamp> {
        if self.reconfigs.contains_key(&instance) {
            return None;
        }
        self.reconfigs.insert(instance, change);
        let version = self
            .reconfigs
            .keys()
            .position(|&k| k == instance)
            .expect("just inserted") as u64
            + 1;
        Some(self.stamp(version))
    }

    /// The stamp of `version` (1-based; version 0 is the initial
    /// configuration and produces no stamp).
    ///
    /// # Panics
    ///
    /// Panics when `version` is 0 or beyond the registered history.
    pub fn stamp(&self, version: u64) -> ConfigStamp {
        assert!(version >= 1, "version 0 is the initial configuration");
        let (&decided_at, _) = self
            .reconfigs
            .iter()
            .nth(version as usize - 1)
            .expect("version within registered history");
        ConfigStamp {
            version,
            decided_at,
            activation: decided_at + self.offset,
            members: self.members_after(version),
        }
    }

    /// Number of decided reconfigurations (the latest version).
    pub fn latest_version(&self) -> u64 {
        self.reconfigs.len() as u64
    }

    /// The member set after the first `version` changes applied, in
    /// rotation order.
    fn members_after(&self, version: u64) -> Vec<ProcessId> {
        let mut members = self.initial.clone();
        for (_, change) in self.reconfigs.iter().take(version as usize) {
            apply_change(&mut members, *change);
        }
        members
    }

    /// The configuration version governing `instance`.
    pub fn version_at(&self, instance: u64) -> u64 {
        self.reconfigs
            .keys()
            .take_while(|&&d| d + self.offset <= instance)
            .count() as u64
    }

    /// The member set governing `instance`, in rotation order.
    pub fn members_at(&self, instance: u64) -> Vec<ProcessId> {
        self.members_after(self.version_at(instance))
    }

    /// The quorum size at `instance` (majority of the governing member
    /// set).
    pub fn majority_at(&self, instance: u64) -> usize {
        self.members_at(instance).len() / 2 + 1
    }

    /// The coordinator of `round` at `instance`: rotation over the
    /// governing member set. Identical to the static `p_{r mod n}`
    /// rotation while the timeline is trivial.
    pub fn coordinator_at(&self, instance: u64, round: u32) -> ProcessId {
        let members = self.members_at(instance);
        members[round as usize % members.len()]
    }

    /// True when `p` votes at `instance`.
    pub fn is_member_at(&self, instance: u64, p: ProcessId) -> bool {
        self.members_at(instance).contains(&p)
    }

    /// The **config fence**: true when the membership governing
    /// `instance` is fully determined by the contiguous decided prefix
    /// `0..watermark` — i.e. no yet-unknown decision below
    /// `instance - offset` could still change it. A trivial timeline is
    /// always certain (static groups need no fence). A process must not
    /// vote or ack in an instance it is uncertain about; it records the
    /// proposal and waits for its replay frontier to catch up.
    pub fn certain_at(&self, instance: u64, watermark: u64) -> bool {
        self.is_trivial() || instance < watermark + self.offset
    }
}

/// Folds one change into a member list. An `Add` of a present member
/// and a `Remove` of an absent one are no-ops; a `Remove` that would
/// empty the group is ignored (the last member cannot leave — there
/// would be nobody left to decide anything, including its return).
fn apply_change(members: &mut Vec<ProcessId>, change: ConfigChange) {
    match change {
        ConfigChange::Add(p) => {
            if !members.contains(&p) {
                members.push(p);
            }
        }
        ConfigChange::Remove(p) => {
            if members.len() > 1 {
                members.retain(|&m| m != p);
            }
        }
    }
}

/// Wire form of the registered history (persisted under the stacks'
/// config key and embedded in snapshots): `(decided instance, change)`
/// pairs, ordered by instance.
pub fn encode_reconfigs(reconfigs: &[(u64, ConfigChange)], w: &mut WireWriter) {
    w.put_u32(reconfigs.len() as u32);
    for (instance, change) in reconfigs {
        w.put_u64(*instance);
        change.encode(w);
    }
}

/// Decodes what [`encode_reconfigs`] wrote.
pub fn decode_reconfigs(r: &mut WireReader) -> Result<Vec<(u64, ConfigChange)>, WireError> {
    let len = r.get_u32()? as usize;
    let mut out = Vec::with_capacity(len.min(1024));
    for _ in 0..len {
        let instance = r.get_u64()?;
        let change = ConfigChange::decode(r)?;
        out.push((instance, change));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_round_trips_and_rejects_ordinary_traffic() {
        for change in [
            ConfigChange::Add(ProcessId(3)),
            ConfigChange::Remove(ProcessId(1)),
        ] {
            let payload = reconfig_payload(change);
            assert_eq!(parse_reconfig(&payload), Some(change));
        }
        assert_eq!(parse_reconfig(&Bytes::from_static(b"")), None);
        assert_eq!(parse_reconfig(&Bytes::from(vec![0xAB; 64])), None);
        // Magic prefix with a corrupt body is rejected, not a panic.
        let mut bad = RECONFIG_MAGIC.to_vec();
        bad.push(99);
        bad.push(0);
        assert_eq!(parse_reconfig(&Bytes::from(bad)), None);
    }

    #[test]
    fn timeline_versions_activate_at_offset() {
        let mut tl = ConfigTimeline::new(3, 8);
        assert!(tl.is_trivial());
        assert_eq!(tl.version_at(1_000), 0);
        assert_eq!(tl.coordinator_at(17, 4), ProcessId(1));

        let stamp = tl.register(10, ConfigChange::Add(ProcessId(3))).unwrap();
        assert_eq!(stamp.version, 1);
        assert_eq!(stamp.decided_at, 10);
        assert_eq!(stamp.activation, 18);
        assert_eq!(stamp.members.len(), 4);
        assert_eq!(tl.version_at(17), 0);
        assert_eq!(tl.version_at(18), 1);
        assert_eq!(tl.majority_at(17), 2);
        assert_eq!(tl.majority_at(18), 3);
        assert!(!tl.is_member_at(17, ProcessId(3)));
        assert!(tl.is_member_at(18, ProcessId(3)));
        // Rotation extends over the new member.
        assert_eq!(tl.coordinator_at(18, 3), ProcessId(3));

        // Duplicate registration (replay) is a no-op.
        assert!(tl.register(10, ConfigChange::Add(ProcessId(3))).is_none());
        assert_eq!(tl.latest_version(), 1);
    }

    #[test]
    fn remove_returns_to_smaller_quorum() {
        let mut tl = ConfigTimeline::new(5, 4);
        let stamp = tl.register(3, ConfigChange::Remove(ProcessId(4))).unwrap();
        assert_eq!(stamp.activation, 7);
        assert_eq!(stamp.members, ProcessId::all(4).collect::<Vec<_>>());
        assert_eq!(tl.majority_at(6), 3);
        assert_eq!(tl.majority_at(7), 3); // 4 members: majority still 3
        tl.register(8, ConfigChange::Remove(ProcessId(3))).unwrap();
        assert_eq!(tl.majority_at(12), 2);
        assert!(!tl.is_member_at(12, ProcessId(3)));
    }

    #[test]
    fn registration_order_does_not_matter() {
        let mut fwd = ConfigTimeline::new(3, 8);
        fwd.register(5, ConfigChange::Add(ProcessId(3)));
        fwd.register(20, ConfigChange::Remove(ProcessId(0)));
        let mut rev = ConfigTimeline::new(3, 8);
        rev.register(20, ConfigChange::Remove(ProcessId(0)));
        rev.register(5, ConfigChange::Add(ProcessId(3)));
        assert_eq!(fwd, rev);
        for i in [0, 12, 13, 27, 28, 100] {
            assert_eq!(fwd.members_at(i), rev.members_at(i), "instance {i}");
        }
        // Stamps renumber by decided instance, not registration order.
        assert_eq!(rev.stamp(1).decided_at, 5);
        assert_eq!(rev.stamp(2).decided_at, 20);
    }

    #[test]
    fn last_member_cannot_be_removed() {
        let mut tl = ConfigTimeline::new(1, 2);
        tl.register(0, ConfigChange::Remove(ProcessId(0)));
        assert_eq!(tl.members_at(10), vec![ProcessId(0)]);
    }

    #[test]
    fn fence_certainty_tracks_the_watermark() {
        let mut tl = ConfigTimeline::new(3, 8);
        // Trivial timeline: always certain (static-group fast path).
        assert!(tl.certain_at(1_000, 0));
        tl.register(2, ConfigChange::Add(ProcessId(3)));
        // Watermark 4: instances below 12 are governed by decisions
        // already replayed; instance 12 could still be flipped by an
        // unknown decision at instance 4.
        assert!(tl.certain_at(11, 4));
        assert!(!tl.certain_at(12, 4));
        assert!(tl.certain_at(12, 5));
    }

    #[test]
    fn reconfig_history_round_trips() {
        let history = vec![
            (3u64, ConfigChange::Add(ProcessId(3))),
            (9u64, ConfigChange::Remove(ProcessId(1))),
        ];
        let mut w = WireWriter::new();
        encode_reconfigs(&history, &mut w);
        let bytes = w.finish();
        let mut r = WireReader::new(bytes);
        assert_eq!(decode_reconfigs(&mut r).unwrap(), history);
    }
}
